//! The remote context infrastructure (the paper's `extInfra` provider).
//!
//! A context service running on the fixed network behind the event
//! broker: phones push context records into it (`storeCxtItem`), query it
//! on demand, or subscribe for periodic / on-arrival pushes. This is the
//! component the DYNAMOS field trials used as "remote repository", and
//! what `WeatherWatcher` falls back to when the target region is too far
//! for multi-hop ad hoc provisioning.

use crate::broker::EventBroker;
use crate::client::{FuegoClient, RequestError};
use crate::event::EventNotification;
use crate::xml::XmlElement;
use radio::{Position, Region};
use simkit::{Sim, SimDuration, SimTime};
use std::any::Any;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A context record as stored by the infrastructure.
#[derive(Clone, Debug)]
pub struct InfraRecord {
    /// Identity of the providing entity (e.g. `"boat-7"`).
    pub entity: String,
    /// Context type (the SELECT clause's name, e.g. `"temperature"`).
    pub item_type: String,
    /// Printable value (e.g. `"14.0C"`).
    pub value_text: String,
    /// When the value was observed.
    pub timestamp: SimTime,
    /// Where it was observed, if georeferenced.
    pub position: Option<Position>,
    /// Metadata key/value pairs (accuracy, trust, …).
    pub metadata: BTreeMap<String, String>,
    /// Structured fast-path payload (not serialized).
    pub payload: Option<Rc<dyn Any>>,
}

impl InfraRecord {
    /// Creates a record with no metadata or position.
    pub fn new(
        entity: impl Into<String>,
        item_type: impl Into<String>,
        value_text: impl Into<String>,
        timestamp: SimTime,
    ) -> Self {
        InfraRecord {
            entity: entity.into(),
            item_type: item_type.into(),
            value_text: value_text.into(),
            timestamp,
            position: None,
            metadata: BTreeMap::new(),
            payload: None,
        }
    }

    /// Sets the observation position, builder style.
    pub fn at(mut self, position: Position) -> Self {
        self.position = Some(position);
        self
    }

    /// Adds a metadata entry, builder style.
    pub fn with_metadata(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }

    /// Attaches a structured payload, builder style.
    pub fn with_payload(mut self, payload: Rc<dyn Any>) -> Self {
        self.payload = Some(payload);
        self
    }

    /// XML encoding (used for wire sizes and round-tripping).
    pub fn to_xml(&self) -> XmlElement {
        let mut el = XmlElement::new("record")
            .attr("entity", &self.entity)
            .attr("type", &self.item_type)
            .attr("ts", self.timestamp.as_millis().to_string())
            .child(XmlElement::new("value").text(&self.value_text));
        if let Some(p) = self.position {
            el = el.attr("x", format!("{:.1}", p.x)).attr("y", format!("{:.1}", p.y));
        }
        for (k, v) in &self.metadata {
            el = el.child(XmlElement::new("meta").attr("k", k).text(v));
        }
        el
    }

    /// Decodes a record produced by [`InfraRecord::to_xml`].
    pub fn from_xml(el: &XmlElement) -> Option<InfraRecord> {
        if el.name != "record" {
            return None;
        }
        let mut rec = InfraRecord::new(
            el.attribute("entity")?,
            el.attribute("type")?,
            el.find("value")?.text_content(),
            SimTime::from_millis(el.attribute("ts")?.parse().ok()?),
        );
        if let (Some(x), Some(y)) = (el.attribute("x"), el.attribute("y")) {
            rec.position = Some(Position::new(x.parse().ok()?, y.parse().ok()?));
        }
        for m in el.find_all("meta") {
            if let Some(k) = m.attribute("k") {
                rec.metadata.insert(k.to_owned(), m.text_content().to_owned());
            }
        }
        Some(rec)
    }
}

/// A query against the infrastructure's record store.
#[derive(Clone, Debug, Default)]
pub struct InfraQuery {
    /// Required context type.
    pub item_type: String,
    /// Restrict to a providing entity.
    pub entity: Option<String>,
    /// Restrict to records observed inside a region.
    pub region: Option<Region>,
    /// Maximum record age.
    pub freshness: Option<SimDuration>,
    /// Cap on returned records (most recent first). 0 means unlimited.
    pub max_items: usize,
}

impl InfraQuery {
    /// A query for the freshest records of a type.
    pub fn for_type(item_type: impl Into<String>) -> Self {
        InfraQuery {
            item_type: item_type.into(),
            ..InfraQuery::default()
        }
    }

    /// Whether `record` satisfies this query at time `now`.
    pub fn matches(&self, record: &InfraRecord, now: SimTime) -> bool {
        if record.item_type != self.item_type {
            return false;
        }
        if let Some(e) = &self.entity {
            if &record.entity != e {
                return false;
            }
        }
        if let Some(region) = self.region {
            match record.position {
                Some(p) if region.contains(p) => {}
                _ => return false,
            }
        }
        if let Some(fresh) = self.freshness {
            if now - record.timestamp > fresh {
                return false;
            }
        }
        true
    }

    /// XML encoding.
    pub fn to_xml(&self) -> XmlElement {
        let mut el = XmlElement::new("query").attr("type", &self.item_type);
        if let Some(e) = &self.entity {
            el = el.attr("entity", e);
        }
        if let Some(r) = self.region {
            el = el
                .attr("rx", format!("{:.1}", r.center.x))
                .attr("ry", format!("{:.1}", r.center.y))
                .attr("rr", format!("{:.1}", r.radius));
        }
        if let Some(f) = self.freshness {
            el = el.attr("freshness_ms", f.as_millis().to_string());
        }
        if self.max_items > 0 {
            el = el.attr("max", self.max_items.to_string());
        }
        el
    }

    /// Decodes a query produced by [`InfraQuery::to_xml`].
    pub fn from_xml(el: &XmlElement) -> Option<InfraQuery> {
        if el.name != "query" {
            return None;
        }
        let mut q = InfraQuery::for_type(el.attribute("type")?);
        q.entity = el.attribute("entity").map(str::to_owned);
        if let (Some(x), Some(y), Some(r)) =
            (el.attribute("rx"), el.attribute("ry"), el.attribute("rr"))
        {
            q.region = Some(Region::new(
                Position::new(x.parse().ok()?, y.parse().ok()?),
                r.parse().ok()?,
            ));
        }
        if let Some(f) = el.attribute("freshness_ms") {
            q.freshness = Some(SimDuration::from_millis(f.parse().ok()?));
        }
        if let Some(m) = el.attribute("max") {
            q.max_items = m.parse().ok()?;
        }
        Some(q)
    }
}

/// How the infrastructure pushes results for a subscription.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushMode {
    /// Evaluate and push every interval (the EVERY clause).
    Periodic(SimDuration),
    /// Push each newly stored matching record (the EVENT clause's
    /// transport; predicate refinement happens at the subscriber).
    OnStore,
}

struct ServerSub {
    id: u64,
    topic: String,
    query: InfraQuery,
    mode: PushMode,
    active: Rc<std::cell::Cell<bool>>,
}

struct InfraInner {
    records: Vec<InfraRecord>,
    capacity: usize,
    subs: Vec<ServerSub>,
    next_sub: u64,
    stores: u64,
    queries: u64,
}

/// The context infrastructure service.
#[derive(Clone)]
pub struct ContextInfrastructure {
    sim: Sim,
    broker: EventBroker,
    inner: Rc<RefCell<InfraInner>>,
}

impl ContextInfrastructure {
    /// Creates the infrastructure and registers its services
    /// (`cxt/store`, `cxt/query`, `cxt/subscribe`, `cxt/unsubscribe`)
    /// at the broker.
    pub fn new(sim: &Sim, broker: &EventBroker) -> Self {
        let infra = ContextInfrastructure {
            sim: sim.clone(),
            broker: broker.clone(),
            inner: Rc::new(RefCell::new(InfraInner {
                records: Vec::new(),
                capacity: 10_000,
                subs: Vec::new(),
                next_sub: 0,
                stores: 0,
                queries: 0,
            })),
        };
        // cxt/store: push a record in.
        {
            let me = infra.clone();
            broker.register_service("cxt/store", move |_from, ev| {
                let mut record = match ev.payload.as_ref().and_then(|p| {
                    p.clone().downcast::<InfraRecord>().ok().map(|r| r.as_ref().clone())
                }) {
                    Some(r) => Some(r),
                    None => InfraRecord::from_xml(&ev.body),
                }?;
                // Preserve structured payloads shipped alongside.
                if record.payload.is_none() {
                    record.payload = ev.payload.clone();
                }
                me.store(record);
                Some(EventNotification::new(
                    "cxt/store/ack",
                    "infra",
                    XmlElement::new("ok"),
                    ev.timestamp,
                ))
            });
        }
        // cxt/query: on-demand evaluation.
        {
            let me = infra.clone();
            broker.register_service("cxt/query", move |_from, ev| {
                let query = InfraQuery::from_xml(&ev.body)?;
                let results = me.eval(&query);
                me.inner.borrow_mut().queries += 1;
                Some(me.results_event(&results, ev.timestamp))
            });
        }
        // cxt/subscribe: long-running query registration.
        {
            let me = infra.clone();
            broker.register_service("cxt/subscribe", move |_from, ev| {
                let body = &ev.body;
                let query = InfraQuery::from_xml(body.find("query")?)?;
                let topic = body.find("topic")?.text_content().to_owned();
                let mode = match body.attribute("every_ms") {
                    Some(ms) => PushMode::Periodic(SimDuration::from_millis(ms.parse().ok()?)),
                    None => PushMode::OnStore,
                };
                let id = me.register_sub(topic, query, mode);
                Some(EventNotification::new(
                    "cxt/subscribe/ack",
                    "infra",
                    XmlElement::new("sub").attr("id", id.to_string()),
                    ev.timestamp,
                ))
            });
        }
        // cxt/unsubscribe.
        {
            let me = infra.clone();
            broker.register_service("cxt/unsubscribe", move |_from, ev| {
                let id: u64 = ev.body.attribute("id")?.parse().ok()?;
                me.cancel_sub(id);
                Some(EventNotification::new(
                    "cxt/unsubscribe/ack",
                    "infra",
                    XmlElement::new("ok"),
                    ev.timestamp,
                ))
            });
        }
        infra
    }

    /// Stores a record directly (server-side sources like official
    /// weather stations use this path).
    pub fn store(&self, record: InfraRecord) {
        let on_store_pushes: Vec<(String, InfraRecord)> = {
            let mut inner = self.inner.borrow_mut();
            inner.stores += 1;
            if inner.records.len() >= inner.capacity {
                inner.records.remove(0);
            }
            inner.records.push(record.clone());
            let now = self.sim.now();
            inner
                .subs
                .iter()
                .filter(|s| {
                    s.active.get() && s.mode == PushMode::OnStore && s.query.matches(&record, now)
                })
                .map(|s| (s.topic.clone(), record.clone()))
                .collect()
        };
        for (topic, rec) in on_store_pushes {
            let ev = self.results_event(&[rec], self.sim.now()).retopic(topic);
            self.broker.publish_from_server(ev);
        }
    }

    /// Evaluates a query against the store, most recent first.
    pub fn eval(&self, query: &InfraQuery) -> Vec<InfraRecord> {
        let now = self.sim.now();
        let inner = self.inner.borrow();
        let mut hits: Vec<InfraRecord> = inner
            .records
            .iter()
            .filter(|r| query.matches(r, now))
            .cloned()
            .collect();
        hits.sort_by_key(|r| std::cmp::Reverse(r.timestamp));
        if query.max_items > 0 {
            hits.truncate(query.max_items);
        }
        hits
    }

    /// Number of records currently stored.
    pub fn record_count(&self) -> usize {
        self.inner.borrow().records.len()
    }

    /// Total store operations processed.
    pub fn store_count(&self) -> u64 {
        self.inner.borrow().stores
    }

    /// Total on-demand queries processed.
    pub fn query_count(&self) -> u64 {
        self.inner.borrow().queries
    }

    fn register_sub(&self, topic: String, query: InfraQuery, mode: PushMode) -> u64 {
        let active = Rc::new(std::cell::Cell::new(true));
        let id = {
            let mut inner = self.inner.borrow_mut();
            inner.next_sub += 1;
            let id = inner.next_sub;
            inner.subs.push(ServerSub {
                id,
                topic: topic.clone(),
                query: query.clone(),
                mode,
                active: active.clone(),
            });
            id
        };
        if let PushMode::Periodic(every) = mode {
            let me = self.clone();
            self.sim.schedule_repeating(every, move || {
                if !active.get() {
                    return false;
                }
                let results = me.eval(&query);
                if !results.is_empty() {
                    let ev = me
                        .results_event(&results, me.sim.now())
                        .retopic(topic.clone());
                    me.broker.publish_from_server(ev);
                }
                true
            });
        }
        id
    }

    fn cancel_sub(&self, id: u64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(s) = inner.subs.iter().find(|s| s.id == id) {
            s.active.set(false);
        }
        inner.subs.retain(|s| s.id != id);
    }

    fn results_event(&self, results: &[InfraRecord], timestamp: SimTime) -> EventNotification {
        let mut body = XmlElement::new("results").attr("n", results.len().to_string());
        for r in results {
            body = body.child(r.to_xml());
        }
        EventNotification::new("cxt/results", "infra", body, timestamp)
            .with_payload(Rc::new(results.to_vec()))
    }
}

impl fmt::Debug for ContextInfrastructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ContextInfrastructure")
            .field("records", &inner.records.len())
            .field("subs", &inner.subs.len())
            .finish()
    }
}

impl EventNotification {
    fn retopic(mut self, topic: String) -> Self {
        self.topic = topic;
        self
    }
}

/// A phone-side subscription to infrastructure pushes.
pub struct InfraSubscription {
    client: FuegoClient,
    sub: crate::broker::SubId,
    server_id: Rc<std::cell::Cell<Option<u64>>>,
}

impl InfraSubscription {
    /// Cancels the subscription locally and at the infrastructure.
    pub fn cancel(self) {
        self.client.unsubscribe(self.sub);
        if let Some(id) = self.server_id.get() {
            let ev = self.client.make_event(
                "cxt/unsubscribe",
                XmlElement::new("cancel").attr("id", id.to_string()),
            );
            self.client
                .request("cxt/unsubscribe", ev, SimDuration::from_secs(30), |_res| {});
        }
    }
}

impl fmt::Debug for InfraSubscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InfraSubscription")
            .field("server_id", &self.server_id.get())
            .finish()
    }
}

/// Phone-side convenience API for talking to the infrastructure.
#[derive(Clone, Debug)]
pub struct InfraClient {
    fuego: FuegoClient,
}

impl InfraClient {
    /// Wraps a Fuego client.
    pub fn new(fuego: &FuegoClient) -> Self {
        InfraClient {
            fuego: fuego.clone(),
        }
    }

    /// The underlying event client.
    pub fn fuego(&self) -> &FuegoClient {
        &self.fuego
    }

    /// Stores a record remotely (`storeCxtItem`). `cb` observes the ack.
    pub fn store(
        &self,
        record: InfraRecord,
        cb: impl FnOnce(Result<(), RequestError>) + 'static,
    ) {
        let payload = Rc::new(record.clone());
        let ev = self
            .fuego
            .make_event("cxt/store", record.to_xml())
            .with_payload(payload);
        self.fuego
            .request("cxt/store", ev, SimDuration::from_secs(60), move |res| {
                cb(res.map(|_ev| ()))
            });
    }

    /// On-demand query (`getCxtItem` over UMTS in Table 1/2).
    pub fn query(
        &self,
        query: &InfraQuery,
        timeout: SimDuration,
        cb: impl FnOnce(Result<Vec<InfraRecord>, RequestError>) + 'static,
    ) {
        let ev = self.fuego.make_event("cxt/query", query.to_xml());
        self.fuego.request("cxt/query", ev, timeout, move |res| {
            cb(res.map(|ev| decode_results(&ev)))
        });
    }

    /// Long-running query: the infrastructure pushes matching records
    /// periodically or as they arrive; `handler` receives each batch.
    pub fn subscribe(
        &self,
        query: &InfraQuery,
        mode: PushMode,
        handler: impl Fn(Vec<InfraRecord>) + 'static,
    ) -> InfraSubscription {
        let topic = {
            // A unique push topic per subscription.
            let ev = self.fuego.make_event("x", XmlElement::new("x"));
            format!("cxt/push/{}/{}", ev.sender, ev.id)
        };
        let sub = self
            .fuego
            .subscribe(topic.clone(), move |ev| handler(decode_results(&ev)));
        let mut body = XmlElement::new("subscribe")
            .child(InfraQuery::to_xml(query))
            .child(XmlElement::new("topic").text(topic));
        if let PushMode::Periodic(every) = mode {
            body = body.attr("every_ms", every.as_millis().to_string());
        }
        let server_id = Rc::new(std::cell::Cell::new(None));
        let sid = server_id.clone();
        let ev = self.fuego.make_event("cxt/subscribe", body);
        self.fuego
            .request("cxt/subscribe", ev, SimDuration::from_secs(60), move |res| {
                if let Ok(ack) = res {
                    if let Some(id) = ack.body.attribute("id").and_then(|s| s.parse().ok()) {
                        sid.set(Some(id));
                    }
                }
            });
        InfraSubscription {
            client: self.fuego.clone(),
            sub,
            server_id,
        }
    }
}

fn decode_results(ev: &EventNotification) -> Vec<InfraRecord> {
    if let Some(p) = &ev.payload {
        if let Ok(records) = p.clone().downcast::<Vec<InfraRecord>>() {
            return records.as_ref().clone();
        }
    }
    ev.body.find_all("record").filter_map(InfraRecord::from_xml).collect()
}
