//! The phone-side Fuego endpoint.
//!
//! Wraps a [`CellModem`] with the event abstractions Contory's
//! `2G/3GReference` offers: publish, subscribe and request/response, all
//! asynchronous with callbacks.

use crate::broker::{Frame, SubId};
use crate::event::EventNotification;
use crate::xml::XmlElement;
use radio::cell::{CellError, CellModem};
use simkit::{Sim, SimDuration};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Errors from [`FuegoClient::request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// No response arrived within the timeout.
    Timeout,
    /// The broker has no service registered on the topic.
    NoService,
    /// The cellular link failed.
    Link(CellError),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Timeout => write!(f, "request timed out"),
            RequestError::NoService => write!(f, "no service on topic"),
            RequestError::Link(e) => write!(f, "link error: {e}"),
        }
    }
}

impl Error for RequestError {}

type ResponseHandler = Box<dyn FnOnce(Result<EventNotification, RequestError>)>;
type DeliveryHandler = Rc<dyn Fn(EventNotification)>;

struct ClientInner {
    sender: String,
    next_event: u64,
    next_sub: u64,
    next_req: u64,
    pending: BTreeMap<u64, ResponseHandler>,
    subs: BTreeMap<SubId, DeliveryHandler>,
}

/// A Fuego client bound to one phone's modem.
#[derive(Clone)]
pub struct FuegoClient {
    sim: Sim,
    modem: CellModem,
    inner: Rc<RefCell<ClientInner>>,
}

impl FuegoClient {
    /// Creates a client and installs itself as the modem's receive
    /// handler. `sender` identifies this device in event envelopes.
    pub fn new(sim: &Sim, modem: &CellModem, sender: impl Into<String>) -> Self {
        let client = FuegoClient {
            sim: sim.clone(),
            modem: modem.clone(),
            inner: Rc::new(RefCell::new(ClientInner {
                sender: sender.into(),
                next_event: 0,
                next_sub: 0,
                next_req: 0,
                pending: BTreeMap::new(),
                subs: BTreeMap::new(),
            })),
        };
        let c = client.clone();
        modem.on_receive(move |payload| {
            if let Ok(frame) = payload.downcast::<Frame>() {
                c.handle_downlink(frame.as_ref().clone());
            }
        });
        client
    }

    /// The underlying modem (for radio control).
    pub fn modem(&self) -> &CellModem {
        &self.modem
    }

    /// Builds a notification stamped with this client's identity, a fresh
    /// sequence number and the current time.
    pub fn make_event(&self, topic: impl Into<String>, body: XmlElement) -> EventNotification {
        let mut inner = self.inner.borrow_mut();
        inner.next_event += 1;
        EventNotification::new(topic, inner.sender.clone(), body, self.sim.now())
            .with_id(inner.next_event)
    }

    /// Publishes an event. `cb` fires when the uplink transfer completes
    /// (Table 1's `publishCxtItem` over UMTS measures exactly this).
    pub fn publish(
        &self,
        event: EventNotification,
        cb: impl FnOnce(Result<(), CellError>) + 'static,
    ) {
        let frame = Frame::Publish { event };
        let size = frame.wire_size();
        self.modem.send_event(size, Rc::new(frame), cb);
    }

    /// Subscribes to a topic; `handler` receives every delivery until
    /// [`FuegoClient::unsubscribe`]. The subscription is registered at the
    /// broker asynchronously.
    pub fn subscribe(
        &self,
        topic: impl Into<String>,
        handler: impl Fn(EventNotification) + 'static,
    ) -> SubId {
        let sub = {
            let mut inner = self.inner.borrow_mut();
            inner.next_sub += 1;
            let sub = SubId(inner.next_sub);
            inner.subs.insert(sub, Rc::new(handler));
            sub
        };
        let frame = Frame::Subscribe {
            topic: topic.into(),
            sub,
        };
        let size = frame.wire_size();
        self.modem.send_event(size, Rc::new(frame), |_res| {});
        sub
    }

    /// Cancels a subscription locally and at the broker.
    pub fn unsubscribe(&self, sub: SubId) {
        self.inner.borrow_mut().subs.remove(&sub);
        let frame = Frame::Unsubscribe { sub };
        let size = frame.wire_size();
        self.modem.send_event(size, Rc::new(frame), |_res| {});
    }

    /// Sends a request to a broker service; `cb` receives the response,
    /// [`RequestError::NoService`], a link error, or
    /// [`RequestError::Timeout`] if nothing arrives within `timeout`.
    pub fn request(
        &self,
        topic: impl Into<String>,
        event: EventNotification,
        timeout: SimDuration,
        cb: impl FnOnce(Result<EventNotification, RequestError>) + 'static,
    ) {
        let req = {
            let mut inner = self.inner.borrow_mut();
            inner.next_req += 1;
            let req = inner.next_req;
            inner.pending.insert(req, Box::new(cb));
            req
        };
        let frame = Frame::Request {
            topic: topic.into(),
            req,
            event,
        };
        let size = frame.wire_size();
        // Timeout watchdog.
        {
            let inner = self.inner.clone();
            self.sim.schedule_in(timeout, move || {
                if let Some(cb) = inner.borrow_mut().pending.remove(&req) {
                    cb(Err(RequestError::Timeout));
                }
            });
        }
        let inner = self.inner.clone();
        self.modem.send_event(size, Rc::new(frame), move |res| {
            if let Err(e) = res {
                if let Some(cb) = inner.borrow_mut().pending.remove(&req) {
                    cb(Err(RequestError::Link(e)));
                }
            }
        });
    }

    fn handle_downlink(&self, frame: Frame) {
        match frame {
            Frame::Response { req, event } => {
                let cb = self.inner.borrow_mut().pending.remove(&req);
                if let Some(cb) = cb {
                    match event {
                        Some(ev) => cb(Ok(ev)),
                        None => cb(Err(RequestError::NoService)),
                    }
                }
            }
            Frame::Deliver { sub, event } => {
                let handler = self.inner.borrow().subs.get(&sub).cloned();
                if let Some(h) = handler {
                    h(event);
                }
            }
            // Uplink-only frames on the downlink are ignored.
            _ => {}
        }
    }
}

impl fmt::Debug for FuegoClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("FuegoClient")
            .field("sender", &inner.sender)
            .field("subs", &inner.subs.len())
            .field("pending", &inner.pending.len())
            .finish()
    }
}
