//! The phone-side Fuego endpoint.
//!
//! Wraps a [`CellModem`] with the event abstractions Contory's
//! `2G/3GReference` offers: publish, subscribe and request/response, all
//! asynchronous with callbacks.

use crate::broker::{Frame, SubId};
use crate::event::EventNotification;
use crate::xml::XmlElement;
use radio::cell::{CellError, CellModem};
use simkit::{Sim, SimDuration};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Errors from [`FuegoClient::request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// No response arrived within the timeout.
    Timeout,
    /// The broker has no service registered on the topic.
    NoService,
    /// The cellular link failed.
    Link(CellError),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Timeout => write!(f, "request timed out"),
            RequestError::NoService => write!(f, "no service on topic"),
            RequestError::Link(e) => write!(f, "link error: {e}"),
        }
    }
}

impl Error for RequestError {}

type ResponseHandler = Box<dyn FnOnce(Result<EventNotification, RequestError>)>;
type DeliveryHandler = Rc<dyn Fn(EventNotification)>;

struct ClientInner {
    sender: String,
    next_event: u64,
    next_sub: u64,
    next_req: u64,
    pending: BTreeMap<u64, ResponseHandler>,
    subs: BTreeMap<SubId, DeliveryHandler>,
    /// Open obskit spans for in-flight requests, keyed by request id.
    req_spans: BTreeMap<u64, obskit::SpanId>,
}

/// A Fuego client bound to one phone's modem.
#[derive(Clone)]
pub struct FuegoClient {
    sim: Sim,
    modem: CellModem,
    inner: Rc<RefCell<ClientInner>>,
}

impl FuegoClient {
    /// Creates a client and installs itself as the modem's receive
    /// handler. `sender` identifies this device in event envelopes.
    pub fn new(sim: &Sim, modem: &CellModem, sender: impl Into<String>) -> Self {
        let client = FuegoClient {
            sim: sim.clone(),
            modem: modem.clone(),
            inner: Rc::new(RefCell::new(ClientInner {
                sender: sender.into(),
                next_event: 0,
                next_sub: 0,
                next_req: 0,
                pending: BTreeMap::new(),
                subs: BTreeMap::new(),
                req_spans: BTreeMap::new(),
            })),
        };
        let c = client.clone();
        modem.on_receive(move |payload| {
            if let Ok(frame) = payload.downcast::<Frame>() {
                c.handle_downlink(frame.as_ref().clone());
            }
        });
        client
    }

    /// The underlying modem (for radio control).
    pub fn modem(&self) -> &CellModem {
        &self.modem
    }

    /// Builds a notification stamped with this client's identity, a fresh
    /// sequence number and the current time.
    pub fn make_event(&self, topic: impl Into<String>, body: XmlElement) -> EventNotification {
        let mut inner = self.inner.borrow_mut();
        inner.next_event += 1;
        let event = EventNotification::new(topic, inner.sender.clone(), body, self.sim.now())
            .with_id(inner.next_event);
        // Encoding cost accounting: the XML envelope's wire size is what
        // the cellular legs pay for.
        obskit::count("fuego_events_encoded", 1);
        obskit::observe("fuego_event_bytes", event.wire_size() as u64);
        event
    }

    /// Publishes an event. `cb` fires when the uplink transfer completes
    /// (Table 1's `publishCxtItem` over UMTS measures exactly this).
    pub fn publish(
        &self,
        event: EventNotification,
        cb: impl FnOnce(Result<(), CellError>) + 'static,
    ) {
        let topic = event.topic.clone();
        let frame = Frame::Publish { event };
        let size = frame.wire_size();
        obskit::count("fuego_publishes", 1);
        obskit::count("fuego_publish_bytes", size as u64);
        let span = obskit::start(
            obskit::Phase::Publish,
            &format!("fuego_pub:{topic}"),
            None,
            self.sim.now(),
        );
        let sim = self.sim.clone();
        self.modem.send_event(size, Rc::new(frame), move |res| {
            obskit::end(span, sim.now());
            if res.is_err() {
                obskit::count("fuego_publish_failures", 1);
            }
            cb(res);
        });
    }

    /// Subscribes to a topic; `handler` receives every delivery until
    /// [`FuegoClient::unsubscribe`]. The subscription is registered at the
    /// broker asynchronously.
    pub fn subscribe(
        &self,
        topic: impl Into<String>,
        handler: impl Fn(EventNotification) + 'static,
    ) -> SubId {
        let sub = {
            let mut inner = self.inner.borrow_mut();
            inner.next_sub += 1;
            let sub = SubId(inner.next_sub);
            inner.subs.insert(sub, Rc::new(handler));
            sub
        };
        obskit::count("fuego_subscribes", 1);
        let frame = Frame::Subscribe {
            topic: topic.into(),
            sub,
        };
        let size = frame.wire_size();
        self.modem.send_event(size, Rc::new(frame), |_res| {});
        sub
    }

    /// Cancels a subscription locally and at the broker.
    pub fn unsubscribe(&self, sub: SubId) {
        obskit::count("fuego_unsubscribes", 1);
        self.inner.borrow_mut().subs.remove(&sub);
        let frame = Frame::Unsubscribe { sub };
        let size = frame.wire_size();
        self.modem.send_event(size, Rc::new(frame), |_res| {});
    }

    /// Sends a request to a broker service; `cb` receives the response,
    /// [`RequestError::NoService`], a link error, or
    /// [`RequestError::Timeout`] if nothing arrives within `timeout`.
    pub fn request(
        &self,
        topic: impl Into<String>,
        event: EventNotification,
        timeout: SimDuration,
        cb: impl FnOnce(Result<EventNotification, RequestError>) + 'static,
    ) {
        let topic = topic.into();
        let req = {
            let mut inner = self.inner.borrow_mut();
            inner.next_req += 1;
            let req = inner.next_req;
            inner.pending.insert(req, Box::new(cb));
            req
        };
        obskit::count("fuego_requests", 1);
        if let Some(span) = obskit::start(
            obskit::Phase::Broker,
            &format!("fuego_req:{topic}"),
            None,
            self.sim.now(),
        ) {
            self.inner.borrow_mut().req_spans.insert(req, span);
        }
        let frame = Frame::Request { topic, req, event };
        let size = frame.wire_size();
        // Timeout watchdog.
        {
            let inner = self.inner.clone();
            let sim = self.sim.clone();
            self.sim.schedule_in(timeout, move || {
                let (cb, span) = {
                    let mut inner = inner.borrow_mut();
                    (inner.pending.remove(&req), inner.req_spans.remove(&req))
                };
                obskit::end(span, sim.now());
                if let Some(cb) = cb {
                    obskit::count("fuego_request_timeouts", 1);
                    cb(Err(RequestError::Timeout));
                }
            });
        }
        let inner = self.inner.clone();
        let sim = self.sim.clone();
        self.modem.send_event(size, Rc::new(frame), move |res| {
            if let Err(e) = res {
                let (cb, span) = {
                    let mut inner = inner.borrow_mut();
                    (inner.pending.remove(&req), inner.req_spans.remove(&req))
                };
                obskit::end(span, sim.now());
                if let Some(cb) = cb {
                    obskit::count("fuego_request_link_failures", 1);
                    cb(Err(RequestError::Link(e)));
                }
            }
        });
    }

    fn handle_downlink(&self, frame: Frame) {
        match frame {
            Frame::Response { req, event } => {
                let (cb, span) = {
                    let mut inner = self.inner.borrow_mut();
                    (inner.pending.remove(&req), inner.req_spans.remove(&req))
                };
                obskit::end(span, self.sim.now());
                if let Some(cb) = cb {
                    obskit::count("fuego_responses", 1);
                    match event {
                        Some(ev) => cb(Ok(ev)),
                        None => cb(Err(RequestError::NoService)),
                    }
                }
            }
            Frame::Deliver { sub, event } => {
                let handler = self.inner.borrow().subs.get(&sub).cloned();
                if let Some(h) = handler {
                    obskit::count("fuego_deliveries", 1);
                    obskit::event(
                        obskit::Phase::Deliver,
                        &format!("fuego_deliver:{}", event.topic),
                        None,
                        self.sim.now(),
                    );
                    h(event);
                }
            }
            // Uplink-only frames on the downlink are ignored.
            _ => {}
        }
    }
}

impl fmt::Debug for FuegoClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("FuegoClient")
            .field("sender", &inner.sender)
            .field("subs", &inner.subs.len())
            .field("pending", &inner.pending.len())
            .finish()
    }
}
