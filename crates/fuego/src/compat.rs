//! Compatibility path between the `brokerd` federation and the classic
//! Fuego XML wire format.
//!
//! The brokerd rewiring moved the `extInfra` leg's routing and admission
//! onto [`ContextPacket`](../../brokerd/struct.ContextPacket.html)s, but
//! Table 1's paper numbers are calibrated against Fuego's framing: every
//! context item or query crosses the cellular link inside an event
//! notification the paper measured at **1696 bytes**. This module keeps
//! that contract alive — a broker packet is rendered into the same
//! `fg:notification` envelope, padded to the fixed [`ENVELOPE_BYTES`]
//! frame, so wire-size accounting (and with it the UMTS latency/energy
//! rows) is unchanged by where the packet came from.
//!
//! The API is field-level rather than taking the brokerd type directly,
//! keeping this crate free of a brokerd dependency; the umbrella crate's
//! `tests/broker_envelope.rs` golden test drives it with a real
//! `brokerd::ContextPacket` and pins the 1696-byte frame.

use crate::event::EventNotification;
use crate::xml::XmlElement;
use simkit::SimTime;

/// The §6 envelope frame: "event notifications whose size is 1696
/// bytes". Compat envelopes are padded up to exactly this size; a body
/// too large for the frame is carried unpadded (and pays its real cost).
pub const ENVELOPE_BYTES: usize = 1696;

/// Field view of a brokerd context packet. Mirrors
/// `brokerd::ContextPacket` minus the interned symbol (wire formats
/// carry names, not table indices).
#[derive(Clone, Debug)]
pub struct PacketFields<'a> {
    /// Context type name (e.g. `"wind"`).
    pub type_name: &'a str,
    /// Value in integer milli-units.
    pub value_milli: i64,
    /// Publication instant.
    pub published_at: SimTime,
    /// Mandatory expiry instant.
    pub expires_at: SimTime,
    /// Mandatory source attribution.
    pub source: &'a str,
    /// Federation hop trail (broker ids, publish order).
    pub hops: &'a [u16],
    /// Optional trace context carried across the compat boundary.
    /// `None` (or an inactive context) renders the classic layout
    /// byte-for-byte; an active context adds a `trace` element that the
    /// padding region absorbs, so the frame stays [`ENVELOPE_BYTES`]
    /// either way.
    pub trace: Option<tracekit::TraceCtx>,
}

/// Renders the packet's application body: the `cxtItem` shape Contory's
/// own encoder uses (§4.1 fields), extended with the federation route
/// trail the brokerd hygiene contract adds.
fn packet_body(f: &PacketFields<'_>) -> XmlElement {
    let lifetime_ms = f.expires_at.since(f.published_at).as_micros() / 1_000;
    let mut route = XmlElement::new("route").attr("hops", f.hops.len().to_string());
    for b in f.hops {
        route = route.child(XmlElement::new("via").attr("id", b.to_string()));
    }
    let mut item = XmlElement::new("cxtItem")
        .attr("type", f.type_name)
        .attr("timestamp", (f.published_at.as_micros() / 1_000).to_string())
        .attr("lifetime", lifetime_ms.to_string())
        .attr("source", f.source)
        .child(
            XmlElement::new("value")
                .attr("unit", "milli")
                .text(f.value_milli.to_string()),
        )
        .child(
            XmlElement::new("metadata")
                .child(XmlElement::new("correctness").text("0.93"))
                .child(XmlElement::new("privacy").text("community"))
                .child(XmlElement::new("trust").text("trusted")),
        )
        .child(route);
    if let Some(trace) = f.trace.filter(|t| t.is_active()) {
        item = item.child(
            XmlElement::new("trace")
                .attr("id", format!("{:016x}", trace.trace_id))
                .attr("span", trace.parent_span.to_string())
                .attr("hop", trace.hop.to_string()),
        );
    }
    item
}

/// Wraps a broker packet in a Fuego event notification (topic
/// `cxt/<type>`, the packet's source as sender).
pub fn notification_for_packet(f: &PacketFields<'_>, id: u64) -> EventNotification {
    EventNotification::new(
        format!("cxt/{}", f.type_name),
        f.source,
        packet_body(f),
        f.published_at,
    )
    .with_id(id)
}

/// The full wire envelope, padded to the fixed [`ENVELOPE_BYTES`] frame.
///
/// Padding is an explicit `fg:padding` element (dots), with a root-text
/// fallback for gaps smaller than the element's own overhead, so the
/// result is byte-exact for every §6-shaped packet.
pub fn envelope_for_packet(f: &PacketFields<'_>, id: u64) -> XmlElement {
    let mut env = notification_for_packet(f, id).to_envelope();
    let size = env.wire_size();
    let gap = ENVELOPE_BYTES.saturating_sub(size);
    // <fg:padding>…</fg:padding> costs 25 bytes plus its text.
    const PAD_OVERHEAD: usize = 25;
    if gap >= PAD_OVERHEAD {
        env = env.child(XmlElement::new("fg:padding").text(".".repeat(gap - PAD_OVERHEAD)));
    } else if gap > 0 {
        env.text = " ".repeat(gap);
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    fn canonical() -> (String, u64) {
        ("intSensor://nokia6630-352087/wind0".to_owned(), 42)
    }

    #[test]
    fn compat_envelope_is_exactly_the_paper_frame() {
        let (source, id) = canonical();
        let f = PacketFields {
            type_name: "wind",
            value_milli: 8_500,
            published_at: SimTime::from_secs(120),
            expires_at: SimTime::from_secs(120) + SimDuration::from_secs(60),
            source: &source,
            hops: &[1],
            trace: None,
        };
        let env = envelope_for_packet(&f, id);
        assert_eq!(env.wire_size(), ENVELOPE_BYTES);
    }

    #[test]
    fn frame_is_stable_across_field_widths() {
        // Short and long names, zero and multi hop: the padding absorbs
        // the variation, so every §6-shaped packet costs the same.
        for (ty, src, hops) in [
            ("t", "s", &[][..]),
            ("temperature", "extSensor://weatherstation-helsinki-kumpula/t9", &[0, 1, 2][..]),
        ] {
            let f = PacketFields {
                type_name: ty,
                value_milli: -1_234_567,
                published_at: SimTime::from_millis(1_123_851_807),
                expires_at: SimTime::from_millis(1_123_851_807) + SimDuration::from_secs(300),
                source: src,
                hops,
                trace: None,
            };
            assert_eq!(envelope_for_packet(&f, 7).wire_size(), ENVELOPE_BYTES, "{ty}");
        }
    }

    #[test]
    fn trace_context_rides_in_the_padding_region() {
        let (source, id) = canonical();
        let mut f = PacketFields {
            type_name: "wind",
            value_milli: 8_500,
            published_at: SimTime::from_secs(120),
            expires_at: SimTime::from_secs(120) + SimDuration::from_secs(60),
            source: &source,
            hops: &[1],
            trace: None,
        };
        let classic = envelope_for_packet(&f, id);
        assert_eq!(classic.wire_size(), ENVELOPE_BYTES);
        assert!(!classic.to_xml().contains("<trace"), "untraced layout grew a trace element");

        // An inactive context renders the classic layout byte-for-byte.
        f.trace = Some(tracekit::TraceCtx::NONE);
        assert_eq!(envelope_for_packet(&f, id).to_xml(), classic.to_xml());

        // An active one adds the element; the padding absorbs it.
        let ctx = tracekit::TraceCtx::root(0xabcd, 0).child(7);
        f.trace = Some(ctx);
        let traced = envelope_for_packet(&f, id);
        assert_eq!(traced.wire_size(), ENVELOPE_BYTES, "trace element broke the pinned frame");
        let parsed = XmlElement::parse(&traced.to_xml()).expect("traced envelope stays well-formed");
        let back = EventNotification::from_envelope(&parsed).expect("envelope shape intact");
        let trace = back.body.find("trace").expect("trace element");
        assert_eq!(trace.attribute("id"), Some(format!("{:016x}", ctx.trace_id).as_str()));
        assert_eq!(trace.attribute("span"), Some("7"));
        assert_eq!(trace.attribute("hop"), Some("0"));
    }

    #[test]
    fn envelope_still_parses_and_round_trips_routing() {
        let (source, id) = canonical();
        let f = PacketFields {
            type_name: "wind",
            value_milli: 8_500,
            published_at: SimTime::from_secs(120),
            expires_at: SimTime::from_secs(120) + SimDuration::from_secs(60),
            source: &source,
            hops: &[1, 3],
            trace: None,
        };
        let env = envelope_for_packet(&f, id);
        let parsed = XmlElement::parse(&env.to_xml()).expect("padded envelope stays well-formed");
        let back = EventNotification::from_envelope(&parsed).expect("envelope shape intact");
        assert_eq!(back.topic, "cxt/wind");
        assert_eq!(back.sender, source);
        assert_eq!(back.id, id);
        let body = back.body;
        assert_eq!(body.attribute("type"), Some("wind"));
        assert_eq!(body.attribute("source"), Some(source.as_str()));
        assert_eq!(body.attribute("lifetime"), Some("60000"));
        let route = body.find("route").expect("route trail");
        assert_eq!(route.attribute("hops"), Some("2"));
        assert_eq!(route.children.len(), 2);
    }
}
