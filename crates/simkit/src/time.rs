//! Virtual time types.
//!
//! [`SimTime`] is an instant measured from the start of the simulation and
//! [`SimDuration`] is a span between instants. Both have microsecond
//! resolution, which is finer than anything the paper reports (its most
//! precise latency is 0.078 ms) while still giving ~584 000 years of range
//! in a `u64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of virtual time, in microseconds since simulation start.
///
/// ```
/// use simkit::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_millis(), 2000);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
///
/// ```
/// use simkit::SimDuration;
/// assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds since simulation start.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`; saturates
    /// to zero in release builds.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "since() with a later instant");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Total microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds as a float (the unit of the paper's Table 1).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.as_millis();
        let (h, rem) = (total_ms / 3_600_000, total_ms % 3_600_000);
        let (m, rem) = (rem / 60_000, rem % 60_000);
        let (s, ms) = (rem / 1_000, rem % 1_000);
        write!(f, "{h}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_mins(2).as_secs(), 120);
        assert_eq!(SimDuration::from_hours(1).as_secs(), 3600);
        assert_eq!(SimTime::from_secs(5).as_millis(), 5_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(100);
        let u = t + SimDuration::from_millis(50);
        assert_eq!((u - t).as_millis(), 50);
        assert_eq!((u - SimDuration::from_millis(150)), SimTime::ZERO);
        assert_eq!(
            SimDuration::from_millis(10) * 3,
            SimDuration::from_millis(30)
        );
        assert_eq!(SimDuration::from_millis(30) / 3, SimDuration::from_millis(10));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn saturating_behaviour() {
        let a = SimDuration::from_millis(5);
        let b = SimDuration::from_millis(9);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(2_500).to_string(), "2.500s");
        let t = SimTime::from_secs(3_723) + SimDuration::from_millis(42);
        assert_eq!(t.to_string(), "1:02:03.042");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
