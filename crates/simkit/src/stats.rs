//! Online statistics and confidence intervals.
//!
//! The paper reports every measurement as `avg [90% confidence interval
//! half-width]`; [`Summary`] produces exactly that pair. Small samples use
//! Student's t critical values, larger ones the normal approximation.

use std::fmt;

/// Student's t critical values for a two-sided 90 % interval (α = 0.05 per
/// tail), indexed by degrees of freedom 1..=30.
const T90: [f64; 30] = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
    1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
    1.703, 1.701, 1.699, 1.697,
];

/// z-value for a two-sided 90 % interval under the normal approximation.
const Z90: f64 = 1.645;

/// Welford online accumulator for mean / variance / extrema.
///
/// ```
/// use simkit::stats::Summary;
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert!(s.ci90_half() > 0.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn of(samples: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in samples {
            s.push(v);
        }
        s
    }

    /// Adds a sample.
    pub fn push(&mut self, v: f64) {
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the two-sided 90 % confidence interval on the mean —
    /// the bracketed number the paper prints next to every average.
    pub fn ci90_half(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let df = (self.n - 1) as usize;
        let crit = if df <= 30 { T90[df - 1] } else { Z90 };
        crit * self.sem()
    }

    /// Smallest sample seen (+∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    /// Paper-style `avg [half-width]` rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} [{:.3}]", self.mean(), self.ci90_half())
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Returns the `p`-th percentile (0–100) of a sample set using linear
/// interpolation. Sorts a copy; intended for end-of-run reporting.
///
/// # Panics
///
/// Panics if `samples` is empty, `p` is outside `[0, 100]`, or any sample
/// is NaN.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci90_half(), 0.0);
    }

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&data);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // naive unbiased variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn ci90_uses_t_for_small_samples() {
        // n=2, df=1 -> t = 6.314
        let s = Summary::of(&[0.0, 2.0]);
        // std = sqrt(2), sem = 1
        assert!((s.ci90_half() - 6.314).abs() < 1e-9);
    }

    #[test]
    fn ci90_uses_z_for_large_samples() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = Summary::of(&data);
        let expect = Z90 * s.sem();
        assert!((s.ci90_half() - expect).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_combined() {
        let a: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let b: Vec<f64> = (0..70).map(|i| (i as f64).cos() * 3.0 + 1.0).collect();
        let mut m = Summary::of(&a);
        m.merge(&Summary::of(&b));
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let full = Summary::of(&all);
        assert_eq!(m.count(), full.count());
        assert!((m.mean() - full.mean()).abs() < 1e-9);
        assert!((m.variance() - full.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Summary::new();
        a.merge(&Summary::of(&[1.0, 2.0]));
        assert_eq!(a.count(), 2);
        let mut b = Summary::of(&[1.0, 2.0]);
        b.merge(&Summary::new());
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn display_is_paper_style() {
        let s = Summary::of(&[1.0, 1.0, 1.0]);
        assert_eq!(s.to_string(), "1.000 [0.000]");
    }

    #[test]
    fn percentile_interpolates() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&data, 0.0), 10.0);
        assert_eq!(percentile(&data, 100.0), 40.0);
        assert_eq!(percentile(&data, 50.0), 25.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn from_iterator() {
        let s: Summary = (1..=3).map(|v| v as f64).collect();
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }
}
