//! Step-function time series.
//!
//! [`TimeSeries`] records `(time, value)` samples where each value holds
//! until the next sample — exactly how a power rail behaves between state
//! changes. It supports time-weighted averaging, integration (energy =
//! ∫ power dt), resampling at a fixed period (the paper's Fluke 189 sampled
//! every 500 ms) and a small ASCII renderer used by the figure binaries.

use crate::time::{SimDuration, SimTime};
use std::fmt::Write as _;

/// A named step-function time series.
///
/// ```
/// use simkit::trace::TimeSeries;
/// use simkit::{SimTime, SimDuration};
///
/// let mut ts = TimeSeries::new("power_mw");
/// ts.record(SimTime::ZERO, 10.0);
/// ts.record(SimTime::from_secs(1), 30.0);
/// // 10 mW for 1 s + 30 mW for 1 s = 40 mJ over [0, 2 s]
/// let mj = ts.integrate(SimTime::ZERO, SimTime::from_secs(2));
/// assert!((mj - 40.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a name (used as the CSV column header).
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Samples must be recorded in non-decreasing time
    /// order; a sample at the same instant as the previous one replaces it.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last recorded sample.
    pub fn record(&mut self, t: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "samples must be time-ordered");
            if t == last {
                self.points.last_mut().expect("nonempty").1 = value;
                return;
            }
        }
        self.points.push((t, value));
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over `(time, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Value in effect at time `t` (`None` before the first sample).
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => None,
            i => Some(self.points[i - 1].1),
        }
    }

    /// Largest recorded value (`None` if empty).
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Smallest recorded value (`None` if empty).
    pub fn min_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.min(v),
            })
        })
    }

    /// Integral of the step function over `[from, to]`, in value × seconds.
    /// With values in milliwatts this yields millijoules.
    ///
    /// Time before the first sample contributes zero.
    pub fn integrate(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let mut acc = 0.0;
        for (i, &(t, v)) in self.points.iter().enumerate() {
            let seg_start = t.max(from);
            let seg_end = match self.points.get(i + 1) {
                Some(&(next, _)) => next.min(to),
                None => to,
            };
            if seg_end > seg_start {
                acc += v * (seg_end - seg_start).as_secs_f64();
            }
            if t >= to {
                break;
            }
        }
        acc
    }

    /// Time-weighted mean value over `[from, to]`.
    pub fn mean_between(&self, from: SimTime, to: SimTime) -> f64 {
        let span = (to - from).as_secs_f64();
        if span == 0.0 {
            return 0.0;
        }
        self.integrate(from, to) / span
    }

    /// Resamples the step function every `period` over `[from, to)`,
    /// mimicking a sampling multimeter. Times before the first sample read
    /// as 0.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn resample(&self, from: SimTime, to: SimTime, period: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!period.is_zero(), "resample period must be non-zero");
        let mut out = Vec::new();
        let mut t = from;
        while t < to {
            out.push((t, self.value_at(t).unwrap_or(0.0)));
            t += period;
        }
        out
    }

    /// Renders the series as a CSV document with `time_s` and the series
    /// name as columns.
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "time_s,{}", self.name);
        for &(t, v) in &self.points {
            let _ = writeln!(s, "{:.6},{v:.6}", t.as_secs_f64());
        }
        s
    }

    /// Renders an ASCII plot (`width` columns × `height` rows) of the series
    /// over `[from, to]`, used by the figure-regeneration binaries.
    pub fn ascii_plot(&self, from: SimTime, to: SimTime, width: usize, height: usize) -> String {
        let width = width.max(8);
        let height = height.max(3);
        let lo = 0.0_f64;
        let hi = self.max_value().unwrap_or(1.0).max(1e-9);
        let span = (to - from).as_secs_f64().max(1e-9);
        let mut grid = vec![vec![' '; width]; height];
        for col in 0..width {
            let t = from + SimDuration::from_secs_f64(span * col as f64 / width as f64);
            let v = self.value_at(t).unwrap_or(0.0);
            let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            let bar = (frac * (height - 1) as f64).round() as usize;
            for (row, grid_row) in grid.iter_mut().enumerate() {
                // row 0 is the top of the plot
                let level = height - 1 - row;
                if level <= bar && v > 0.0 || (level == 0) {
                    grid_row[col] = if level == bar { '*' } else { '.' };
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} (max {:.1})", self.name, hi);
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "+{} {:.0}s..{:.0}s",
            "-".repeat(width),
            from.as_secs_f64(),
            to.as_secs_f64()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn value_at_steps() {
        let mut ts = TimeSeries::new("p");
        ts.record(secs(1), 5.0);
        ts.record(secs(3), 7.0);
        assert_eq!(ts.value_at(SimTime::ZERO), None);
        assert_eq!(ts.value_at(secs(1)), Some(5.0));
        assert_eq!(ts.value_at(secs(2)), Some(5.0));
        assert_eq!(ts.value_at(secs(3)), Some(7.0));
        assert_eq!(ts.value_at(secs(99)), Some(7.0));
    }

    #[test]
    fn same_instant_replaces() {
        let mut ts = TimeSeries::new("p");
        ts.record(secs(1), 5.0);
        ts.record(secs(1), 9.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.value_at(secs(1)), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_panics() {
        let mut ts = TimeSeries::new("p");
        ts.record(secs(2), 1.0);
        ts.record(secs(1), 1.0);
    }

    #[test]
    fn integrate_spans_segments() {
        let mut ts = TimeSeries::new("p");
        ts.record(SimTime::ZERO, 10.0);
        ts.record(secs(2), 20.0);
        // [0,2): 10*2 = 20; [2,5): 20*3 = 60
        assert!((ts.integrate(SimTime::ZERO, secs(5)) - 80.0).abs() < 1e-9);
        // partial window
        assert!((ts.integrate(secs(1), secs(3)) - 30.0).abs() < 1e-9);
        // empty window
        assert_eq!(ts.integrate(secs(3), secs(3)), 0.0);
    }

    #[test]
    fn integrate_before_first_sample_is_zero() {
        let mut ts = TimeSeries::new("p");
        ts.record(secs(5), 100.0);
        assert_eq!(ts.integrate(SimTime::ZERO, secs(5)), 0.0);
        assert!((ts.integrate(SimTime::ZERO, secs(6)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mean_between_is_time_weighted() {
        let mut ts = TimeSeries::new("p");
        ts.record(SimTime::ZERO, 0.0);
        ts.record(secs(1), 100.0);
        let m = ts.mean_between(SimTime::ZERO, secs(2));
        assert!((m - 50.0).abs() < 1e-9);
    }

    #[test]
    fn resample_period() {
        let mut ts = TimeSeries::new("p");
        ts.record(SimTime::ZERO, 1.0);
        ts.record(secs(1), 2.0);
        let samples = ts.resample(SimTime::ZERO, secs(2), SimDuration::from_millis(500));
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].1, 1.0);
        assert_eq!(samples[1].1, 1.0);
        assert_eq!(samples[2].1, 2.0);
        assert_eq!(samples[3].1, 2.0);
    }

    #[test]
    fn min_max_values() {
        let mut ts = TimeSeries::new("p");
        assert_eq!(ts.max_value(), None);
        ts.record(SimTime::ZERO, 3.0);
        ts.record(secs(1), -1.0);
        assert_eq!(ts.max_value(), Some(3.0));
        assert_eq!(ts.min_value(), Some(-1.0));
    }

    #[test]
    fn csv_output() {
        let mut ts = TimeSeries::new("power_mw");
        ts.record(SimTime::ZERO, 1.5);
        let csv = ts.to_csv();
        assert!(csv.starts_with("time_s,power_mw\n"));
        assert!(csv.contains("0.000000,1.500000"));
    }

    #[test]
    fn ascii_plot_has_expected_shape() {
        let mut ts = TimeSeries::new("p");
        ts.record(SimTime::ZERO, 0.0);
        ts.record(secs(5), 100.0);
        let plot = ts.ascii_plot(SimTime::ZERO, secs(10), 40, 8);
        assert!(plot.contains('*'));
        assert_eq!(plot.lines().count(), 8 + 2);
    }
}
