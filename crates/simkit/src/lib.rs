//! # contory-simkit
//!
//! Deterministic discrete-event simulation kernel used by every substrate in
//! the Contory reproduction (phones, radios, Smart Messages, the event
//! infrastructure and the application scenarios).
//!
//! The classic kernel ([`Sim`]) is intentionally small and
//! single-threaded: the paper's evaluation is about *latency* and
//! *energy*, both of which we obtain by advancing a virtual clock, so
//! wall-clock concurrency would only add non-determinism. A scenario
//! seed fully determines every event ordering, which makes the benchmark
//! tables exactly reproducible run-over-run.
//!
//! For populations far beyond the paper's regatta (the ROADMAP's
//! city-scale north star) the [`shard`] module adds a *partitioned*
//! engine, [`ShardSim`]: per-shard event queues under a
//! partition-independent `(time, actor, seq)` total order, a
//! deterministic cross-shard merge batched at time-step barriers, and
//! optional scoped-thread parallel stepping (`parallel` feature, on by
//! default). Same seed ⇒ byte-identical outputs for any shard or thread
//! count, so parallelism never costs reproducibility.
//!
//! Main pieces:
//!
//! - [`SimTime`] / [`SimDuration`]: microsecond-resolution virtual time.
//! - [`Sim`]: the event queue. Cheap to clone (handle semantics); events are
//!   `FnOnce` closures, repeating timers are supported via
//!   [`Sim::schedule_repeating`].
//! - [`DetRng`]: seeded random source with the distributions the radio
//!   models need (uniform, Gaussian, log-normal, exponential).
//! - [`stats`]: online mean/variance and the 90 % confidence intervals the
//!   paper reports next to every measurement.
//! - [`trace::TimeSeries`]: step-function time series used for power traces
//!   (paper Figs. 4 and 5), with integration and ASCII rendering.
//! - [`faults`]: deterministic fault injection — scripted
//!   [`FaultPlan`]s compiled to up/down edges and applied to registered
//!   kill-switches by a [`FaultInjector`] (paper Fig. 5's source
//!   failures, made reproducible).
//!
//! # Example
//!
//! ```
//! use simkit::{Sim, SimDuration};
//! use std::cell::Cell;
//! use std::rc::Rc;
//!
//! let sim = Sim::new();
//! let fired = Rc::new(Cell::new(false));
//! let f = fired.clone();
//! sim.schedule_in(SimDuration::from_millis(5), move || f.set(true));
//! sim.run_until_idle();
//! assert!(fired.get());
//! assert_eq!(sim.now().as_millis(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
mod rng;
pub mod shard;
mod sim;
pub mod stats;
mod time;
pub mod trace;

pub use faults::{FaultInjector, FaultPlan};
pub use rng::DetRng;
pub use shard::{ActorId, EventCtx, EventKey, ShardConfig, ShardId, ShardSim};
pub use sim::{Sim, TimerId};
pub use time::{SimDuration, SimTime};
