//! The discrete-event scheduler.
//!
//! [`Sim`] is a cheaply-clonable handle to a shared event queue. Components
//! keep a clone and schedule closures; [`Sim::run_until_idle`] (or the
//! bounded variants) drains the queue in timestamp order, advancing the
//! virtual clock to each event's due time before running it.
//!
//! Events scheduled for the same instant run in scheduling order (FIFO),
//! which keeps simulations deterministic.
//!
//! Every event additionally carries a [`ShardId`] ordering tag, giving
//! the queue the same Lamport-style `(time, shard, seq)` total order the
//! partitioned engine ([`crate::shard::ShardSim`]) uses. A plain [`Sim`]
//! lives entirely on shard 0, where the tag is constant and the order
//! degenerates to the classic `(time, seq)` FIFO — existing scenarios
//! are bit-for-bit unaffected. Components that know their delivery
//! target's shard (radio links crossing a partition boundary) tag their
//! events via [`Sim::schedule_at_sharded`]/[`Sim::schedule_in_sharded`],
//! so a future move of the scenario onto `ShardSim` preserves ordering.

use crate::shard::ShardId;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

/// Identifier of a scheduled event, used to cancel it.
///
/// Returned by [`Sim::schedule_at`] and friends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

struct Entry {
    at: SimTime,
    shard: ShardId,
    seq: u64,
    id: TimerId,
    f: Box<dyn FnOnce()>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.shard == other.shard && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap is a max-heap; invert so the earliest event pops first.
    // The `(time, shard, seq)` key matches the partitioned engine's
    // total order; with every tag on shard 0 it is the classic
    // `(time, seq)` FIFO.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.shard, other.seq).cmp(&(self.at, self.shard, self.seq))
    }
}

#[derive(Default)]
struct Inner {
    now: SimTime,
    shard: ShardId,
    next_seq: u64,
    queue: BinaryHeap<Entry>,
    cancelled: BTreeSet<TimerId>,
    processed: u64,
}

/// Handle to a deterministic single-threaded discrete-event simulator.
///
/// Clones share the same queue and clock.
///
/// ```
/// use simkit::{Sim, SimDuration, SimTime};
/// use std::{cell::RefCell, rc::Rc};
///
/// let sim = Sim::new();
/// let order = Rc::new(RefCell::new(Vec::new()));
/// let (a, b) = (order.clone(), order.clone());
/// sim.schedule_in(SimDuration::from_millis(2), move || a.borrow_mut().push("late"));
/// sim.schedule_in(SimDuration::from_millis(1), move || b.borrow_mut().push("early"));
/// sim.run_until_idle();
/// assert_eq!(*order.borrow(), ["early", "late"]);
/// assert_eq!(sim.now(), SimTime::from_millis(2));
/// ```
#[derive(Clone, Default)]
pub struct Sim {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Sim")
            .field("now", &inner.now)
            .field("pending", &inner.queue.len())
            .field("processed", &inner.processed)
            .finish()
    }
}

impl Sim {
    /// Creates a simulator with the clock at [`SimTime::ZERO`], homed on
    /// shard 0.
    pub fn new() -> Self {
        Sim::default()
    }

    /// Creates a simulator homed on the given shard: untagged schedules
    /// carry `shard` as their ordering tag instead of shard 0.
    pub fn for_shard(shard: ShardId) -> Self {
        let sim = Sim::default();
        sim.inner.borrow_mut().shard = shard;
        sim
    }

    /// The shard this simulator is homed on (the default ordering tag).
    pub fn shard(&self) -> ShardId {
        self.inner.borrow().shard
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.inner.borrow().processed
    }

    /// Number of events still queued (including cancelled ones not yet
    /// reaped).
    pub fn pending(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// Events scheduled in the past run at the current time, never rewinding
    /// the clock.
    pub fn schedule_at(&self, at: SimTime, f: impl FnOnce() + 'static) -> TimerId {
        let shard = self.shard();
        self.schedule_at_sharded(shard, at, f)
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule_in(&self, delay: SimDuration, f: impl FnOnce() + 'static) -> TimerId {
        let at = self.now() + delay;
        self.schedule_at(at, f)
    }

    /// Schedules `f` at absolute time `at` with an explicit shard
    /// ordering tag — the delivery-side shard of a cross-partition
    /// event. Same-instant events order by `(shard, seq)`, matching the
    /// partitioned engine's merge, so a scenario keeps its event order
    /// when moved onto [`crate::shard::ShardSim`].
    pub fn schedule_at_sharded(
        &self,
        shard: ShardId,
        at: SimTime,
        f: impl FnOnce() + 'static,
    ) -> TimerId {
        let mut inner = self.inner.borrow_mut();
        let at = at.max(inner.now);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let id = TimerId(seq);
        inner.queue.push(Entry {
            at,
            shard,
            seq,
            id,
            f: Box::new(f),
        });
        id
    }

    /// Schedules `f` to run `delay` after the current time, tagged with
    /// an explicit delivery shard (see [`Sim::schedule_at_sharded`]).
    pub fn schedule_in_sharded(
        &self,
        shard: ShardId,
        delay: SimDuration,
        f: impl FnOnce() + 'static,
    ) -> TimerId {
        let at = self.now() + delay;
        self.schedule_at_sharded(shard, at, f)
    }

    /// Schedules `f` to run every `interval`, starting one `interval` from
    /// now, until `f` returns `false`.
    ///
    /// Returns the id of the *first* tick; cancelling it before it fires
    /// stops the whole series (later ticks get fresh ids internally, so stop
    /// a running series by returning `false`).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero (the series would never advance time).
    pub fn schedule_repeating(
        &self,
        interval: SimDuration,
        f: impl FnMut() -> bool + 'static,
    ) -> TimerId {
        assert!(!interval.is_zero(), "repeating interval must be non-zero");
        let sim = self.clone();
        let f = Rc::new(RefCell::new(f));
        fn tick(sim: Sim, interval: SimDuration, f: Rc<RefCell<dyn FnMut() -> bool>>) {
            let again = (f.borrow_mut())();
            if again {
                let s = sim.clone();
                sim.schedule_in(interval, move || tick(s, interval, f));
            }
        }
        self.schedule_in(interval, move || tick(sim.clone(), interval, f))
    }

    /// Cancels a scheduled event. Cancelling an already-run or unknown id is
    /// a no-op.
    pub fn cancel(&self, id: TimerId) {
        self.inner.borrow_mut().cancelled.insert(id);
    }

    /// Runs the next pending event, advancing the clock to its due time.
    ///
    /// Returns `false` if the queue was empty.
    pub fn step(&self) -> bool {
        loop {
            let entry = {
                let mut inner = self.inner.borrow_mut();
                match inner.queue.pop() {
                    None => return false,
                    Some(e) => {
                        if inner.cancelled.remove(&e.id) {
                            continue;
                        }
                        debug_assert!(e.at >= inner.now, "event queue went backwards");
                        inner.now = e.at;
                        inner.processed += 1;
                        e
                    }
                }
            };
            // Borrow released: the event may freely schedule or cancel.
            (entry.f)();
            return true;
        }
    }

    /// Runs events until the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics after 100 million events as a runaway guard — a simulation
    /// with an unbounded repeating timer should use [`Sim::run_until`]
    /// instead.
    pub fn run_until_idle(&self) {
        let mut guard: u64 = 100_000_000;
        while self.step() {
            guard -= 1;
            assert!(guard > 0, "run_until_idle exceeded 100M events; runaway timer?");
        }
    }

    /// Runs events with a due time `<= deadline`, then sets the clock to
    /// `deadline` (even if the queue emptied earlier).
    pub fn run_until(&self, deadline: SimTime) {
        loop {
            let due = {
                let inner = self.inner.borrow();
                match inner.queue.peek() {
                    Some(e) if e.at <= deadline => true,
                    _ => false,
                }
            };
            if !due {
                break;
            }
            self.step();
        }
        let mut inner = self.inner.borrow_mut();
        inner.now = inner.now.max(deadline);
    }

    /// Runs for `dur` of virtual time from the current instant.
    pub fn run_for(&self, dur: SimDuration) {
        let deadline = self.now() + dur;
        self.run_until(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn events_run_in_time_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (delay, tag) in [(30u64, "c"), (10, "a"), (20, "b")] {
            let log = log.clone();
            sim.schedule_in(SimDuration::from_millis(delay), move || {
                log.borrow_mut().push(tag)
            });
        }
        sim.run_until_idle();
        assert_eq!(*log.borrow(), ["a", "b", "c"]);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn same_time_events_run_fifo() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in ["first", "second", "third"] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_millis(5), move || log.borrow_mut().push(tag));
        }
        sim.run_until_idle();
        assert_eq!(*log.borrow(), ["first", "second", "third"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let sim = Sim::new();
        let done = Rc::new(Cell::new(0u64));
        let d = done.clone();
        let s = sim.clone();
        sim.schedule_in(SimDuration::from_millis(1), move || {
            let d2 = d.clone();
            s.schedule_in(SimDuration::from_millis(1), move || {
                d2.set(d2.get() + 1);
            });
            d.set(d.get() + 1);
        });
        sim.run_until_idle();
        assert_eq!(done.get(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    fn cancel_prevents_execution() {
        let sim = Sim::new();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let id = sim.schedule_in(SimDuration::from_millis(1), move || f.set(true));
        sim.cancel(id);
        sim.run_until_idle();
        assert!(!fired.get());
        // clock does not advance for cancelled events
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let sim = Sim::new();
        sim.cancel(TimerId(999));
        assert!(!sim.step());
    }

    #[test]
    fn past_events_run_at_current_time() {
        let sim = Sim::new();
        sim.schedule_in(SimDuration::from_millis(10), || {});
        sim.run_until_idle();
        let when = Rc::new(Cell::new(SimTime::ZERO));
        let w = when.clone();
        let s = sim.clone();
        sim.schedule_at(SimTime::from_millis(3), move || w.set(s.now()));
        sim.run_until_idle();
        assert_eq!(when.get(), SimTime::from_millis(10));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new();
        let count = Rc::new(Cell::new(0u64));
        let c = count.clone();
        sim.schedule_repeating(SimDuration::from_secs(1), move || {
            c.set(c.get() + 1);
            true
        });
        sim.run_until(SimTime::from_millis(3_500));
        assert_eq!(count.get(), 3);
        assert_eq!(sim.now(), SimTime::from_millis(3_500));
        sim.run_for(SimDuration::from_millis(500));
        assert_eq!(count.get(), 4);
    }

    #[test]
    fn repeating_stops_when_false() {
        let sim = Sim::new();
        let count = Rc::new(Cell::new(0u64));
        let c = count.clone();
        sim.schedule_repeating(SimDuration::from_millis(10), move || {
            c.set(c.get() + 1);
            c.get() < 5
        });
        sim.run_until_idle();
        assert_eq!(count.get(), 5);
        assert_eq!(sim.now(), SimTime::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn repeating_rejects_zero_interval() {
        let sim = Sim::new();
        sim.schedule_repeating(SimDuration::ZERO, || true);
    }

    #[test]
    fn run_until_with_empty_queue_advances_clock() {
        let sim = Sim::new();
        sim.run_until(SimTime::from_secs(9));
        assert_eq!(sim.now(), SimTime::from_secs(9));
    }

    #[test]
    fn same_time_events_order_by_shard_then_seq() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        // Scheduled in reverse shard order at the same instant: the
        // shard tag, not FIFO order, must win.
        for (shard, tag) in [(2u32, "s2"), (0, "s0a"), (1, "s1"), (0, "s0b")] {
            let log = log.clone();
            sim.schedule_at_sharded(ShardId(shard), SimTime::from_millis(5), move || {
                log.borrow_mut().push(tag)
            });
        }
        sim.run_until_idle();
        assert_eq!(*log.borrow(), ["s0a", "s0b", "s1", "s2"]);
    }

    #[test]
    fn shard_zero_tags_preserve_classic_fifo() {
        // Tagging everything shard 0 (what every legacy caller does via
        // plain schedule_at) must reproduce the untagged FIFO exactly.
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in ["first", "second", "third"] {
            let log = log.clone();
            sim.schedule_in_sharded(ShardId::ZERO, SimDuration::from_millis(5), move || {
                log.borrow_mut().push(tag)
            });
        }
        sim.run_until_idle();
        assert_eq!(*log.borrow(), ["first", "second", "third"]);
    }

    #[test]
    fn for_shard_homes_untagged_schedules() {
        let sim = Sim::for_shard(ShardId(3));
        assert_eq!(sim.shard(), ShardId(3));
        let log = Rc::new(RefCell::new(Vec::new()));
        {
            let log = log.clone();
            // Untagged: inherits the home shard (3).
            sim.schedule_at(SimTime::from_millis(1), move || log.borrow_mut().push("home"));
        }
        {
            let log = log.clone();
            // Explicitly earlier shard at the same instant runs first.
            sim.schedule_at_sharded(ShardId(1), SimTime::from_millis(1), move || {
                log.borrow_mut().push("early-shard")
            });
        }
        sim.run_until_idle();
        assert_eq!(*log.borrow(), ["early-shard", "home"]);
        assert_eq!(Sim::new().shard(), ShardId::ZERO);
    }

    #[test]
    fn clones_share_state() {
        let sim = Sim::new();
        let other = sim.clone();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        other.schedule_in(SimDuration::from_millis(1), move || f.set(true));
        sim.run_until_idle();
        assert!(fired.get());
        assert_eq!(other.now(), sim.now());
    }
}
