//! Deterministic fault injection.
//!
//! Failures are a first-class, scriptable input to a simulation: a
//! [`FaultPlan`] declares *when* each named target is down, and a
//! [`FaultInjector`] turns the plan into scheduled events that flip the
//! kill-switches upper layers register for those targets.
//!
//! Design points:
//!
//! - **Targets are plain string labels** (`"radio:bt"`, `"radio:wifi"`,
//!   `"radio:cell"`, `"sensor:temperature"`, `"broker"`, `"node:7"`, …)
//!   so this bottom-layer crate needs no knowledge of radios, sensors or
//!   brokers. The layer that owns a kill-switch picks the label; the
//!   testbed wires the two together.
//! - **Plans are compiled eagerly.** Probabilistic flapping draws all of
//!   its on/off intervals at *plan-build* time from a generator derived
//!   from `(plan seed, target label, call index)`. The schedule is
//!   therefore a pure function of the seed and the building calls —
//!   independent of event interleaving and of the order in which targets
//!   are configured — which is what makes failure scenarios exactly
//!   reproducible (same seed + same plan ⇒ same fault timeline).
//! - **State is queryable.** [`FaultPlan::is_up`] answers "was this
//!   target up at time t?" without running a simulation, so property
//!   tests can check "nothing was delivered through a down link" against
//!   the plan itself.
//!
//! # Example
//!
//! ```
//! use simkit::faults::{FaultInjector, FaultPlan};
//! use simkit::{Sim, SimDuration, SimTime};
//! use std::{cell::Cell, rc::Rc};
//!
//! let mut plan = FaultPlan::new(42);
//! plan.down_between("radio:bt", SimTime::from_secs(10), SimTime::from_secs(20));
//!
//! let sim = Sim::new();
//! let injector = FaultInjector::new(&sim);
//! let bt_up = Rc::new(Cell::new(true));
//! let flag = bt_up.clone();
//! injector.register("radio:bt", move |up| flag.set(up));
//! injector.install(&plan);
//!
//! sim.run_until(SimTime::from_secs(15));
//! assert!(!bt_up.get());
//! sim.run_until(SimTime::from_secs(25));
//! assert!(bt_up.get());
//! ```

#![deny(warnings)]

use crate::rng::DetRng;
use crate::sim::Sim;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A half-open downtime interval `[start, end)`; `end == None` means the
/// outage never heals (a kill).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Downtime {
    start: SimTime,
    end: Option<SimTime>,
}

impl Downtime {
    fn covers(&self, at: SimTime) -> bool {
        at >= self.start && self.end.map_or(true, |e| at < e)
    }
}

/// One up/down edge of a compiled fault schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEdge {
    /// When the edge fires.
    pub at: SimTime,
    /// `true` = target comes back up, `false` = target goes down.
    pub up: bool,
}

/// A scripted, deterministic failure schedule over named targets.
///
/// Overlapping scripts compose by *union of downtime*: a target is down
/// at `t` iff any configured outage covers `t`. Every target starts up.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    downtimes: BTreeMap<String, Vec<Downtime>>,
    /// Per-target count of flap_random() calls, for derived-stream seeding.
    flap_calls: BTreeMap<String, u64>,
    /// Instants at which a crash-restarted target comes back up with
    /// empty state (as opposed to a transparent outage healing).
    restarts: BTreeMap<String, Vec<SimTime>>,
    /// Per-link lossy-delivery models, keyed by link label.
    links: BTreeMap<String, LinkFault>,
}

fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FaultPlan {
    /// An empty plan. `seed` drives every probabilistic script added
    /// later; two plans built with the same seed and the same calls have
    /// identical schedules.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            downtimes: BTreeMap::new(),
            flap_calls: BTreeMap::new(),
            restarts: BTreeMap::new(),
            links: BTreeMap::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Scripts an outage of `target` over `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until`.
    pub fn down_between(&mut self, target: &str, from: SimTime, until: SimTime) -> &mut Self {
        assert!(from < until, "down_between requires from < until");
        self.downtimes
            .entry(target.to_owned())
            .or_default()
            .push(Downtime {
                start: from,
                end: Some(until),
            });
        self
    }

    /// Scripts a one-shot kill: `target` goes down at `at` and never
    /// recovers.
    pub fn kill_at(&mut self, target: &str, at: SimTime) -> &mut Self {
        self.downtimes
            .entry(target.to_owned())
            .or_default()
            .push(Downtime {
                start: at,
                end: None,
            });
        self
    }

    /// Scripts a crash-*restart*: `target` crashes at `at`, stays dark
    /// for `down_for`, then comes back up **with empty state**. The
    /// recovery instant is recorded separately from ordinary outage
    /// healing so harnesses can distinguish "the link came back" (state
    /// intact) from "the process restarted" (state wiped, recovery
    /// protocol must run).
    ///
    /// # Panics
    ///
    /// Panics if `down_for` is zero.
    pub fn crash_restart(
        &mut self,
        target: &str,
        at: SimTime,
        down_for: SimDuration,
    ) -> &mut Self {
        assert!(!down_for.is_zero(), "crash_restart requires non-zero downtime");
        let back = at + down_for;
        self.down_between(target, at, back);
        let slot = self.restarts.entry(target.to_owned()).or_default();
        slot.push(back);
        slot.sort();
        slot.dedup();
        self
    }

    /// Instants at which `target` restarts with empty state (sorted).
    /// Empty for targets without a [`FaultPlan::crash_restart`] script.
    pub fn restarts(&self, target: &str) -> Vec<SimTime> {
        self.restarts.get(target).cloned().unwrap_or_default()
    }

    /// Attaches a lossy-delivery model to the link labelled `label`
    /// (e.g. `"link:0->1"`). Later calls for the same label replace the
    /// earlier model. Links not configured here are perfect.
    pub fn lossy_link(&mut self, label: &str, fault: LinkFault) -> &mut Self {
        self.links.insert(label.to_owned(), fault);
        self
    }

    /// The lossy-delivery model scripted for `label`, if any.
    pub fn link_fault(&self, label: &str) -> Option<LinkFault> {
        self.links.get(label).copied()
    }

    /// All link labels with a scripted lossy-delivery model.
    pub fn link_labels(&self) -> Vec<&str> {
        self.links.keys().map(String::as_str).collect()
    }

    /// A runtime chaos stream for the link labelled `label`, or `None`
    /// when the link has no scripted fault model. The stream is derived
    /// from `(plan seed, label)` only, so two runs of the same plan make
    /// identical per-link decisions regardless of other links.
    pub fn link_chaos(&self, label: &str) -> Option<LinkChaos> {
        self.link_fault(label)
            .map(|fault| LinkChaos::new(self.seed, label, fault))
    }

    /// Scripts a deterministic square-wave outage pattern over
    /// `[from, until)`: each `period` starts with an up phase of
    /// `duty * period` followed by a down phase filling the rest, so
    /// `duty` is the fraction of each period the target is reachable.
    /// No randomness is involved — chaos scenarios and the fig5 suite
    /// use this instead of hand-scheduling kill/revive pairs.
    ///
    /// `duty` is clamped to `[0, 1]`; `duty >= 1` scripts nothing and
    /// `duty <= 0` scripts one solid outage over the window.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until` or `period` is zero.
    pub fn flap(
        &mut self,
        target: &str,
        from: SimTime,
        until: SimTime,
        period: SimDuration,
        duty: f64,
    ) -> &mut Self {
        assert!(from < until, "flap requires from < until");
        assert!(!period.is_zero(), "flap requires a non-zero period");
        let duty = if duty.is_finite() { duty.clamp(0.0, 1.0) } else { 1.0 };
        let up_len = SimDuration::from_micros((period.as_micros() as f64 * duty) as u64);
        let mut t = from;
        while t < until {
            let down_start = (t + up_len).min(until);
            let down_end = (t + period).min(until);
            if down_end > down_start {
                self.downtimes
                    .entry(target.to_owned())
                    .or_default()
                    .push(Downtime {
                        start: down_start,
                        end: Some(down_end),
                    });
            }
            t = t + period;
        }
        self
    }

    /// Scripts probabilistic link flapping over `[from, until)`:
    /// alternating up/down phases with exponentially distributed
    /// durations of the given means, starting up. The phase boundaries
    /// are drawn *now*, from a stream derived from the plan seed, the
    /// target label and how many flap scripts this target already has —
    /// so the timeline is reproducible and independent of what other
    /// targets do.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until` or either mean duration is zero.
    pub fn flap_random(
        &mut self,
        target: &str,
        from: SimTime,
        until: SimTime,
        mean_up: SimDuration,
        mean_down: SimDuration,
    ) -> &mut Self {
        assert!(from < until, "flap_random requires from < until");
        assert!(
            !mean_up.is_zero() && !mean_down.is_zero(),
            "flap_random requires non-zero mean phase durations"
        );
        let call = self.flap_calls.entry(target.to_owned()).or_insert(0);
        let stream = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ fnv1a(target)
            ^ call.wrapping_mul(0xD1B5_4A32_D192_ED03);
        *call += 1;
        let mut rng = DetRng::new(stream);
        let mut t = from;
        loop {
            // Up phase.
            let up_len = SimDuration::from_secs_f64(rng.exp(mean_up.as_secs_f64()));
            t = t + up_len;
            if t >= until {
                break;
            }
            // Down phase.
            let down_len = SimDuration::from_secs_f64(rng.exp(mean_down.as_secs_f64()));
            let down_end = (t + down_len).min(until);
            if down_end > t {
                self.downtimes
                    .entry(target.to_owned())
                    .or_default()
                    .push(Downtime {
                        start: t,
                        end: Some(down_end),
                    });
            }
            t = down_end;
            if t >= until {
                break;
            }
        }
        self
    }

    /// All targets this plan scripts anything for.
    pub fn targets(&self) -> Vec<&str> {
        self.downtimes.keys().map(String::as_str).collect()
    }

    /// Whether `target` is up at `at` under this plan. Unknown targets
    /// are always up.
    pub fn is_up(&self, target: &str, at: SimTime) -> bool {
        match self.downtimes.get(target) {
            None => true,
            Some(list) => !list.iter().any(|d| d.covers(at)),
        }
    }

    /// The first instant `>= at` at which `target` is up again, or
    /// `None` if it never recovers. Returns `at` itself when the target
    /// is already up.
    pub fn next_up(&self, target: &str, at: SimTime) -> Option<SimTime> {
        if self.is_up(target, at) {
            return Some(at);
        }
        self.edges(target)
            .into_iter()
            .find(|e| e.up && e.at > at)
            .map(|e| e.at)
    }

    /// The compiled, merged up/down edge sequence for `target`
    /// (chronological; alternating `down, up, down, …` after merging
    /// overlapping scripts). Empty for unknown targets.
    pub fn edges(&self, target: &str) -> Vec<FaultEdge> {
        let Some(list) = self.downtimes.get(target) else {
            return Vec::new();
        };
        let mut intervals = list.clone();
        intervals.sort_by_key(|d| (d.start, d.end.is_none(), d.end));
        let mut merged: Vec<Downtime> = Vec::new();
        for d in intervals {
            match merged.last_mut() {
                Some(prev) if prev.end.is_none() => break, // swallowed by a kill
                Some(prev) if prev.end.map_or(false, |e| d.start <= e) => {
                    // Overlapping or adjacent: extend.
                    prev.end = match (prev.end, d.end) {
                        (_, None) => None,
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (None, _) => unreachable!(),
                    };
                }
                _ => merged.push(d),
            }
        }
        let mut edges = Vec::new();
        for d in merged {
            edges.push(FaultEdge {
                at: d.start,
                up: false,
            });
            if let Some(e) = d.end {
                edges.push(FaultEdge { at: e, up: true });
            }
        }
        edges
    }

    /// Total scripted downtime for `target` inside `[from, until)`,
    /// counting unhealed kills up to `until`.
    pub fn downtime_within(&self, target: &str, from: SimTime, until: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let edges = self.edges(target);
        let mut down_since: Option<SimTime> = None;
        for e in &edges {
            if e.up {
                if let Some(s) = down_since.take() {
                    let lo = s.max(from);
                    let hi = e.at.min(until);
                    if hi > lo {
                        total = total + hi.since(lo);
                    }
                }
            } else if down_since.is_none() {
                down_since = Some(e.at);
            }
        }
        if let Some(s) = down_since {
            let lo = s.max(from);
            if until > lo {
                total = total + until.since(lo);
            }
        }
        total
    }
}

/// A per-link lossy-delivery model: probabilistic drop, duplication,
/// bounded reorder and delay jitter. Probabilities are integer
/// parts-per-million so decisions are float-free and exactly portable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFault {
    /// Probability (ppm) that a send is silently dropped.
    pub drop_ppm: u32,
    /// Probability (ppm) that a send is delivered twice.
    pub dup_ppm: u32,
    /// Probability (ppm) that a send is pushed behind later traffic by
    /// `reorder_delay`.
    pub reorder_ppm: u32,
    /// Extra latency added to reordered (and duplicate) copies — the
    /// bound on how far a packet can fall behind.
    pub reorder_delay: SimDuration,
    /// Uniform extra delay in `[0, jitter]` added to every delivery.
    pub jitter: SimDuration,
}

impl LinkFault {
    /// A perfect link: nothing dropped, duplicated, reordered or
    /// delayed.
    pub const NONE: LinkFault = LinkFault {
        drop_ppm: 0,
        dup_ppm: 0,
        reorder_ppm: 0,
        reorder_delay: SimDuration::ZERO,
        jitter: SimDuration::ZERO,
    };

    /// Whether this model can perturb traffic at all.
    pub fn is_noop(&self) -> bool {
        self.drop_ppm == 0 && self.dup_ppm == 0 && self.reorder_ppm == 0 && self.jitter.is_zero()
    }
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault::NONE
    }
}

/// Counters for what a [`LinkChaos`] stream actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Sends pushed through the link (before any perturbation).
    pub sent: u64,
    /// Sends silently dropped.
    pub dropped: u64,
    /// Sends delivered twice.
    pub duplicated: u64,
    /// Sends pushed behind later traffic by the reorder delay.
    pub reordered: u64,
    /// Sends that picked up non-zero jitter.
    pub delayed: u64,
}

/// A runtime per-link chaos stream: owns a [`DetRng`] derived from
/// `(seed, link label)` and turns each send into zero or more delivery
/// copies with extra delays. Every decision consumes a *fixed* number
/// of draws, so the stream stays aligned no matter which outcomes fire
/// — a prerequisite for byte-identical transcripts per seed.
#[derive(Clone, Debug)]
pub struct LinkChaos {
    fault: LinkFault,
    rng: DetRng,
    stats: LinkStats,
}

const LINK_SALT: u64 = 0x11A6_C7A0_5EED_0C11;

impl LinkChaos {
    /// A stream for the link labelled `label`, derived from `seed` and
    /// the label only (independent of construction order).
    pub fn new(seed: u64, label: &str, fault: LinkFault) -> Self {
        LinkChaos {
            fault,
            rng: DetRng::derive(seed, LINK_SALT ^ fnv1a(label)),
            stats: LinkStats::default(),
        }
    }

    /// The model this stream applies.
    pub fn fault(&self) -> LinkFault {
        self.fault
    }

    /// What the stream has done so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Decides the fate of one send: the returned vector holds one
    /// extra-delay per delivery copy — empty means the send was
    /// dropped, two entries mean it was duplicated. Consumes exactly
    /// four draws regardless of outcome.
    pub fn decide(&mut self) -> Vec<SimDuration> {
        self.stats.sent += 1;
        let drop_draw = self.rng.range_u64(0, 1_000_000);
        let dup_draw = self.rng.range_u64(0, 1_000_000);
        let reorder_draw = self.rng.range_u64(0, 1_000_000);
        let jitter_us = if self.fault.jitter.is_zero() {
            let _ = self.rng.next_u64(); // keep the draw count fixed
            0
        } else {
            self.rng.range_u64(0, self.fault.jitter.as_micros() + 1)
        };
        if drop_draw < u64::from(self.fault.drop_ppm) {
            self.stats.dropped += 1;
            return Vec::new();
        }
        let mut delay = SimDuration::from_micros(jitter_us);
        if jitter_us > 0 {
            self.stats.delayed += 1;
        }
        if reorder_draw < u64::from(self.fault.reorder_ppm) {
            self.stats.reordered += 1;
            delay = delay + self.fault.reorder_delay;
        }
        let mut copies = vec![delay];
        if dup_draw < u64::from(self.fault.dup_ppm) {
            self.stats.duplicated += 1;
            copies.push(delay + self.fault.reorder_delay);
        }
        copies
    }
}

/// One applied fault transition, as recorded by the injector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Simulated time of the transition.
    pub at: SimTime,
    /// Target label.
    pub target: String,
    /// New state (`true` = restored).
    pub up: bool,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at {}",
            self.target,
            if self.up { "UP" } else { "DOWN" },
            self.at
        )
    }
}

type Toggle = Box<dyn Fn(bool)>;

#[derive(Default)]
struct InjectorState {
    toggles: BTreeMap<String, Vec<Toggle>>,
    log: Vec<FaultRecord>,
}

/// Schedules a [`FaultPlan`]'s edges on a [`Sim`] and flips the
/// registered kill-switches when they fire.
///
/// Cheap to clone (handle semantics). Kill-switches may be registered
/// before *or* after [`FaultInjector::install`]: toggles are looked up
/// when each edge fires, not when it is scheduled. Edges for targets
/// with no registered toggle are still recorded in the log, so tests can
/// assert the timeline even for layers they did not wire.
#[derive(Clone, Default)]
pub struct FaultInjector {
    sim: Sim,
    state: Rc<RefCell<InjectorState>>,
}

impl FaultInjector {
    /// Creates an injector bound to `sim`'s clock and queue.
    pub fn new(sim: &Sim) -> Self {
        FaultInjector {
            sim: sim.clone(),
            state: Rc::new(RefCell::new(InjectorState::default())),
        }
    }

    /// Registers a kill-switch for `target`. Multiple switches per
    /// target are allowed; each fires on every edge.
    pub fn register(&self, target: impl Into<String>, toggle: impl Fn(bool) + 'static) {
        self.state
            .borrow_mut()
            .toggles
            .entry(target.into())
            .or_default()
            .push(Box::new(toggle));
    }

    /// Schedules every edge of `plan`. Edges in the past (relative to
    /// the sim clock) fire at the current instant. May be called with
    /// several plans; their schedules compose.
    pub fn install(&self, plan: &FaultPlan) {
        for target in plan.targets() {
            for edge in plan.edges(target) {
                let this = self.clone();
                let label = target.to_owned();
                let up = edge.up;
                self.sim.schedule_at(edge.at, move || this.apply(&label, up));
            }
        }
    }

    /// Applies a transition immediately (outside any plan) — useful for
    /// ad-hoc experiments and for tests of the wiring itself.
    pub fn apply(&self, target: &str, up: bool) {
        // Run the switches after releasing the borrow: a toggle may
        // re-enter the injector (e.g. to read the log).
        let switches: Vec<Toggle> = {
            let mut state = self.state.borrow_mut();
            state.log.push(FaultRecord {
                at: self.sim.now(),
                target: target.to_owned(),
                up,
            });
            match state.toggles.get_mut(target) {
                Some(list) => std::mem::take(list),
                None => Vec::new(),
            }
        };
        for s in &switches {
            s(up);
        }
        if !switches.is_empty() {
            let mut state = self.state.borrow_mut();
            let slot = state.toggles.entry(target.to_owned()).or_default();
            // Re-attach, keeping any switches registered re-entrantly.
            let mut merged = switches;
            merged.append(slot);
            *slot = merged;
        }
    }

    /// Chronological record of every applied transition.
    pub fn log(&self) -> Vec<FaultRecord> {
        self.state.borrow().log.clone()
    }

    /// Number of applied transitions (cheaper than cloning the log).
    pub fn transitions_applied(&self) -> usize {
        self.state.borrow().log.len()
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.borrow();
        f.debug_struct("FaultInjector")
            .field("targets", &state.toggles.keys().collect::<Vec<_>>())
            .field("transitions_applied", &state.log.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn down_between_bounds_are_half_open() {
        let mut p = FaultPlan::new(1);
        p.down_between("x", secs(10), secs(20));
        assert!(p.is_up("x", secs(9)));
        assert!(!p.is_up("x", secs(10)));
        assert!(!p.is_up("x", secs(19)));
        assert!(p.is_up("x", secs(20)));
        assert!(p.is_up("unknown", secs(15)));
    }

    #[test]
    fn kill_never_recovers() {
        let mut p = FaultPlan::new(1);
        p.kill_at("x", secs(5));
        assert!(p.is_up("x", secs(4)));
        assert!(!p.is_up("x", secs(5)));
        assert!(!p.is_up("x", secs(1_000_000)));
        assert_eq!(p.next_up("x", secs(6)), None);
        assert_eq!(
            p.edges("x"),
            vec![FaultEdge {
                at: secs(5),
                up: false
            }]
        );
    }

    #[test]
    fn overlapping_outages_merge() {
        let mut p = FaultPlan::new(1);
        p.down_between("x", secs(10), secs(20));
        p.down_between("x", secs(15), secs(30));
        p.down_between("x", secs(40), secs(45));
        let edges = p.edges("x");
        assert_eq!(
            edges,
            vec![
                FaultEdge { at: secs(10), up: false },
                FaultEdge { at: secs(30), up: true },
                FaultEdge { at: secs(40), up: false },
                FaultEdge { at: secs(45), up: true },
            ]
        );
        assert_eq!(p.next_up("x", secs(12)), Some(secs(30)));
        assert_eq!(p.next_up("x", secs(35)), Some(secs(35)));
        assert_eq!(
            p.downtime_within("x", SimTime::ZERO, secs(100)),
            SimDuration::from_secs(25)
        );
    }

    #[test]
    fn edges_and_is_up_agree() {
        let mut p = FaultPlan::new(7);
        p.down_between("x", secs(5), secs(8));
        p.flap_random(
            "x",
            secs(10),
            secs(200),
            SimDuration::from_secs(20),
            SimDuration::from_secs(10),
        );
        p.kill_at("x", secs(500));
        let edges = p.edges("x");
        // Alternating polarity, strictly increasing times.
        for pair in edges.windows(2) {
            assert!(pair[0].at < pair[1].at, "non-monotonic edges");
            assert_ne!(pair[0].up, pair[1].up, "non-alternating edges");
        }
        // Walk the edge sequence and compare with is_up at probe points.
        for t in (0..600).map(secs) {
            let state_from_edges = edges
                .iter()
                .take_while(|e| e.at <= t)
                .last()
                .map_or(true, |e| e.up);
            assert_eq!(state_from_edges, p.is_up("x", t), "mismatch at {t}");
        }
    }

    #[test]
    fn flap_random_is_deterministic_and_target_independent() {
        let build = |order_swapped: bool| {
            let mut p = FaultPlan::new(99);
            let win = (secs(0), secs(1_000));
            let up = SimDuration::from_secs(30);
            let down = SimDuration::from_secs(15);
            if order_swapped {
                p.flap_random("b", win.0, win.1, up, down);
                p.flap_random("a", win.0, win.1, up, down);
            } else {
                p.flap_random("a", win.0, win.1, up, down);
                p.flap_random("b", win.0, win.1, up, down);
            }
            (p.edges("a"), p.edges("b"))
        };
        let (a1, b1) = build(false);
        let (a2, b2) = build(true);
        assert_eq!(a1, a2, "flap_random schedule depends on build order");
        assert_eq!(b1, b2, "flap_random schedule depends on build order");
        assert!(!a1.is_empty(), "flap_random produced no edges over 1000s");
        assert_ne!(a1, b1, "distinct targets should flap independently");

        // And a different seed gives a different timeline.
        let mut other = FaultPlan::new(100);
        other.flap_random(
            "a",
            secs(0),
            secs(1_000),
            SimDuration::from_secs(30),
            SimDuration::from_secs(15),
        );
        assert_ne!(a1, other.edges("a"));
    }

    #[test]
    fn square_wave_flap_is_exact() {
        let mut p = FaultPlan::new(1);
        // 10 s period, 60 % duty: up [0,6), down [6,10), repeating.
        p.flap("x", secs(0), secs(25), SimDuration::from_secs(10), 0.6);
        assert_eq!(
            p.edges("x"),
            vec![
                FaultEdge { at: secs(6), up: false },
                FaultEdge { at: secs(10), up: true },
                FaultEdge { at: secs(16), up: false },
                FaultEdge { at: secs(20), up: true },
            ]
        );
        // The final period is clipped by the window: up [20,25) only.
        assert!(p.is_up("x", secs(24)));
        // duty is seed-independent and build-order independent.
        let mut q = FaultPlan::new(777);
        q.flap("x", secs(0), secs(25), SimDuration::from_secs(10), 0.6);
        assert_eq!(p.edges("x"), q.edges("x"));
        // Degenerate duties.
        let mut full = FaultPlan::new(1);
        full.flap("y", secs(0), secs(30), SimDuration::from_secs(10), 1.0);
        assert!(full.edges("y").is_empty());
        let mut none = FaultPlan::new(1);
        none.flap("y", secs(0), secs(30), SimDuration::from_secs(10), 0.0);
        assert_eq!(
            none.downtime_within("y", secs(0), secs(30)),
            SimDuration::from_secs(30)
        );
    }

    #[test]
    fn crash_restart_records_recovery_instants() {
        let mut p = FaultPlan::new(5);
        p.crash_restart("broker:2", secs(10), SimDuration::from_secs(8));
        assert!(p.is_up("broker:2", secs(9)));
        assert!(!p.is_up("broker:2", secs(12)));
        assert!(p.is_up("broker:2", secs(18)));
        assert_eq!(p.restarts("broker:2"), vec![secs(18)]);
        assert_eq!(p.restarts("broker:0"), Vec::<SimTime>::new());
        // A plain outage heals without a restart record.
        p.down_between("broker:2", secs(30), secs(40));
        assert_eq!(p.restarts("broker:2"), vec![secs(18)]);
    }

    #[test]
    fn link_chaos_streams_are_seeded_per_label() {
        let fault = LinkFault {
            drop_ppm: 200_000,
            dup_ppm: 100_000,
            reorder_ppm: 150_000,
            reorder_delay: SimDuration::from_millis(40),
            jitter: SimDuration::from_millis(10),
        };
        let mut p = FaultPlan::new(42);
        p.lossy_link("link:0->1", fault);
        p.lossy_link("link:1->0", fault);
        assert_eq!(p.link_fault("link:0->1"), Some(fault));
        assert_eq!(p.link_fault("link:9->9"), None);
        assert!(p.link_chaos("link:9->9").is_none());
        assert_eq!(p.link_labels(), vec!["link:0->1", "link:1->0"]);

        let run = |label: &str| {
            let mut c = p.link_chaos(label).expect("configured link");
            (0..2_000).map(|_| c.decide()).collect::<Vec<_>>()
        };
        // Same label replays identically; different labels diverge.
        assert_eq!(run("link:0->1"), run("link:0->1"));
        assert_ne!(run("link:0->1"), run("link:1->0"));

        // Observed rates land near the configured ppm.
        let mut c = p.link_chaos("link:0->1").expect("configured link");
        for _ in 0..10_000 {
            let copies = c.decide();
            assert!(copies.len() <= 2);
            for d in &copies {
                assert!(
                    *d <= fault.jitter + fault.reorder_delay + fault.reorder_delay,
                    "delay beyond the configured bound"
                );
            }
        }
        let s = c.stats();
        assert_eq!(s.sent, 10_000);
        let near = |got: u64, ppm: u64| {
            let want = ppm * s.sent / 1_000_000;
            got > want / 2 && got < want * 2
        };
        assert!(near(s.dropped, 200_000), "dropped={}", s.dropped);
        assert!(near(s.duplicated, 100_000), "duplicated={}", s.duplicated);
        assert!(near(s.reordered, 150_000), "reordered={}", s.reordered);
        assert!(s.delayed > 0);
    }

    #[test]
    fn noop_link_fault_delivers_exactly_once_undelayed() {
        let mut c = LinkChaos::new(7, "link:a", LinkFault::NONE);
        assert!(LinkFault::NONE.is_noop());
        for _ in 0..100 {
            assert_eq!(c.decide(), vec![SimDuration::ZERO]);
        }
        let s = c.stats();
        assert_eq!((s.dropped, s.duplicated, s.reordered, s.delayed), (0, 0, 0, 0));
    }

    #[test]
    fn injector_flips_switch_at_scripted_times() {
        let mut p = FaultPlan::new(3);
        p.down_between("radio:bt", secs(10), secs(20));
        let sim = Sim::new();
        let inj = FaultInjector::new(&sim);
        let up = Rc::new(Cell::new(true));
        let flag = up.clone();
        inj.register("radio:bt", move |state| flag.set(state));
        inj.install(&p);
        sim.run_until(secs(9));
        assert!(up.get());
        sim.run_until(secs(10));
        assert!(!up.get());
        sim.run_until(secs(20));
        assert!(up.get());
        let log = inj.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].at, secs(10));
        assert!(!log[0].up);
        assert_eq!(log[1].at, secs(20));
        assert!(log[1].up);
    }

    #[test]
    fn late_registration_still_sees_future_edges() {
        let mut p = FaultPlan::new(3);
        p.down_between("x", secs(10), secs(20));
        let sim = Sim::new();
        let inj = FaultInjector::new(&sim);
        inj.install(&p);
        sim.run_until(secs(5));
        let seen = Rc::new(RefCell::new(Vec::new()));
        let sink = seen.clone();
        inj.register("x", move |state| sink.borrow_mut().push(state));
        sim.run_until(secs(30));
        assert_eq!(*seen.borrow(), vec![false, true]);
    }

    #[test]
    fn unregistered_targets_are_logged_not_lost() {
        let mut p = FaultPlan::new(3);
        p.kill_at("ghost", secs(1));
        let sim = Sim::new();
        let inj = FaultInjector::new(&sim);
        inj.install(&p);
        sim.run_until_idle();
        assert_eq!(inj.transitions_applied(), 1);
        assert_eq!(inj.log()[0].target, "ghost");
    }

    #[test]
    fn multiple_switches_per_target_all_fire() {
        let sim = Sim::new();
        let inj = FaultInjector::new(&sim);
        let count = Rc::new(Cell::new(0u32));
        for _ in 0..3 {
            let c = count.clone();
            inj.register("x", move |_| c.set(c.get() + 1));
        }
        inj.apply("x", false);
        inj.apply("x", true);
        assert_eq!(count.get(), 6);
    }

    #[test]
    fn downtime_within_clips_to_window() {
        let mut p = FaultPlan::new(1);
        p.down_between("x", secs(10), secs(30));
        assert_eq!(
            p.downtime_within("x", secs(20), secs(25)),
            SimDuration::from_secs(5)
        );
        assert_eq!(
            p.downtime_within("x", secs(0), secs(15)),
            SimDuration::from_secs(5)
        );
        assert_eq!(p.downtime_within("x", secs(40), secs(50)), SimDuration::ZERO);
        let mut k = FaultPlan::new(1);
        k.kill_at("x", secs(90));
        assert_eq!(
            k.downtime_within("x", secs(0), secs(100)),
            SimDuration::from_secs(10)
        );
    }
}
