//! Deterministic fault injection.
//!
//! Failures are a first-class, scriptable input to a simulation: a
//! [`FaultPlan`] declares *when* each named target is down, and a
//! [`FaultInjector`] turns the plan into scheduled events that flip the
//! kill-switches upper layers register for those targets.
//!
//! Design points:
//!
//! - **Targets are plain string labels** (`"radio:bt"`, `"radio:wifi"`,
//!   `"radio:cell"`, `"sensor:temperature"`, `"broker"`, `"node:7"`, …)
//!   so this bottom-layer crate needs no knowledge of radios, sensors or
//!   brokers. The layer that owns a kill-switch picks the label; the
//!   testbed wires the two together.
//! - **Plans are compiled eagerly.** Probabilistic flapping draws all of
//!   its on/off intervals at *plan-build* time from a generator derived
//!   from `(plan seed, target label, call index)`. The schedule is
//!   therefore a pure function of the seed and the building calls —
//!   independent of event interleaving and of the order in which targets
//!   are configured — which is what makes failure scenarios exactly
//!   reproducible (same seed + same plan ⇒ same fault timeline).
//! - **State is queryable.** [`FaultPlan::is_up`] answers "was this
//!   target up at time t?" without running a simulation, so property
//!   tests can check "nothing was delivered through a down link" against
//!   the plan itself.
//!
//! # Example
//!
//! ```
//! use simkit::faults::{FaultInjector, FaultPlan};
//! use simkit::{Sim, SimDuration, SimTime};
//! use std::{cell::Cell, rc::Rc};
//!
//! let mut plan = FaultPlan::new(42);
//! plan.down_between("radio:bt", SimTime::from_secs(10), SimTime::from_secs(20));
//!
//! let sim = Sim::new();
//! let injector = FaultInjector::new(&sim);
//! let bt_up = Rc::new(Cell::new(true));
//! let flag = bt_up.clone();
//! injector.register("radio:bt", move |up| flag.set(up));
//! injector.install(&plan);
//!
//! sim.run_until(SimTime::from_secs(15));
//! assert!(!bt_up.get());
//! sim.run_until(SimTime::from_secs(25));
//! assert!(bt_up.get());
//! ```

#![deny(warnings)]

use crate::rng::DetRng;
use crate::sim::Sim;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A half-open downtime interval `[start, end)`; `end == None` means the
/// outage never heals (a kill).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Downtime {
    start: SimTime,
    end: Option<SimTime>,
}

impl Downtime {
    fn covers(&self, at: SimTime) -> bool {
        at >= self.start && self.end.map_or(true, |e| at < e)
    }
}

/// One up/down edge of a compiled fault schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEdge {
    /// When the edge fires.
    pub at: SimTime,
    /// `true` = target comes back up, `false` = target goes down.
    pub up: bool,
}

/// A scripted, deterministic failure schedule over named targets.
///
/// Overlapping scripts compose by *union of downtime*: a target is down
/// at `t` iff any configured outage covers `t`. Every target starts up.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    downtimes: BTreeMap<String, Vec<Downtime>>,
    /// Per-target count of flap() calls, for derived-stream seeding.
    flap_calls: BTreeMap<String, u64>,
}

fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FaultPlan {
    /// An empty plan. `seed` drives every probabilistic script added
    /// later; two plans built with the same seed and the same calls have
    /// identical schedules.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            downtimes: BTreeMap::new(),
            flap_calls: BTreeMap::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Scripts an outage of `target` over `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until`.
    pub fn down_between(&mut self, target: &str, from: SimTime, until: SimTime) -> &mut Self {
        assert!(from < until, "down_between requires from < until");
        self.downtimes
            .entry(target.to_owned())
            .or_default()
            .push(Downtime {
                start: from,
                end: Some(until),
            });
        self
    }

    /// Scripts a one-shot kill: `target` goes down at `at` and never
    /// recovers.
    pub fn kill_at(&mut self, target: &str, at: SimTime) -> &mut Self {
        self.downtimes
            .entry(target.to_owned())
            .or_default()
            .push(Downtime {
                start: at,
                end: None,
            });
        self
    }

    /// Scripts probabilistic link flapping over `[from, until)`:
    /// alternating up/down phases with exponentially distributed
    /// durations of the given means, starting up. The phase boundaries
    /// are drawn *now*, from a stream derived from the plan seed, the
    /// target label and how many flap scripts this target already has —
    /// so the timeline is reproducible and independent of what other
    /// targets do.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until` or either mean duration is zero.
    pub fn flap(
        &mut self,
        target: &str,
        from: SimTime,
        until: SimTime,
        mean_up: SimDuration,
        mean_down: SimDuration,
    ) -> &mut Self {
        assert!(from < until, "flap requires from < until");
        assert!(
            !mean_up.is_zero() && !mean_down.is_zero(),
            "flap requires non-zero mean phase durations"
        );
        let call = self.flap_calls.entry(target.to_owned()).or_insert(0);
        let stream = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ fnv1a(target)
            ^ call.wrapping_mul(0xD1B5_4A32_D192_ED03);
        *call += 1;
        let mut rng = DetRng::new(stream);
        let mut t = from;
        loop {
            // Up phase.
            let up_len = SimDuration::from_secs_f64(rng.exp(mean_up.as_secs_f64()));
            t = t + up_len;
            if t >= until {
                break;
            }
            // Down phase.
            let down_len = SimDuration::from_secs_f64(rng.exp(mean_down.as_secs_f64()));
            let down_end = (t + down_len).min(until);
            if down_end > t {
                self.downtimes
                    .entry(target.to_owned())
                    .or_default()
                    .push(Downtime {
                        start: t,
                        end: Some(down_end),
                    });
            }
            t = down_end;
            if t >= until {
                break;
            }
        }
        self
    }

    /// All targets this plan scripts anything for.
    pub fn targets(&self) -> Vec<&str> {
        self.downtimes.keys().map(String::as_str).collect()
    }

    /// Whether `target` is up at `at` under this plan. Unknown targets
    /// are always up.
    pub fn is_up(&self, target: &str, at: SimTime) -> bool {
        match self.downtimes.get(target) {
            None => true,
            Some(list) => !list.iter().any(|d| d.covers(at)),
        }
    }

    /// The first instant `>= at` at which `target` is up again, or
    /// `None` if it never recovers. Returns `at` itself when the target
    /// is already up.
    pub fn next_up(&self, target: &str, at: SimTime) -> Option<SimTime> {
        if self.is_up(target, at) {
            return Some(at);
        }
        self.edges(target)
            .into_iter()
            .find(|e| e.up && e.at > at)
            .map(|e| e.at)
    }

    /// The compiled, merged up/down edge sequence for `target`
    /// (chronological; alternating `down, up, down, …` after merging
    /// overlapping scripts). Empty for unknown targets.
    pub fn edges(&self, target: &str) -> Vec<FaultEdge> {
        let Some(list) = self.downtimes.get(target) else {
            return Vec::new();
        };
        let mut intervals = list.clone();
        intervals.sort_by_key(|d| (d.start, d.end.is_none(), d.end));
        let mut merged: Vec<Downtime> = Vec::new();
        for d in intervals {
            match merged.last_mut() {
                Some(prev) if prev.end.is_none() => break, // swallowed by a kill
                Some(prev) if prev.end.map_or(false, |e| d.start <= e) => {
                    // Overlapping or adjacent: extend.
                    prev.end = match (prev.end, d.end) {
                        (_, None) => None,
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (None, _) => unreachable!(),
                    };
                }
                _ => merged.push(d),
            }
        }
        let mut edges = Vec::new();
        for d in merged {
            edges.push(FaultEdge {
                at: d.start,
                up: false,
            });
            if let Some(e) = d.end {
                edges.push(FaultEdge { at: e, up: true });
            }
        }
        edges
    }

    /// Total scripted downtime for `target` inside `[from, until)`,
    /// counting unhealed kills up to `until`.
    pub fn downtime_within(&self, target: &str, from: SimTime, until: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let edges = self.edges(target);
        let mut down_since: Option<SimTime> = None;
        for e in &edges {
            if e.up {
                if let Some(s) = down_since.take() {
                    let lo = s.max(from);
                    let hi = e.at.min(until);
                    if hi > lo {
                        total = total + hi.since(lo);
                    }
                }
            } else if down_since.is_none() {
                down_since = Some(e.at);
            }
        }
        if let Some(s) = down_since {
            let lo = s.max(from);
            if until > lo {
                total = total + until.since(lo);
            }
        }
        total
    }
}

/// One applied fault transition, as recorded by the injector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Simulated time of the transition.
    pub at: SimTime,
    /// Target label.
    pub target: String,
    /// New state (`true` = restored).
    pub up: bool,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at {}",
            self.target,
            if self.up { "UP" } else { "DOWN" },
            self.at
        )
    }
}

type Toggle = Box<dyn Fn(bool)>;

#[derive(Default)]
struct InjectorState {
    toggles: BTreeMap<String, Vec<Toggle>>,
    log: Vec<FaultRecord>,
}

/// Schedules a [`FaultPlan`]'s edges on a [`Sim`] and flips the
/// registered kill-switches when they fire.
///
/// Cheap to clone (handle semantics). Kill-switches may be registered
/// before *or* after [`FaultInjector::install`]: toggles are looked up
/// when each edge fires, not when it is scheduled. Edges for targets
/// with no registered toggle are still recorded in the log, so tests can
/// assert the timeline even for layers they did not wire.
#[derive(Clone, Default)]
pub struct FaultInjector {
    sim: Sim,
    state: Rc<RefCell<InjectorState>>,
}

impl FaultInjector {
    /// Creates an injector bound to `sim`'s clock and queue.
    pub fn new(sim: &Sim) -> Self {
        FaultInjector {
            sim: sim.clone(),
            state: Rc::new(RefCell::new(InjectorState::default())),
        }
    }

    /// Registers a kill-switch for `target`. Multiple switches per
    /// target are allowed; each fires on every edge.
    pub fn register(&self, target: impl Into<String>, toggle: impl Fn(bool) + 'static) {
        self.state
            .borrow_mut()
            .toggles
            .entry(target.into())
            .or_default()
            .push(Box::new(toggle));
    }

    /// Schedules every edge of `plan`. Edges in the past (relative to
    /// the sim clock) fire at the current instant. May be called with
    /// several plans; their schedules compose.
    pub fn install(&self, plan: &FaultPlan) {
        for target in plan.targets() {
            for edge in plan.edges(target) {
                let this = self.clone();
                let label = target.to_owned();
                let up = edge.up;
                self.sim.schedule_at(edge.at, move || this.apply(&label, up));
            }
        }
    }

    /// Applies a transition immediately (outside any plan) — useful for
    /// ad-hoc experiments and for tests of the wiring itself.
    pub fn apply(&self, target: &str, up: bool) {
        // Run the switches after releasing the borrow: a toggle may
        // re-enter the injector (e.g. to read the log).
        let switches: Vec<Toggle> = {
            let mut state = self.state.borrow_mut();
            state.log.push(FaultRecord {
                at: self.sim.now(),
                target: target.to_owned(),
                up,
            });
            match state.toggles.get_mut(target) {
                Some(list) => std::mem::take(list),
                None => Vec::new(),
            }
        };
        for s in &switches {
            s(up);
        }
        if !switches.is_empty() {
            let mut state = self.state.borrow_mut();
            let slot = state.toggles.entry(target.to_owned()).or_default();
            // Re-attach, keeping any switches registered re-entrantly.
            let mut merged = switches;
            merged.append(slot);
            *slot = merged;
        }
    }

    /// Chronological record of every applied transition.
    pub fn log(&self) -> Vec<FaultRecord> {
        self.state.borrow().log.clone()
    }

    /// Number of applied transitions (cheaper than cloning the log).
    pub fn transitions_applied(&self) -> usize {
        self.state.borrow().log.len()
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.borrow();
        f.debug_struct("FaultInjector")
            .field("targets", &state.toggles.keys().collect::<Vec<_>>())
            .field("transitions_applied", &state.log.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn down_between_bounds_are_half_open() {
        let mut p = FaultPlan::new(1);
        p.down_between("x", secs(10), secs(20));
        assert!(p.is_up("x", secs(9)));
        assert!(!p.is_up("x", secs(10)));
        assert!(!p.is_up("x", secs(19)));
        assert!(p.is_up("x", secs(20)));
        assert!(p.is_up("unknown", secs(15)));
    }

    #[test]
    fn kill_never_recovers() {
        let mut p = FaultPlan::new(1);
        p.kill_at("x", secs(5));
        assert!(p.is_up("x", secs(4)));
        assert!(!p.is_up("x", secs(5)));
        assert!(!p.is_up("x", secs(1_000_000)));
        assert_eq!(p.next_up("x", secs(6)), None);
        assert_eq!(
            p.edges("x"),
            vec![FaultEdge {
                at: secs(5),
                up: false
            }]
        );
    }

    #[test]
    fn overlapping_outages_merge() {
        let mut p = FaultPlan::new(1);
        p.down_between("x", secs(10), secs(20));
        p.down_between("x", secs(15), secs(30));
        p.down_between("x", secs(40), secs(45));
        let edges = p.edges("x");
        assert_eq!(
            edges,
            vec![
                FaultEdge { at: secs(10), up: false },
                FaultEdge { at: secs(30), up: true },
                FaultEdge { at: secs(40), up: false },
                FaultEdge { at: secs(45), up: true },
            ]
        );
        assert_eq!(p.next_up("x", secs(12)), Some(secs(30)));
        assert_eq!(p.next_up("x", secs(35)), Some(secs(35)));
        assert_eq!(
            p.downtime_within("x", SimTime::ZERO, secs(100)),
            SimDuration::from_secs(25)
        );
    }

    #[test]
    fn edges_and_is_up_agree() {
        let mut p = FaultPlan::new(7);
        p.down_between("x", secs(5), secs(8));
        p.flap(
            "x",
            secs(10),
            secs(200),
            SimDuration::from_secs(20),
            SimDuration::from_secs(10),
        );
        p.kill_at("x", secs(500));
        let edges = p.edges("x");
        // Alternating polarity, strictly increasing times.
        for pair in edges.windows(2) {
            assert!(pair[0].at < pair[1].at, "non-monotonic edges");
            assert_ne!(pair[0].up, pair[1].up, "non-alternating edges");
        }
        // Walk the edge sequence and compare with is_up at probe points.
        for t in (0..600).map(secs) {
            let state_from_edges = edges
                .iter()
                .take_while(|e| e.at <= t)
                .last()
                .map_or(true, |e| e.up);
            assert_eq!(state_from_edges, p.is_up("x", t), "mismatch at {t}");
        }
    }

    #[test]
    fn flap_is_deterministic_and_target_independent() {
        let build = |order_swapped: bool| {
            let mut p = FaultPlan::new(99);
            let win = (secs(0), secs(1_000));
            let up = SimDuration::from_secs(30);
            let down = SimDuration::from_secs(15);
            if order_swapped {
                p.flap("b", win.0, win.1, up, down);
                p.flap("a", win.0, win.1, up, down);
            } else {
                p.flap("a", win.0, win.1, up, down);
                p.flap("b", win.0, win.1, up, down);
            }
            (p.edges("a"), p.edges("b"))
        };
        let (a1, b1) = build(false);
        let (a2, b2) = build(true);
        assert_eq!(a1, a2, "flap schedule depends on build order");
        assert_eq!(b1, b2, "flap schedule depends on build order");
        assert!(!a1.is_empty(), "flap produced no edges over 1000s");
        assert_ne!(a1, b1, "distinct targets should flap independently");

        // And a different seed gives a different timeline.
        let mut other = FaultPlan::new(100);
        other.flap(
            "a",
            secs(0),
            secs(1_000),
            SimDuration::from_secs(30),
            SimDuration::from_secs(15),
        );
        assert_ne!(a1, other.edges("a"));
    }

    #[test]
    fn injector_flips_switch_at_scripted_times() {
        let mut p = FaultPlan::new(3);
        p.down_between("radio:bt", secs(10), secs(20));
        let sim = Sim::new();
        let inj = FaultInjector::new(&sim);
        let up = Rc::new(Cell::new(true));
        let flag = up.clone();
        inj.register("radio:bt", move |state| flag.set(state));
        inj.install(&p);
        sim.run_until(secs(9));
        assert!(up.get());
        sim.run_until(secs(10));
        assert!(!up.get());
        sim.run_until(secs(20));
        assert!(up.get());
        let log = inj.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].at, secs(10));
        assert!(!log[0].up);
        assert_eq!(log[1].at, secs(20));
        assert!(log[1].up);
    }

    #[test]
    fn late_registration_still_sees_future_edges() {
        let mut p = FaultPlan::new(3);
        p.down_between("x", secs(10), secs(20));
        let sim = Sim::new();
        let inj = FaultInjector::new(&sim);
        inj.install(&p);
        sim.run_until(secs(5));
        let seen = Rc::new(RefCell::new(Vec::new()));
        let sink = seen.clone();
        inj.register("x", move |state| sink.borrow_mut().push(state));
        sim.run_until(secs(30));
        assert_eq!(*seen.borrow(), vec![false, true]);
    }

    #[test]
    fn unregistered_targets_are_logged_not_lost() {
        let mut p = FaultPlan::new(3);
        p.kill_at("ghost", secs(1));
        let sim = Sim::new();
        let inj = FaultInjector::new(&sim);
        inj.install(&p);
        sim.run_until_idle();
        assert_eq!(inj.transitions_applied(), 1);
        assert_eq!(inj.log()[0].target, "ghost");
    }

    #[test]
    fn multiple_switches_per_target_all_fire() {
        let sim = Sim::new();
        let inj = FaultInjector::new(&sim);
        let count = Rc::new(Cell::new(0u32));
        for _ in 0..3 {
            let c = count.clone();
            inj.register("x", move |_| c.set(c.get() + 1));
        }
        inj.apply("x", false);
        inj.apply("x", true);
        assert_eq!(count.get(), 6);
    }

    #[test]
    fn downtime_within_clips_to_window() {
        let mut p = FaultPlan::new(1);
        p.down_between("x", secs(10), secs(30));
        assert_eq!(
            p.downtime_within("x", secs(20), secs(25)),
            SimDuration::from_secs(5)
        );
        assert_eq!(
            p.downtime_within("x", secs(0), secs(15)),
            SimDuration::from_secs(5)
        );
        assert_eq!(p.downtime_within("x", secs(40), secs(50)), SimDuration::ZERO);
        let mut k = FaultPlan::new(1);
        k.kill_at("x", secs(90));
        assert_eq!(
            k.downtime_within("x", secs(0), secs(100)),
            SimDuration::from_secs(10)
        );
    }
}
