//! Deterministic random source.
//!
//! [`DetRng`] wraps a seeded PRNG and exposes exactly the distributions the
//! substrates need, so downstream crates never touch raw generator state
//! and every scenario is reproducible from a single `u64` seed.
//!
//! The generator is a self-contained xoshiro256++ seeded through
//! SplitMix64 — no external dependency, identical streams on every
//! platform, which is what keeps the benchmark tables reproducible in
//! hermetic (offline) builds.

use crate::time::SimDuration;

/// SplitMix64 step; used for seeding so that nearby seeds (0, 1, 2, …)
/// still yield well-separated xoshiro states.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random number generator (xoshiro256++).
///
/// ```
/// use simkit::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent child generator; used to give each node its
    /// own stream so adding a node never perturbs the others.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(s)
    }

    /// Stateless derivation of a component stream from `(seed, salt)` —
    /// unlike [`DetRng::fork`] it consumes no parent state, so the
    /// result is a pure function of its arguments. The sharded engine
    /// builds per-actor and per-shard streams this way, which is what
    /// keeps random draws independent of registration order and of the
    /// physical partition layout.
    pub fn derive(seed: u64, salt: u64) -> DetRng {
        let mut sm = seed;
        let a = splitmix64(&mut sm);
        let mut sm2 = salt ^ 0xD6E8_FEB8_6659_FD93;
        let b = splitmix64(&mut sm2);
        DetRng::new(a ^ b.rotate_left(17))
    }

    /// The deterministic stream of a physical shard: a pure function of
    /// `(seed, shard)`.
    pub fn for_shard(seed: u64, shard: crate::shard::ShardId) -> DetRng {
        DetRng::derive(seed, 0x5AD0_0000_0000_0000 ^ u64::from(shard.0))
    }

    /// The deterministic stream of a logical actor: a pure function of
    /// `(seed, actor)`, independent of which physical shard hosts it.
    pub fn for_actor(seed: u64, actor: crate::shard::ActorId) -> DetRng {
        DetRng::derive(seed, 0xAC70_0000_0000_0000 ^ actor.0)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "range_f64 requires lo < hi");
        lo + self.unit() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64 requires lo < hi");
        let span = hi - lo;
        // Multiply-shift bounded generation (Lemire, without the bias
        // rejection loop: for simulation purposes the ≤2⁻⁶⁴·span bias is
        // irrelevant, and staying loop-free keeps the stream advancing by
        // exactly one draw per call — important for reproducibility).
        let wide = (self.next_u64() as u128).wrapping_mul(span as u128);
        lo + (wide >> 64) as u64
    }

    /// Uniform index in `[0, len)`, for picking an element of a slice.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index requires a non-empty range");
        self.range_u64(0, len as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Gaussian sample (Box–Muller).
    pub fn gauss(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Box–Muller transform; one sample per call keeps the stream simple.
        let u1 = self.unit().max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal sample parameterized by its *median* and the σ of the
    /// underlying normal. Used for the heavy-tailed UMTS latency model
    /// (the paper saw 703–2766 ms around a ~1473 ms mean).
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0`.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        assert!(median > 0.0, "lognormal median must be positive");
        (self.gauss(median.ln(), sigma)).exp()
    }

    /// Exponential sample with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * (1.0 - self.unit()).ln()
    }

    /// A duration jittered uniformly within `±fraction` of `base`.
    pub fn jitter(&mut self, base: SimDuration, fraction: f64) -> SimDuration {
        let f = fraction.clamp(0.0, 1.0);
        if f == 0.0 {
            return base;
        }
        let scale = self.range_f64(1.0 - f, 1.0 + f);
        SimDuration::from_secs_f64(base.as_secs_f64() * scale)
    }

    /// A duration drawn from a Gaussian with the given mean and standard
    /// deviation, truncated at zero.
    pub fn gauss_duration(&mut self, mean: SimDuration, std_dev: SimDuration) -> SimDuration {
        let v = self.gauss(mean.as_secs_f64(), std_dev.as_secs_f64());
        SimDuration::from_secs_f64(v.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_in_range() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let v = r.unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gauss_moments() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gauss(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_median_close() {
        let mut r = DetRng::new(13);
        let mut samples: Vec<f64> = (0..10_001).map(|_| r.lognormal(100.0, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 100.0).abs() < 8.0, "median {median}");
        assert!(samples.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn exp_mean_close() {
        let mut r = DetRng::new(17);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(19);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn jitter_bounds() {
        let mut r = DetRng::new(23);
        let base = SimDuration::from_millis(100);
        for _ in 0..500 {
            let j = r.jitter(base, 0.2);
            assert!(j >= SimDuration::from_millis(80) && j <= SimDuration::from_millis(120));
        }
        assert_eq!(r.jitter(base, 0.0), base);
    }

    #[test]
    fn gauss_duration_never_negative() {
        let mut r = DetRng::new(29);
        for _ in 0..1000 {
            let d = r.gauss_duration(SimDuration::from_millis(1), SimDuration::from_millis(10));
            assert!(d.as_secs_f64() >= 0.0);
        }
    }

    #[test]
    fn derive_is_pure_and_separates_salts() {
        let a1 = DetRng::derive(5, 100).next_u64();
        let a2 = DetRng::derive(5, 100).next_u64();
        assert_eq!(a1, a2, "derive must be a pure function");
        let mut x = DetRng::derive(5, 100);
        let mut y = DetRng::derive(5, 101);
        let same = (0..32).filter(|_| x.next_u64() == y.next_u64()).count();
        assert!(same < 2, "adjacent salts must yield independent streams");
    }

    #[test]
    fn actor_and_shard_streams_are_disjoint_namespaces() {
        use crate::shard::{ActorId, ShardId};
        let a = DetRng::for_actor(9, ActorId(3)).next_u64();
        let s = DetRng::for_shard(9, ShardId(3)).next_u64();
        assert_ne!(a, s, "actor 3 and shard 3 must not share a stream");
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = DetRng::new(31);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }
}
