//! Partitioned (sharded) discrete-event engine.
//!
//! [`Sim`](crate::Sim) runs one ordered queue on one thread — perfect for
//! the paper's regatta-sized testbeds, a ceiling for city-scale
//! populations. [`ShardSim`] is the scale engine: the actor population is
//! partitioned into physical shards, each with its own event queue, and
//! shards step a simulated time instant *in parallel*, exchanging
//! cross-shard messages only at time-step barriers through a
//! deterministic merge.
//!
//! # Ordering model
//!
//! Every event carries a Lamport-style total-order key
//! [`EventKey`]`{ time, actor, seq }`:
//!
//! * `time` — the virtual instant the event fires;
//! * `actor` — the *logical* shard component: the stable [`ActorId`] of
//!   the actor the event executes on. Actors are the finest-grained
//!   shards; physical shards are groups of actors and **never appear in
//!   the key**;
//! * `seq` — a per-actor sequence number.
//!
//! Because the key mentions only partition-independent data, the total
//! order over executed events — and therefore the transcript, the
//! per-actor RNG streams and every metric derived from a run — is
//! byte-identical for any physical shard count and any worker-thread
//! count. `tests/shard_determinism.rs` enforces exactly that matrix.
//!
//! # Why the cross-shard merge is deterministic
//!
//! Within a time step `T` a shard executes its local events in key
//! order. An event may freely mutate *its own actor* (state, RNG,
//! same-actor schedules); effects on **other** actors must go through
//! [`EventCtx::send`], which only buffers the message. At the barrier
//! the engine gathers every buffered message, sorts them by
//! `(sender key, send index)` — again partition-independent — and
//! delivers them in that order, drawing each delivery's `seq` from the
//! destination actor's counter. Two invariants follow:
//!
//! 1. an actor's state is touched only by its own events, which execute
//!    in a globally fixed order, and
//! 2. message admission order (hence every `seq` assignment) is a pure
//!    function of the same fixed order.
//!
//! So the merge commutes with the 1-shard sequential engine on any plan
//! (`tests/proptests.rs` asserts this property on random schedules).
//!
//! Cross-actor delivery is quantised to at least one microsecond of
//! virtual latency so a time step can close before its messages land —
//! the batching boundary of the merge.
//!
//! # Parallelism
//!
//! With the `parallel` crate feature (on by default) shards are stepped
//! by scoped OS threads; without it, or with `threads = 1`, the engine
//! degrades to a sequential loop over shards in index order. The
//! hermetic build vendors no rayon, so the worker pool is
//! `std::thread::scope` over contiguous shard chunks — same contract,
//! zero dependencies. Worker count never influences outputs, only
//! wall-clock speed.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

/// Identifier of a physical shard (a group of actors stepped together).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

impl ShardId {
    /// The default shard every unsharded component lives on.
    pub const ZERO: ShardId = ShardId(0);
}

/// Stable logical identity of an actor (device, broker, station…).
///
/// The actor id is the logical-shard component of [`EventKey`], so it
/// must be assigned by the scenario (not by partition layout) and never
/// reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u64);

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor{}", self.0)
    }
}

/// Lamport-style total-order key `(time, actor, seq)`.
///
/// Lexicographic `Ord`: virtual time first, then the logical shard
/// (actor) component, then the per-actor sequence number. Keys of
/// executed events are unique, so this is a total order over a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Virtual instant the event fires.
    pub time: SimTime,
    /// Logical shard component: the actor the event executes on.
    pub actor: ActorId,
    /// Per-actor sequence number (unique within an actor).
    pub seq: u64,
}

impl fmt::Display for EventKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.time, self.actor, self.seq)
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Master seed; per-actor RNG streams derive from it.
    pub seed: u64,
    /// Physical shard (queue) count; at least 1.
    pub shards: u32,
    /// Worker threads stepping shards each round; at least 1. Without
    /// the `parallel` feature any value degrades to 1. Never affects
    /// outputs.
    pub threads: u32,
    /// Keep the full merged transcript of [`EventCtx::emit`] records.
    /// Off, only the running digest and counts are kept (the 100k-device
    /// scenarios would otherwise hold millions of strings).
    pub record_transcript: bool,
}

impl ShardConfig {
    /// A 1-shard, 1-thread, transcript-recording config — the sequential
    /// fallback profile.
    pub fn sequential(seed: u64) -> ShardConfig {
        ShardConfig {
            seed,
            shards: 1,
            threads: 1,
            record_transcript: true,
        }
    }

    /// The largest worker count worth configuring on this host.
    pub fn max_threads() -> u32 {
        std::thread::available_parallelism().map_or(1, |n| n.get() as u32)
    }
}

/// A minimal log2-bucketed histogram for engine self-profiling.
///
/// Lives here (not in `obskit`) because `obskit` depends on `simkit`;
/// the engine must not close that cycle. Pure integers, no wall clock —
/// safe inside sim-visible code under the determinism lint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Hist {
    counts: [u64; 65],
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            counts: [0; 65],
            total: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Hist {
    /// An empty histogram.
    pub fn new() -> Log2Hist {
        Log2Hist::default()
    }

    /// Records one value (bucket `b` holds values in `[2^(b-1), 2^b)`;
    /// zero lands in bucket 0).
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        if let Some(c) = self.counts.get_mut(b) {
            *c += 1;
        }
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.sum / self.total
        }
    }

    /// Non-empty buckets as `(exclusive_upper_bound, count)`, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(b, n)| {
                let upper = if b >= 64 { u64::MAX } else { 1u64 << b };
                (upper, *n)
            })
            .collect()
    }
}

/// Per-shard engine counters accumulated during a run.
///
/// Profile data is **partition-dependent by nature** (it describes the
/// physical shard layout), so it is kept out of every equality-compared
/// outcome; the `*_profiled` run APIs return it alongside — never
/// inside — the deterministic result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Events executed per physical shard (cumulative).
    pub events_per_shard: Vec<u64>,
    /// Peak event-queue depth observed per physical shard.
    pub queue_peak_per_shard: Vec<u64>,
    /// Events one shard executed in one round (batch size between
    /// merge barriers).
    pub batch_events: Log2Hist,
    /// Per-round shard imbalance `max(batch) − min(batch)`: how long
    /// the fastest shard idles at the merge barrier, in event units —
    /// the engine's wall-clock-free merge-stall measure.
    pub barrier_imbalance: Log2Hist,
}

impl EngineProfile {
    /// Total events across shards.
    pub fn total_events(&self) -> u64 {
        self.events_per_shard.iter().sum()
    }

    /// Largest queue peak across shards.
    pub fn max_queue_peak(&self) -> u64 {
        self.queue_peak_per_shard.iter().copied().max().unwrap_or(0)
    }

    /// A compact multi-line rendering for run artifacts.
    pub fn table(&self) -> String {
        let mut out = format!(
            "rounds={} batch_mean={} batch_max={} stall_mean={} stall_max={}\n",
            self.rounds,
            self.batch_events.mean(),
            self.batch_events.max(),
            self.barrier_imbalance.mean(),
            self.barrier_imbalance.max(),
        );
        for (i, (events, peak)) in self
            .events_per_shard
            .iter()
            .zip(&self.queue_peak_per_shard)
            .enumerate()
        {
            out.push_str(&format!("shard{i} events={events} queue_peak={peak}\n"));
        }
        out
    }
}

struct Entry<E> {
    key: EventKey,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // BinaryHeap is a max-heap; invert so the smallest key pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key)
    }
}

struct ActorSlot<A> {
    state: A,
    rng: DetRng,
    next_seq: u64,
}

struct ShardState<A, E> {
    queue: BinaryHeap<Entry<E>>,
    actors: BTreeMap<u64, ActorSlot<A>>,
}

impl<A, E> ShardState<A, E> {
    fn new() -> Self {
        ShardState {
            queue: BinaryHeap::new(),
            actors: BTreeMap::new(),
        }
    }

    fn head_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.key.time)
    }
}

/// One buffered cross-actor message: ordered by `(sender key, index)`,
/// both partition-independent.
struct Outgoing<E> {
    from_key: EventKey,
    index: u32,
    dest: ActorId,
    at: SimTime,
    ev: E,
}

/// What one shard produced during one time-step round.
struct RoundOut<E> {
    sends: Vec<Outgoing<E>>,
    emits: Vec<(EventKey, String)>,
    processed: u64,
}

/// The per-event context handed to the handler: the only way an event
/// interacts with the engine.
pub struct EventCtx<'a, E> {
    now: SimTime,
    key: EventKey,
    rng: &'a mut DetRng,
    next_seq: &'a mut u64,
    sends: &'a mut Vec<Outgoing<E>>,
    emits: &'a mut Vec<(EventKey, String)>,
    local: Vec<Entry<E>>,
    send_index: u32,
}

impl<'a, E> EventCtx<'a, E> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The actor this event executes on.
    pub fn actor(&self) -> ActorId {
        self.key.actor
    }

    /// The executing event's total-order key.
    pub fn key(&self) -> EventKey {
        self.key
    }

    /// The actor's deterministic random stream (derived from the master
    /// seed and the actor id, never from partition layout).
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Schedules an event on *this* actor, `delay` from now (0 allowed:
    /// it runs later in the same time step, after all currently queued
    /// same-time events of this actor).
    pub fn schedule_self(&mut self, delay: SimDuration, ev: E) {
        let key = EventKey {
            time: self.now + delay,
            actor: self.key.actor,
            seq: *self.next_seq,
        };
        *self.next_seq += 1;
        self.local.push(Entry { key, ev });
    }

    /// Sends an event to another actor (or this one), batched at the
    /// time-step barrier. Delivery latency is quantised to at least one
    /// microsecond so the current step can close first.
    pub fn send(&mut self, dest: ActorId, delay: SimDuration, ev: E) {
        let at = (self.now + delay).max(self.now + SimDuration::from_micros(1));
        self.sends.push(Outgoing {
            from_key: self.key,
            index: self.send_index,
            dest,
            at,
            ev,
        });
        self.send_index += 1;
    }

    /// Sends one event to each destination, in the given order —
    /// the broadcast/multicast primitive radio-style fan-out uses.
    pub fn send_many(
        &mut self,
        dests: impl IntoIterator<Item = ActorId>,
        delay: SimDuration,
        ev: E,
    ) where
        E: Clone,
    {
        for dest in dests {
            self.send(dest, delay, ev.clone());
        }
    }

    /// Appends a record to the run transcript (merged across shards in
    /// key order; always folded into the digest).
    pub fn emit(&mut self, record: impl Into<String>) {
        self.emits.push((self.key, record.into()));
    }
}

/// The partitioned deterministic discrete-event engine.
///
/// ```
/// use simkit::shard::{ActorId, ShardConfig, ShardSim};
/// use simkit::SimDuration;
///
/// let mut cfg = ShardConfig::sequential(42);
/// cfg.shards = 4;
/// let mut sim = ShardSim::new(cfg, |count: &mut u64, ctx, hop: u32| {
///     *count += 1;
///     ctx.emit(format!("hop {hop} at {}", ctx.now()));
///     if hop > 0 {
///         let next = ActorId((ctx.actor().0 + 1) % 8);
///         ctx.send(next, SimDuration::from_millis(5), hop - 1);
///     }
/// });
/// for a in 0..8 {
///     sim.add_actor(ActorId(a), 0u64);
/// }
/// sim.schedule(ActorId(0), simkit::SimTime::ZERO, 6).unwrap();
/// sim.run_until_idle();
/// assert_eq!(sim.events_processed(), 7);
/// ```
pub struct ShardSim<A, E, H> {
    cfg: ShardConfig,
    handler: H,
    shards: Vec<ShardState<A, E>>,
    now: SimTime,
    processed: u64,
    messages: u64,
    dead_letters: u64,
    rounds: u64,
    transcript: Vec<String>,
    emitted: u64,
    digest: u64,
    profile: EngineProfile,
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl<A, E, H> ShardSim<A, E, H>
where
    A: Send,
    E: Send,
    H: Fn(&mut A, &mut EventCtx<'_, E>, E) + Sync,
{
    /// Creates an engine. `shards` and `threads` are clamped to at
    /// least 1; without the `parallel` feature `threads` degrades to 1.
    pub fn new(cfg: ShardConfig, handler: H) -> Self {
        let shards = cfg.shards.max(1);
        ShardSim {
            cfg: ShardConfig {
                shards,
                threads: cfg.threads.max(1),
                ..cfg
            },
            handler,
            shards: (0..shards).map(|_| ShardState::new()).collect(),
            now: SimTime::ZERO,
            processed: 0,
            messages: 0,
            dead_letters: 0,
            rounds: 0,
            transcript: Vec::new(),
            emitted: 0,
            digest: FNV_OFFSET,
            profile: EngineProfile {
                events_per_shard: vec![0; shards as usize],
                queue_peak_per_shard: vec![0; shards as usize],
                ..EngineProfile::default()
            },
        }
    }

    /// The physical shard an actor lives on (round-robin by id — stable
    /// for a given shard count, irrelevant to every output).
    pub fn shard_of(&self, actor: ActorId) -> ShardId {
        ShardId((actor.0 % u64::from(self.cfg.shards)) as u32)
    }

    /// Registers an actor. Its RNG stream derives from `(seed, actor)`
    /// only. Returns `false` (and changes nothing) if the id is taken.
    pub fn add_actor(&mut self, actor: ActorId, state: A) -> bool {
        let shard = self.shard_of(actor).0 as usize;
        let rng = DetRng::for_actor(self.cfg.seed, actor);
        match self.shards[shard].actors.entry(actor.0) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(ActorSlot {
                    state,
                    rng,
                    next_seq: 0,
                });
                true
            }
        }
    }

    /// Number of registered actors.
    pub fn actors(&self) -> u64 {
        self.shards.iter().map(|s| s.actors.len() as u64).sum()
    }

    /// Schedules an initial event on an actor at an absolute time (events
    /// in the past run at the current time). Keys derive from per-actor
    /// counters, so plan construction order never affects the run.
    ///
    /// Returns `Err` if the actor is unknown.
    pub fn schedule(&mut self, actor: ActorId, at: SimTime, ev: E) -> Result<(), ActorId> {
        let at = at.max(self.now);
        let shard = self.shard_of(actor).0 as usize;
        let Some(slot) = self.shards[shard].actors.get_mut(&actor.0) else {
            return Err(actor);
        };
        let key = EventKey {
            time: at,
            actor,
            seq: slot.next_seq,
        };
        slot.next_seq += 1;
        self.shards[shard].queue.push(Entry { key, ev });
        Ok(())
    }

    /// Read access to an actor's state (e.g. for post-run assertions).
    pub fn actor_state(&self, actor: ActorId) -> Option<&A> {
        let shard = self.shard_of(actor).0 as usize;
        self.shards[shard].actors.get(&actor.0).map(|s| &s.state)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Cross-actor messages delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.messages
    }

    /// Messages addressed to unknown actors (dropped, but counted so the
    /// loss is observable).
    pub fn dead_letters(&self) -> u64 {
        self.dead_letters
    }

    /// Time-step rounds executed (barrier count).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The engine's self-profile: per-shard event/queue counters and
    /// merge-barrier imbalance histograms. Describes the *physical*
    /// layout, so it varies with the shard count — never fold it into
    /// an equality-compared outcome.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Records emitted via [`EventCtx::emit`].
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// FNV-1a digest over every emitted record and its key, in total
    /// order — the cheap byte-identity witness for huge runs.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The merged transcript (empty unless
    /// [`ShardConfig::record_transcript`]).
    pub fn transcript(&self) -> &[String] {
        &self.transcript
    }

    /// Physical shard count.
    pub fn shard_count(&self) -> u32 {
        self.cfg.shards
    }

    /// Worker threads a round will actually use.
    pub fn effective_threads(&self) -> u32 {
        if cfg!(feature = "parallel") {
            self.cfg.threads.min(self.cfg.shards).max(1)
        } else {
            1
        }
    }

    fn next_time(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(ShardState::head_time).min()
    }

    /// Runs events with due time `<= deadline`, then advances the clock
    /// to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.next_time() {
            if t > deadline {
                break;
            }
            self.now = t;
            self.round(t);
        }
        self.now = self.now.max(deadline);
    }

    /// Runs for `dur` of virtual time from the current instant.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.now + dur;
        self.run_until(deadline);
    }

    /// Runs until every queue is empty.
    ///
    /// # Panics
    ///
    /// Panics after 100 million rounds as a runaway guard.
    pub fn run_until_idle(&mut self) {
        let mut guard: u64 = 100_000_000;
        while let Some(t) = self.next_time() {
            self.now = t;
            self.round(t);
            guard -= 1;
            assert!(guard > 0, "run_until_idle exceeded 100M rounds; runaway schedule?");
        }
    }

    /// One time step: every shard drains its events at `t` (in key
    /// order, in parallel across shards), then the barrier merges
    /// cross-shard traffic and transcript records deterministically.
    fn round(&mut self, t: SimTime) {
        self.rounds += 1;
        let threads = self.effective_threads() as usize;
        let handler = &self.handler;
        let outs: Vec<RoundOut<E>> =
            run_shards(&mut self.shards, threads, |shard| drain_step(shard, t, handler));

        // ---- barrier: the deterministic cross-shard merge ----
        // Everything below is ordered by partition-independent keys, so
        // the merged result is identical for any shard/thread layout.
        // Profile pass first (outs is consumed by the merge below).
        self.profile.rounds += 1;
        let mut batch_max = 0u64;
        let mut batch_min = u64::MAX;
        for (i, out) in outs.iter().enumerate() {
            if let Some(n) = self.profile.events_per_shard.get_mut(i) {
                *n += out.processed;
            }
            self.profile.batch_events.record(out.processed);
            batch_max = batch_max.max(out.processed);
            batch_min = batch_min.min(out.processed);
        }
        if !outs.is_empty() {
            self.profile.barrier_imbalance.record(batch_max - batch_min);
        }

        let mut sends: Vec<Outgoing<E>> = Vec::new();
        let mut emits: Vec<(EventKey, String)> = Vec::new();
        for out in outs {
            self.processed += out.processed;
            sends.extend(out.sends);
            emits.extend(out.emits);
        }
        sends.sort_by_key(|m| (m.from_key, m.index));
        emits.sort_by_key(|e| e.0);

        for m in sends {
            let shard = (m.dest.0 % u64::from(self.cfg.shards)) as usize;
            let Some(slot) = self.shards[shard].actors.get_mut(&m.dest.0) else {
                self.dead_letters += 1;
                continue;
            };
            let key = EventKey {
                time: m.at,
                actor: m.dest,
                seq: slot.next_seq,
            };
            slot.next_seq += 1;
            self.messages += 1;
            self.shards[shard].queue.push(Entry { key, ev: m.ev });
        }

        // Queue peaks after the merge landed its deliveries.
        for (peak, shard) in self.profile.queue_peak_per_shard.iter_mut().zip(&self.shards) {
            let depth = shard.queue.len() as u64;
            if depth > *peak {
                *peak = depth;
            }
        }

        for (key, record) in emits {
            self.digest = fnv1a(self.digest, &key.time.as_micros().to_le_bytes());
            self.digest = fnv1a(self.digest, &key.actor.0.to_le_bytes());
            self.digest = fnv1a(self.digest, &key.seq.to_le_bytes());
            self.digest = fnv1a(self.digest, record.as_bytes());
            self.emitted += 1;
            if self.cfg.record_transcript {
                self.transcript.push(format!("{key} {record}"));
            }
        }
    }
}

/// Drains one shard's events due exactly at `t`, in key order.
fn drain_step<A, E, H>(shard: &mut ShardState<A, E>, t: SimTime, handler: &H) -> RoundOut<E>
where
    H: Fn(&mut A, &mut EventCtx<'_, E>, E),
{
    let mut out = RoundOut {
        sends: Vec::new(),
        emits: Vec::new(),
        processed: 0,
    };
    while shard.head_time() == Some(t) {
        let entry = match shard.queue.pop() {
            Some(e) => e,
            None => break, // unreachable: head_time just said non-empty
        };
        let Some(slot) = shard.actors.get_mut(&entry.key.actor.0) else {
            // Actor vanished between scheduling and firing — only
            // possible for externally scheduled plans; count as a dead
            // letter equivalent by dropping (callers observe counts).
            continue;
        };
        let mut ctx = EventCtx {
            now: t,
            key: entry.key,
            rng: &mut slot.rng,
            next_seq: &mut slot.next_seq,
            sends: &mut out.sends,
            emits: &mut out.emits,
            local: Vec::new(),
            send_index: 0,
        };
        handler(&mut slot.state, &mut ctx, entry.ev);
        let local = std::mem::take(&mut ctx.local);
        for e in local {
            debug_assert!(e.key.time >= t, "self-schedule went backwards");
            shard.queue.push(e);
        }
        out.processed += 1;
    }
    out
}

/// Steps every shard through `f`, sequentially or on `threads` scoped
/// workers over contiguous chunks; results are returned in shard index
/// order either way.
fn run_shards<A, E, F>(
    shards: &mut [ShardState<A, E>],
    threads: usize,
    f: F,
) -> Vec<RoundOut<E>>
where
    A: Send,
    E: Send,
    F: Fn(&mut ShardState<A, E>) -> RoundOut<E> + Sync,
{
    if threads <= 1 || shards.len() <= 1 {
        return shards.iter_mut().map(f).collect();
    }
    parallel_run_shards(shards, threads, f)
}

#[cfg(feature = "parallel")]
fn parallel_run_shards<A, E, F>(
    shards: &mut [ShardState<A, E>],
    threads: usize,
    f: F,
) -> Vec<RoundOut<E>>
where
    A: Send,
    E: Send,
    F: Fn(&mut ShardState<A, E>) -> RoundOut<E> + Sync,
{
    let chunk = shards.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .chunks_mut(chunk)
            .map(|chunk| scope.spawn(move || chunk.iter_mut().map(f).collect::<Vec<_>>()))
            .collect();
        let mut outs = Vec::new();
        for h in handles {
            match h.join() {
                Ok(part) => outs.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        outs
    })
}

#[cfg(not(feature = "parallel"))]
fn parallel_run_shards<A, E, F>(
    shards: &mut [ShardState<A, E>],
    _threads: usize,
    f: F,
) -> Vec<RoundOut<E>>
where
    F: Fn(&mut ShardState<A, E>) -> RoundOut<E>,
{
    shards.iter_mut().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy world: each actor counts events and forwards a decrementing
    /// hop counter to the next actor.
    fn ring_handler(n: u64) -> impl Fn(&mut u64, &mut EventCtx<'_, u32>, u32) + Sync {
        move |count, ctx, hop| {
            *count += 1;
            let draw = ctx.rng().next_u64() & 0xff;
            ctx.emit(format!("hop={hop} draw={draw}"));
            if hop > 0 {
                let next = ActorId((ctx.actor().0 + 1) % n);
                ctx.send(next, SimDuration::from_millis(3), hop - 1);
            }
        }
    }

    fn ring_run(seed: u64, actors: u64, shards: u32, threads: u32) -> (u64, Vec<String>, u64) {
        let cfg = ShardConfig {
            seed,
            shards,
            threads,
            record_transcript: true,
        };
        let mut sim = ShardSim::new(cfg, ring_handler(actors));
        for a in 0..actors {
            sim.add_actor(ActorId(a), 0u64);
        }
        for a in 0..actors {
            sim.schedule(ActorId(a), SimTime::from_millis(a % 7), 5).unwrap();
        }
        sim.run_until_idle();
        (sim.digest(), sim.transcript().to_vec(), sim.events_processed())
    }

    #[test]
    fn event_key_orders_lexicographically() {
        let k = |t: u64, a: u64, s: u64| EventKey {
            time: SimTime::from_micros(t),
            actor: ActorId(a),
            seq: s,
        };
        assert!(k(1, 9, 9) < k(2, 0, 0));
        assert!(k(1, 1, 9) < k(1, 2, 0));
        assert!(k(1, 1, 1) < k(1, 1, 2));
        assert_eq!(k(3, 3, 3), k(3, 3, 3));
    }

    #[test]
    fn transcript_is_identical_across_shard_and_thread_counts() {
        let reference = ring_run(7, 24, 1, 1);
        for shards in [2u32, 4, 16, 64] {
            for threads in [1u32, 4, ShardConfig::max_threads()] {
                let got = ring_run(7, 24, shards, threads);
                assert_eq!(got, reference, "diverged at shards={shards} threads={threads}");
            }
        }
    }

    #[test]
    fn profile_accounts_for_every_event_without_touching_outputs() {
        let cfg = ShardConfig {
            seed: 7,
            shards: 4,
            threads: 2,
            record_transcript: false,
        };
        let mut sim = ShardSim::new(cfg, ring_handler(24));
        for a in 0..24 {
            sim.add_actor(ActorId(a), 0u64);
        }
        for a in 0..24 {
            sim.schedule(ActorId(a), SimTime::from_millis(a % 7), 5).unwrap();
        }
        sim.run_until_idle();
        let p = sim.profile();
        assert_eq!(p.total_events(), sim.events_processed());
        assert_eq!(p.rounds, sim.rounds());
        assert_eq!(p.events_per_shard.len(), 4);
        assert_eq!(p.batch_events.count(), p.rounds * 4);
        assert!(p.barrier_imbalance.count() > 0);
        assert!(p.table().contains("shard3 "), "table:\n{}", p.table());
        // Profile varies with layout; the run digest must not.
        let (digest_1shard, _, _) = ring_run(7, 24, 1, 1);
        assert_eq!(sim.digest(), digest_1shard);
    }

    #[test]
    fn log2_hist_buckets_and_moments() {
        let mut h = Log2Hist::new();
        for v in [0, 1, 1, 3, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1013);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 168);
        let buckets = h.buckets();
        // 0 → bucket 0 (upper 1); 1,1 → upper 2; 3 → upper 4;
        // 8 → upper 16; 1000 → upper 1024.
        assert_eq!(buckets, vec![(1, 1), (2, 2), (4, 1), (16, 1), (1024, 1)]);
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(ring_run(7, 24, 4, 2).0, ring_run(8, 24, 4, 2).0);
    }

    #[test]
    fn no_event_loss_or_duplication() {
        let (_, transcript, processed) = ring_run(11, 10, 4, 2);
        // 10 initial events with hop=5 -> each chain executes 6 events.
        assert_eq!(processed, 60);
        assert_eq!(transcript.len(), 60);
        let mut keys: Vec<&str> = transcript.iter().map(|l| l.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 60, "duplicated transcript record");
    }

    #[test]
    fn transcript_is_in_key_order() {
        let cfg = ShardConfig {
            seed: 3,
            shards: 8,
            threads: 2,
            record_transcript: true,
        };
        let mut sim = ShardSim::new(cfg, |_: &mut (), ctx: &mut EventCtx<'_, u32>, _| {
            ctx.emit("x");
        });
        // Single-digit actor ids and seqs keep the rendered key's string
        // order equal to its numeric key order, so the string comparison
        // below really checks the merge.
        for a in 0..9 {
            sim.add_actor(ActorId(a), ());
        }
        for round in 0..3 {
            for a in (0..9).rev() {
                sim.schedule(ActorId(a), SimTime::from_millis((a + round) % 4), 0)
                    .unwrap();
            }
        }
        sim.run_until_idle();
        let lines = sim.transcript();
        assert_eq!(lines.len(), 27);
        assert!(lines.windows(2).all(|w| w[0] < w[1]), "merge out of key order");
    }

    #[test]
    fn same_time_self_schedules_run_within_the_round() {
        let cfg = ShardConfig::sequential(1);
        let mut sim = ShardSim::new(cfg, |state: &mut u32, ctx: &mut EventCtx<'_, u32>, ev| {
            *state += 1;
            if ev > 0 {
                ctx.schedule_self(SimDuration::ZERO, ev - 1);
            }
        });
        sim.add_actor(ActorId(0), 0u32);
        sim.schedule(ActorId(0), SimTime::from_secs(1), 4).unwrap();
        sim.run_until_idle();
        assert_eq!(sim.now(), SimTime::from_secs(1));
        assert_eq!(sim.actor_state(ActorId(0)), Some(&5));
        assert_eq!(sim.rounds(), 1, "zero-delay self-schedules stay in the round");
    }

    #[test]
    fn zero_delay_sends_are_quantised_to_the_next_step() {
        let cfg = ShardConfig::sequential(1);
        let mut sim = ShardSim::new(cfg, |_: &mut (), ctx: &mut EventCtx<'_, u32>, ev| {
            if ev > 0 {
                ctx.send(ActorId(1), SimDuration::ZERO, ev - 1);
            }
        });
        sim.add_actor(ActorId(0), ());
        sim.add_actor(ActorId(1), ());
        sim.schedule(ActorId(0), SimTime::ZERO, 1).unwrap();
        sim.run_until_idle();
        assert_eq!(sim.messages_delivered(), 1);
        assert_eq!(sim.now(), SimTime::from_micros(1));
        assert_eq!(sim.rounds(), 2);
    }

    #[test]
    fn dead_letters_are_counted_not_lost_silently() {
        let cfg = ShardConfig::sequential(1);
        let mut sim = ShardSim::new(cfg, |_: &mut (), ctx: &mut EventCtx<'_, u32>, _| {
            ctx.send(ActorId(999), SimDuration::from_millis(1), 0);
        });
        sim.add_actor(ActorId(0), ());
        sim.schedule(ActorId(0), SimTime::ZERO, 0).unwrap();
        sim.run_until_idle();
        assert_eq!(sim.dead_letters(), 1);
        assert_eq!(sim.messages_delivered(), 0);
    }

    #[test]
    fn duplicate_actor_registration_is_rejected() {
        let mut sim = ShardSim::new(
            ShardConfig::sequential(0),
            |_: &mut u8, _: &mut EventCtx<'_, u8>, _| {},
        );
        assert!(sim.add_actor(ActorId(4), 1));
        assert!(!sim.add_actor(ActorId(4), 2));
        assert_eq!(sim.actor_state(ActorId(4)), Some(&1));
        assert_eq!(sim.actors(), 1);
    }

    #[test]
    fn scheduling_on_unknown_actor_errors() {
        let mut sim = ShardSim::new(
            ShardConfig::sequential(0),
            |_: &mut u8, _: &mut EventCtx<'_, u8>, _| {},
        );
        assert_eq!(sim.schedule(ActorId(7), SimTime::ZERO, 1), Err(ActorId(7)));
    }

    #[test]
    fn run_until_respects_the_deadline() {
        let mut sim = ShardSim::new(
            ShardConfig::sequential(5),
            |hits: &mut u32, ctx: &mut EventCtx<'_, u8>, _| {
                *hits += 1;
                ctx.schedule_self(SimDuration::from_secs(10), 0);
            },
        );
        sim.add_actor(ActorId(0), 0u32);
        sim.schedule(ActorId(0), SimTime::from_secs(10), 0).unwrap();
        sim.run_until(SimTime::from_secs(35));
        assert_eq!(sim.actor_state(ActorId(0)), Some(&3));
        assert_eq!(sim.now(), SimTime::from_secs(35));
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.actor_state(ActorId(0)), Some(&4));
    }
}
