//! Property tests for trace assembly (ISSUE 9 satellite):
//!
//! * **Conservation** — assembling any event stream neither loses nor
//!   duplicates spans: the forest holds exactly the input events.
//! * **Causal order** — in every assembled tree, a parent precedes its
//!   child in sim time, even for adversarial parent pointers (cycles,
//!   orphans, self-references, duplicate span ids).
//! * **Fold invariance** — the canonical export (and therefore the
//!   assembled forest) does not depend on the order per-actor logs were
//!   merged in, which is the property the shard-parallel fleet relies
//!   on for byte-identity.

use proptest::collection;
use proptest::prelude::*;
use tracekit::{assemble, Breakup, Stage, TraceCtx, TraceLog};

/// Builds a log from raw generated tuples: (trace material, stage
/// index, node, at_ms, reparent onto an earlier span?).
fn build_log(raw: &[(u64, u8, u64, u64, u8)]) -> TraceLog {
    let mut log = TraceLog::new();
    let mut spans: Vec<(u64, u32)> = Vec::new(); // (trace_id, span)
    for &(material, stage_ix, node, at_ms, link) in raw {
        let link = link != 0;
        let stage = Stage::ALL[usize::from(stage_ix) % Stage::ALL.len()];
        let root = TraceCtx::root(material % 8, 0); // few distinct traces
        // Optionally parent onto the most recent span of the same trace
        // (causally valid); otherwise claim an arbitrary parent id,
        // which may be an orphan or even a *later* span — assembly must
        // stay a time-ordered forest regardless.
        let parent = if link {
            spans
                .iter()
                .rev()
                .find(|(t, _)| *t == root.trace_id)
                .map(|(_, s)| *s)
                .unwrap_or(0)
        } else {
            (material >> 8) as u32
        };
        let ctx = TraceCtx {
            parent_span: parent,
            ..root
        };
        let span = log.record(ctx, stage, node, simkit::SimTime::from_millis(at_ms));
        spans.push((root.trace_id, span));
    }
    log
}

proptest! {
    #[test]
    fn assembly_conserves_spans(
        raw in collection::vec(
            (0u64..1000, 0u8..8, 0u64..16, 0u64..10_000, 0u8..2),
            0..64,
        ),
    ) {
        let log = build_log(&raw);
        let trees = assemble(&log);
        let assembled: usize = trees.iter().map(|t| t.nodes.len()).sum();
        // No loss, no duplication.
        prop_assert_eq!(assembled, log.len());
        // Every input event appears exactly once across the forest.
        let mut got: Vec<_> = trees
            .iter()
            .flat_map(|t| t.nodes.iter().map(|n| n.event))
            .collect();
        let mut want = log.canonical_events();
        got.sort_by_key(|e| (e.trace_id, e.at.as_micros(), e.span));
        want.sort_by_key(|e| (e.trace_id, e.at.as_micros(), e.span));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn parents_precede_children_in_sim_time(
        raw in collection::vec(
            (0u64..1000, 0u8..8, 0u64..16, 0u64..10_000, 0u8..2),
            0..64,
        ),
    ) {
        let log = build_log(&raw);
        for tree in assemble(&log) {
            for (i, node) in tree.nodes.iter().enumerate() {
                if let Some(p) = node.parent {
                    prop_assert!(p < i, "parent index precedes child");
                    let parent = &tree.nodes[p];
                    prop_assert!(
                        parent.event.at <= node.event.at,
                        "parent at {} must not follow child at {}",
                        parent.event.at,
                        node.event.at
                    );
                    prop_assert_eq!(parent.event.trace_id, node.event.trace_id);
                }
                for &c in &node.children {
                    prop_assert_eq!(tree.nodes[c].parent, Some(i));
                }
            }
            // Critical paths terminate (forests have no cycles) and the
            // break-up total never exceeds the sum of path spans.
            for d in tree.deliveries() {
                prop_assert!(d.path.len() <= tree.nodes.len());
            }
        }
    }

    #[test]
    fn export_and_assembly_are_fold_order_invariant(
        raw in collection::vec(
            (0u64..1000, 0u8..8, 0u64..16, 0u64..10_000, 0u8..2),
            0..48,
        ),
        split in 0usize..48,
    ) {
        let log = build_log(&raw);
        let events = log.events();
        let cut = split.min(events.len());
        // Fold the same events as two sub-logs merged in both orders.
        let (a_ev, b_ev) = events.split_at(cut);
        let rebuild = |evs: &[&[tracekit::TraceEvent]]| {
            let parsed: String = evs
                .iter()
                .flat_map(|chunk| chunk.iter())
                .map(|ev| {
                    let mut one = TraceLog::new();
                    let ctx = TraceCtx {
                        trace_id: ev.trace_id,
                        parent_span: ev.parent,
                        hop: ev.hop,
                        sampled: true,
                    };
                    one.record(ctx, ev.stage, ev.node, ev.at);
                    // Preserve the original span id via the jsonl form.
                    one.export_jsonl()
                        .replace(&format!("\"span\":{}", one.events()[0].span), &format!("\"span\":{}", ev.span))
                })
                .collect();
            TraceLog::parse_jsonl(&parsed).expect("round trip")
        };
        let ab = rebuild(&[a_ev, b_ev]);
        let ba = rebuild(&[b_ev, a_ev]);
        prop_assert_eq!(ab.export_jsonl(), ba.export_jsonl());
        prop_assert_eq!(ab.digest(), ba.digest());
        prop_assert_eq!(assemble(&ab), assemble(&ba));
        prop_assert_eq!(
            Breakup::of(&assemble(&ab)).to_json(),
            Breakup::of(&assemble(&ba)).to_json()
        );
    }
}
