//! Hop-event logs: the raw material traces are assembled from.
//!
//! A [`TraceLog`] is a plain `Vec` of [`TraceEvent`]s — `Send`, cheap
//! to merge, and deliberately *not* the thread-local obskit collector:
//! shard-parallel actors (fleet brokers, devices) each own a log and
//! record into it as they process events, and the harness folds the
//! logs **in actor-id order** after the run. Each node's recording
//! order is a pure function of the seed, so the folded stream — and
//! its JSONL export, which additionally canonicalises the order — is
//! byte-identical across shard and thread counts.

use crate::ctx::{mix64, TraceCtx};
use simkit::SimTime;
use std::fmt;
use std::fmt::Write as _;

/// The pipeline stage a hop event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// The device handed the item to its uplink.
    Publish,
    /// A broker accepted the packet past admission control.
    Admit,
    /// Admission refused the packet (shed/hygiene).
    Shed,
    /// The packet entered the broker's bounded inbox.
    Enqueue,
    /// A drain cycle picked the packet up for fan-out.
    Dispatch,
    /// The packet was forwarded to a federation peer.
    Federate,
    /// A load digest hop on the gossip plane.
    Gossip,
    /// The packet reached a subscriber endpoint.
    Deliver,
    /// A federation forward was re-sent after an ack timeout.
    Retry,
    /// The dedup window suppressed an already-seen sequence number.
    DupSuppress,
    /// A crashed broker came back up and re-entered the federation.
    Recover,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 11] = [
        Stage::Publish,
        Stage::Admit,
        Stage::Shed,
        Stage::Enqueue,
        Stage::Dispatch,
        Stage::Federate,
        Stage::Gossip,
        Stage::Deliver,
        Stage::Retry,
        Stage::DupSuppress,
        Stage::Recover,
    ];

    /// Stable snake_case name (export vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Publish => "publish",
            Stage::Admit => "admit",
            Stage::Shed => "shed",
            Stage::Enqueue => "enqueue",
            Stage::Dispatch => "dispatch",
            Stage::Federate => "federate",
            Stage::Gossip => "gossip",
            Stage::Deliver => "deliver",
            Stage::Retry => "retry",
            Stage::DupSuppress => "dup_suppress",
            Stage::Recover => "recover",
        }
    }

    /// Parses an export name back.
    pub fn from_str(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.as_str() == s)
    }

    /// Pipeline position used for canonical ordering of same-instant
    /// events (publish before admit before enqueue …).
    pub fn rank(self) -> u8 {
        match self {
            Stage::Publish => 0,
            Stage::Admit | Stage::Shed => 1,
            Stage::Enqueue => 2,
            Stage::Dispatch => 3,
            Stage::Federate | Stage::Gossip | Stage::Retry | Stage::Recover => 4,
            Stage::Deliver => 5,
            Stage::DupSuppress => 1,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One hop event inside a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Trace identity.
    pub trace_id: u64,
    /// This event's span id (unique within the trace w.h.p. — derived
    /// by hashing `(trace, node, seq)`, no cross-node coordination).
    pub span: u32,
    /// Causal parent's span id (0 ⇒ root).
    pub parent: u32,
    /// Pipeline stage.
    pub stage: Stage,
    /// Recording node (broker id, or a device id in the harness's
    /// node namespace).
    pub node: u64,
    /// Federation hop count at recording time.
    pub hop: u8,
    /// Sim instant of the event.
    pub at: SimTime,
}

impl TraceEvent {
    /// Canonical sort key: trace, then time, then pipeline position.
    fn key(&self) -> (u64, u64, u8, u8, u64, u32) {
        (
            self.trace_id,
            self.at.as_micros(),
            self.hop,
            self.stage.rank(),
            self.node,
            self.span,
        )
    }
}

/// An append-only, mergeable log of hop events.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    seq: u32,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Records a hop event for an active context and returns its span
    /// id (for re-parenting the propagated context). Inactive contexts
    /// record nothing and return 0.
    pub fn record(&mut self, ctx: TraceCtx, stage: Stage, node: u64, at: SimTime) -> u32 {
        if !ctx.is_active() {
            return 0;
        }
        self.seq = self.seq.wrapping_add(1);
        // `| 1` keeps real span ids distinct from the 0 root marker.
        let span =
            (mix64(ctx.trace_id ^ node.rotate_left(24) ^ u64::from(self.seq)) as u32) | 1;
        self.events.push(TraceEvent {
            trace_id: ctx.trace_id,
            span,
            parent: ctx.parent_span,
            stage,
            node,
            hop: ctx.hop,
            at,
        });
        span
    }

    /// Appends `other`'s events (the harness folds per-actor logs in
    /// actor-id order, which keeps the merged stream deterministic).
    pub fn merge(&mut self, other: &TraceLog) {
        self.events.extend_from_slice(&other.events);
    }

    /// All recorded events, in recording/merge order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded hop events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events in canonical order (trace, time, pipeline position) —
    /// the order the JSONL export and the assembler use, so exports
    /// are identical however the per-actor logs were folded.
    pub fn canonical_events(&self) -> Vec<TraceEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(TraceEvent::key);
        evs
    }

    /// Renders the canonical JSONL export (schema `contory-trace/1`):
    /// one object per hop event, keys in a fixed order.
    ///
    /// ```json
    /// {"trace":"00000000000000ab","span":3,"parent":0,"stage":"admit","node":1,"hop":0,"at_us":2000}
    /// ```
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.canonical_events() {
            let _ = writeln!(
                out,
                "{{\"trace\":\"{:016x}\",\"span\":{},\"parent\":{},\"stage\":\"{}\",\
                 \"node\":{},\"hop\":{},\"at_us\":{}}}",
                ev.trace_id,
                ev.span,
                ev.parent,
                ev.stage,
                ev.node,
                ev.hop,
                ev.at.as_micros(),
            );
        }
        out
    }

    /// FNV-1a digest of the canonical export — the compact byte-identity
    /// witness determinism transcripts embed.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.export_jsonl().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Parses a `contory-trace/1` JSONL stream back into a log
    /// (round-trip partner of [`TraceLog::export_jsonl`]).
    pub fn parse_jsonl(text: &str) -> Result<TraceLog, TraceError> {
        let mut log = TraceLog::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let bad = |detail: &str| TraceError::BadLine {
                line: i + 1,
                detail: detail.to_owned(),
            };
            let trace_hex = field_str(line, "trace").ok_or_else(|| bad("missing trace"))?;
            let trace_id =
                u64::from_str_radix(trace_hex, 16).map_err(|_| bad("bad trace id"))?;
            let stage_name = field_str(line, "stage").ok_or_else(|| bad("missing stage"))?;
            let stage = Stage::from_str(stage_name).ok_or_else(|| bad("unknown stage"))?;
            let span = field_u64(line, "span").ok_or_else(|| bad("missing span"))? as u32;
            let parent = field_u64(line, "parent").ok_or_else(|| bad("missing parent"))? as u32;
            let node = field_u64(line, "node").ok_or_else(|| bad("missing node"))?;
            let hop = field_u64(line, "hop").ok_or_else(|| bad("missing hop"))? as u8;
            let at_us = field_u64(line, "at_us").ok_or_else(|| bad("missing at_us"))?;
            log.events.push(TraceEvent {
                trace_id,
                span,
                parent,
                stage,
                node,
                hop,
                at: SimTime::from_micros(at_us),
            });
        }
        Ok(log)
    }

    /// Ingests obskit's span JSONL stream, lifting spans whose labels
    /// carry tracekit markers into hop events. Labels follow the
    /// convention the classic-sim instrumentation emits:
    ///
    /// ```text
    /// <free text> t=<trace id, 16 hex> s=<stage> n=<node> h=<hop> [p=<parent span>]
    /// ```
    ///
    /// Spans without a `t=` marker are not trace hops and are skipped;
    /// the span/parent ids default to obskit's creation-order ids so
    /// same-process trees assemble without explicit `p=` markers.
    pub fn from_obskit_jsonl(text: &str) -> Result<TraceLog, TraceError> {
        let mut log = TraceLog::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let bad = |detail: &str| TraceError::BadLine {
                line: i + 1,
                detail: detail.to_owned(),
            };
            let Some(label) = field_str(line, "label") else {
                continue;
            };
            let Some(trace_hex) = marker(label, "t=") else {
                continue;
            };
            let trace_id =
                u64::from_str_radix(trace_hex, 16).map_err(|_| bad("bad t= marker"))?;
            let stage = marker(label, "s=")
                .and_then(Stage::from_str)
                .ok_or_else(|| bad("missing or unknown s= marker"))?;
            let node = marker(label, "n=")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            let hop = marker(label, "h=")
                .and_then(|v| v.parse::<u8>().ok())
                .unwrap_or(0);
            let span = match marker(label, "sp=") {
                Some(v) => v.parse::<u32>().map_err(|_| bad("bad sp= marker"))?,
                None => field_u64(line, "id").ok_or_else(|| bad("missing id"))? as u32,
            };
            let parent = match marker(label, "p=") {
                Some(v) => v.parse::<u32>().map_err(|_| bad("bad p= marker"))?,
                None => field_u64(line, "parent").unwrap_or(0) as u32,
            };
            let at_us = field_u64(line, "start_us").ok_or_else(|| bad("missing start_us"))?;
            log.events.push(TraceEvent {
                trace_id,
                span,
                parent,
                stage,
                node,
                hop,
                at: SimTime::from_micros(at_us),
            });
        }
        Ok(log)
    }
}

/// Why a JSONL stream could not be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// A line was malformed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadLine { line, detail } => {
                write!(f, "trace jsonl line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Extracts the string value of `"key":"…"` from a flat JSON line,
/// honouring backslash escapes (returns the raw escaped slice).
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = line.get(start..)?;
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return rest.get(..i),
            _ => i += 1,
        }
    }
    None
}

/// Extracts the numeric value of `"key":123` from a flat JSON line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = line.get(start..)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest.get(..end)?.parse().ok()
}

/// Extracts a whitespace-delimited `key=value` marker from a label.
fn marker<'a>(label: &'a str, key: &str) -> Option<&'a str> {
    for part in label.split_ascii_whitespace() {
        if let Some(v) = part.strip_prefix(key) {
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new();
        let root = TraceCtx::root(1, 0);
        let t0 = SimTime::from_secs(1);
        let p = log.record(root, Stage::Publish, 100, t0);
        let a = log.record(root.child(p), Stage::Admit, 1, t0 + SimDuration::from_millis(2));
        let e = log.record(root.child(a), Stage::Enqueue, 1, t0 + SimDuration::from_millis(2));
        let d = log.record(root.child(e), Stage::Dispatch, 1, t0 + SimDuration::from_millis(50));
        log.record(root.child(d), Stage::Deliver, 200, t0 + SimDuration::from_millis(55));
        log
    }

    #[test]
    fn inactive_contexts_record_nothing() {
        let mut log = TraceLog::new();
        assert_eq!(log.record(TraceCtx::NONE, Stage::Admit, 1, SimTime::ZERO), 0);
        let unsampled = TraceCtx {
            sampled: false,
            ..TraceCtx::root(1, 0)
        };
        assert_eq!(log.record(unsampled, Stage::Admit, 1, SimTime::ZERO), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn export_round_trips() {
        let log = sample_log();
        let jsonl = log.export_jsonl();
        assert_eq!(jsonl.lines().count(), 5);
        let back = TraceLog::parse_jsonl(&jsonl).unwrap();
        assert_eq!(back.canonical_events(), log.canonical_events());
        assert_eq!(back.digest(), log.digest());
    }

    #[test]
    fn export_is_fold_order_invariant() {
        let log = sample_log();
        let mut reversed = TraceLog::new();
        for ev in log.events().iter().rev() {
            reversed.events.push(*ev);
        }
        assert_eq!(log.export_jsonl(), reversed.export_jsonl());
        assert_eq!(log.digest(), reversed.digest());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let err = TraceLog::parse_jsonl("{\"trace\":\"zz\"}").unwrap_err();
        assert!(matches!(err, TraceError::BadLine { line: 1, .. }));
        assert!(TraceLog::parse_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn obskit_stream_lifts_marked_labels() {
        let jsonl = concat!(
            "{\"id\":1,\"parent\":null,\"phase\":\"broker\",\"label\":\"store t=00000000000000ab s=admit n=3 h=0\",\"start_us\":10,\"end_us\":12}\n",
            "{\"id\":2,\"parent\":1,\"phase\":\"dispatch\",\"label\":\"drain t=00000000000000ab s=dispatch n=3 h=0\",\"start_us\":20,\"end_us\":21}\n",
            "{\"id\":3,\"parent\":null,\"phase\":\"connect\",\"label\":\"unrelated span\",\"start_us\":5,\"end_us\":6}\n",
        );
        let log = TraceLog::from_obskit_jsonl(jsonl).unwrap();
        assert_eq!(log.len(), 2);
        let evs = log.canonical_events();
        assert_eq!(evs[0].stage, Stage::Admit);
        assert_eq!(evs[0].node, 3);
        assert_eq!(evs[1].parent, 1);
        assert_eq!(evs[1].at, SimTime::from_micros(20));
    }
}
