//! Causal distributed tracing for the Contory reproduction.
//!
//! [`obskit`](obskit) gives every *process* a deterministic span log;
//! tracekit makes spans *causal across processes*. A [`TraceCtx`] rides
//! inside every [`brokerd`] context packet (and, behind the compat flag,
//! inside the Fuego envelope): a 64-bit trace id, the span id of the
//! hop that forwarded it, a federation hop count, and a **sampling
//! decision derived purely from the trace id** — no ambient randomness,
//! so the same seed always samples the same traces and byte-identity
//! across shard/thread counts is preserved with tracing on.
//!
//! The pieces:
//!
//! * [`TraceCtx`] — the propagated context (created with
//!   [`TraceCtx::root`] from deterministic id/seq material, advanced
//!   with [`TraceCtx::child`]/[`TraceCtx::hopped`]).
//! * [`TraceLog`] / [`TraceEvent`] — per-node append-only logs of hop
//!   events (publish/admit/shed/enqueue/dispatch/federate/gossip/
//!   deliver). `Send` and mergeable, unlike the thread-local obskit
//!   collector, so shard-parallel actors record locally and the
//!   harness folds logs in actor order after the run. Exports a
//!   canonical JSONL stream ([`TraceLog::export_jsonl`]) and parses
//!   both its own stream and obskit's span JSONL
//!   ([`TraceLog::from_obskit_jsonl`], labels carrying `t=<id>`
//!   markers).
//! * [`assemble`] — reconstructs end-to-end trace trees from a span
//!   stream, with parent links validated so a parent always precedes
//!   its child in sim time.
//! * [`Breakup`] — per-delivery critical paths folded into a
//!   broker-side latency break-up table, exported in the deterministic
//!   JSON style benchkit consumes.
//! * [`summaries`] — compact per-trace rows for the `TRACE` ops
//!   request on the live TCP service.
//!
//! [`brokerd`]: ../brokerd/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assemble;
mod ctx;
mod log;

pub use assemble::{
    assemble, summaries, Breakup, Delivery, TraceNode, TraceSummary, TraceTree,
};
pub use ctx::{mix64, ParseCtxError, TraceCtx};
pub use log::{Stage, TraceError, TraceEvent, TraceLog};
