//! The propagated trace context and its deterministic sampling rule.

use std::fmt;

/// SplitMix64 finalizer: the deterministic bit mixer trace ids and the
/// sampling decision are derived from. Public so every layer that mints
/// root contexts (fleet devices, the TCP service, the classic-sim cell)
/// derives ids the same way.
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salt separating the sampling decision from the id itself, so
/// sampling is not simply "low bits of the id" (which adjacent
/// sequence numbers would correlate).
const SAMPLE_SALT: u64 = 0x7e1e_c0de_5eed_5a17;

/// The causal context a packet carries across brokers.
///
/// `trace_id == 0` means "no trace" ([`TraceCtx::NONE`], the default on
/// every packet until a publisher mints a root). The sampling decision
/// is made **once**, at the root, as a pure function of the trace id —
/// every downstream hop just honours the propagated bit. No wall clock,
/// no RNG: two runs with the same seed sample the same traces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceCtx {
    /// Trace identity; 0 when untraced.
    pub trace_id: u64,
    /// Span id of the hop event that forwarded this context (0 at the
    /// root). Downstream events link to it as their causal parent.
    pub parent_span: u32,
    /// Federation hop count (0 at the publishing device).
    pub hop: u8,
    /// Root sampling decision, propagated unchanged.
    pub sampled: bool,
}

impl TraceCtx {
    /// The absent context: untraced, unsampled.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent_span: 0,
        hop: 0,
        sampled: false,
    };

    /// Mints a root context from deterministic id/seq `material`
    /// (e.g. `seed ^ device_id << 24 ^ publish_seq`), sampling one
    /// trace in `2^one_in_log2` (`0` ⇒ sample everything).
    pub fn root(material: u64, one_in_log2: u32) -> TraceCtx {
        // `| 1` keeps a real trace id from ever colliding with NONE.
        let trace_id = mix64(material) | 1;
        let mask = (1u64 << one_in_log2.min(63)) - 1;
        TraceCtx {
            trace_id,
            parent_span: 0,
            hop: 0,
            sampled: mix64(trace_id ^ SAMPLE_SALT) & mask == 0,
        }
    }

    /// True when hop events for this context should be recorded.
    pub fn is_active(&self) -> bool {
        self.sampled && self.trace_id != 0
    }

    /// The same trace, re-parented under the hop event `parent_span`.
    pub fn child(self, parent_span: u32) -> TraceCtx {
        TraceCtx {
            parent_span,
            ..self
        }
    }

    /// The same trace re-parented under `parent_span`, one federation
    /// hop further from the publisher.
    pub fn hopped(self, parent_span: u32) -> TraceCtx {
        TraceCtx {
            parent_span,
            hop: self.hop.saturating_add(1),
            ..self
        }
    }
}

/// Why a textual trace context failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseCtxError(pub String);

impl fmt::Display for ParseCtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad trace context: {}", self.0)
    }
}

impl std::error::Error for ParseCtxError {}

impl std::str::FromStr for TraceCtx {
    type Err = ParseCtxError;

    /// Parses the [`fmt::Display`] form
    /// `"<trace16hex>.<parent>.<hop>.<s|u>"`.
    fn from_str(s: &str) -> Result<TraceCtx, ParseCtxError> {
        let mut it = s.split('.');
        let (Some(id), Some(parent), Some(hop), Some(flag), None) =
            (it.next(), it.next(), it.next(), it.next(), it.next())
        else {
            return Err(ParseCtxError(format!("expected 4 dot-fields in {s:?}")));
        };
        let trace_id = u64::from_str_radix(id, 16)
            .map_err(|_| ParseCtxError(format!("bad trace id {id:?}")))?;
        let parent_span = parent
            .parse::<u32>()
            .map_err(|_| ParseCtxError(format!("bad parent span {parent:?}")))?;
        let hop = hop
            .parse::<u8>()
            .map_err(|_| ParseCtxError(format!("bad hop count {hop:?}")))?;
        let sampled = match flag {
            "s" => true,
            "u" => false,
            other => return Err(ParseCtxError(format!("bad sample flag {other:?}"))),
        };
        Ok(TraceCtx {
            trace_id,
            parent_span,
            hop,
            sampled,
        })
    }
}

impl fmt::Display for TraceCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:016x}.{}.{}.{}",
            self.trace_id,
            self.parent_span,
            self.hop,
            if self.sampled { 's' } else { 'u' }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_deterministic() {
        let a = TraceCtx::root(42, 3);
        let b = TraceCtx::root(42, 3);
        assert_eq!(a, b);
        assert_ne!(a.trace_id, 0);
        assert_eq!(a.hop, 0);
        assert_eq!(a.parent_span, 0);
    }

    #[test]
    fn sampling_rate_is_roughly_honoured() {
        let sampled = (0..4096u64)
            .filter(|i| TraceCtx::root(*i, 3).sampled)
            .count();
        // 1-in-8 over 4096 trials: expect ~512, allow a wide band.
        assert!((300..750).contains(&sampled), "sampled {sampled}/4096");
    }

    #[test]
    fn rate_zero_samples_everything() {
        assert!((0..64u64).all(|i| TraceCtx::root(i, 0).sampled));
    }

    #[test]
    fn child_and_hop_propagate_identity() {
        let root = TraceCtx::root(7, 0);
        let c = root.child(9);
        assert_eq!(c.trace_id, root.trace_id);
        assert_eq!(c.parent_span, 9);
        assert_eq!(c.hop, 0);
        let h = c.hopped(11);
        assert_eq!(h.hop, 1);
        assert_eq!(h.parent_span, 11);
        assert_eq!(h.sampled, root.sampled);
    }

    #[test]
    fn none_is_inactive() {
        assert!(!TraceCtx::NONE.is_active());
        assert_eq!(TraceCtx::default(), TraceCtx::NONE);
    }

    #[test]
    fn display_is_compact() {
        let t = TraceCtx {
            trace_id: 0xabc,
            parent_span: 4,
            hop: 2,
            sampled: true,
        };
        assert_eq!(t.to_string(), "0000000000000abc.4.2.s");
    }

    #[test]
    fn display_round_trips_through_from_str() {
        for ctx in [
            TraceCtx::NONE,
            TraceCtx::root(99, 0),
            TraceCtx::root(7, 2).child(41).hopped(1234),
        ] {
            assert_eq!(ctx.to_string().parse::<TraceCtx>().unwrap(), ctx);
        }
        for bad in ["", "zz.0.0.s", "1.0.0", "1.0.0.x", "1.0.0.s.extra", "1.-1.0.u"] {
            assert!(bad.parse::<TraceCtx>().is_err(), "accepted {bad:?}");
        }
    }
}
