//! Trace-tree assembly, critical paths and the latency break-up table.
//!
//! Assembly is pure and deterministic: events are taken in
//! [`TraceLog::canonical_events`] order and parent links are accepted
//! only when the parent sorts strictly earlier than the child, so the
//! result is always a forest in which **a parent precedes its child in
//! sim time** — even if the input stream is adversarial (orphaned
//! parents, duplicate span ids, unsampled upstream hops). Orphans
//! simply become roots; no event is ever dropped or duplicated.

use crate::log::{Stage, TraceEvent, TraceLog};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One assembled hop with its tree links (indices into
/// [`TraceTree::nodes`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceNode {
    /// The underlying hop event.
    pub event: TraceEvent,
    /// Index of the causal parent, if it was observed.
    pub parent: Option<usize>,
    /// Indices of observed children, in canonical order.
    pub children: Vec<usize>,
}

/// All observed hops of one trace, assembled into a forest (a single
/// tree when every hop was sampled and recorded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceTree {
    /// Trace identity.
    pub trace_id: u64,
    /// Hops in canonical (time/pipeline) order.
    pub nodes: Vec<TraceNode>,
}

/// One end-to-end delivery inside a trace: the critical path from the
/// earliest observed ancestor down to a `deliver` hop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Index of the `deliver` node in [`TraceTree::nodes`].
    pub deliver: usize,
    /// End-to-end latency along the path, in µs.
    pub latency_us: u64,
    /// Node indices from root to the delivering hop.
    pub path: Vec<usize>,
}

impl TraceTree {
    /// First observed instant of the trace, in µs.
    pub fn start_us(&self) -> u64 {
        self.nodes.first().map_or(0, |n| n.event.at.as_micros())
    }

    /// Last observed instant of the trace, in µs.
    pub fn end_us(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.event.at.as_micros())
            .max()
            .unwrap_or(0)
    }

    /// Every delivery's critical path (root → `deliver`), in canonical
    /// order of the delivering hop.
    pub fn deliveries(&self) -> Vec<Delivery> {
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.event.stage != Stage::Deliver {
                continue;
            }
            let mut path = vec![i];
            let mut cur = i;
            while let Some(p) = self.nodes.get(cur).and_then(|n| n.parent) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            let root_at = self.nodes.get(path.first().copied().unwrap_or(i));
            let latency_us = node
                .event
                .at
                .as_micros()
                .saturating_sub(root_at.map_or(0, |r| r.event.at.as_micros()));
            out.push(Delivery {
                deliver: i,
                latency_us,
                path,
            });
        }
        out
    }
}

/// Reconstructs every trace in the log as a tree (forest), in
/// ascending trace-id order.
pub fn assemble(log: &TraceLog) -> Vec<TraceTree> {
    let events = log.canonical_events();
    let mut trees: Vec<TraceTree> = Vec::new();
    let mut start = 0;
    while start < events.len() {
        let trace_id = match events.get(start) {
            Some(ev) => ev.trace_id,
            None => break,
        };
        let mut end = start;
        while events.get(end).is_some_and(|ev| ev.trace_id == trace_id) {
            end += 1;
        }
        let slice = events.get(start..end).unwrap_or(&[]);
        // First occurrence of each span id wins; later duplicates still
        // become nodes, they just can't be linked to as parents.
        let mut by_span: BTreeMap<u32, usize> = BTreeMap::new();
        for (i, ev) in slice.iter().enumerate() {
            by_span.entry(ev.span).or_insert(i);
        }
        let mut nodes: Vec<TraceNode> = slice
            .iter()
            .map(|ev| TraceNode {
                event: *ev,
                parent: None,
                children: Vec::new(),
            })
            .collect();
        for i in 0..nodes.len() {
            let parent_span = nodes.get(i).map_or(0, |n| n.event.parent);
            if parent_span == 0 {
                continue;
            }
            // Accept the link only when the parent sorts strictly
            // earlier: canonical order is time-major, so this enforces
            // "parent precedes child in sim time" and rules out cycles.
            let Some(&j) = by_span.get(&parent_span) else {
                continue;
            };
            if j >= i {
                continue;
            }
            if let Some(n) = nodes.get_mut(i) {
                n.parent = Some(j);
            }
            if let Some(p) = nodes.get_mut(j) {
                p.children.push(i);
            }
        }
        trees.push(TraceTree { trace_id, nodes });
        start = end;
    }
    trees
}

/// Per-stage row of the break-up table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageCost {
    /// Total µs attributed to reaching this stage from its parent,
    /// summed over every delivery critical path.
    pub us: u64,
    /// Path segments folded into `us`.
    pub samples: u64,
}

/// The broker-side latency break-up: every delivery critical path
/// decomposed into "time to reach stage X from its parent" buckets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Breakup {
    stages: BTreeMap<&'static str, StageCost>,
    latencies_us: Vec<u64>,
    total_us: u64,
}

impl Breakup {
    /// Folds every delivery of every tree into the table.
    pub fn of(trees: &[TraceTree]) -> Breakup {
        let mut b = Breakup::default();
        for tree in trees {
            for d in tree.deliveries() {
                for pair in d.path.windows(2) {
                    let (Some(&pi), Some(&ci)) = (pair.first(), pair.get(1)) else {
                        continue;
                    };
                    let (Some(p), Some(c)) = (tree.nodes.get(pi), tree.nodes.get(ci)) else {
                        continue;
                    };
                    let dt = c.event.at.as_micros().saturating_sub(p.event.at.as_micros());
                    let row = b.stages.entry(c.event.stage.as_str()).or_default();
                    row.us += dt;
                    row.samples += 1;
                    b.total_us += dt;
                }
                b.latencies_us.push(d.latency_us);
            }
        }
        b.latencies_us.sort_unstable();
        b
    }

    /// Deliveries folded in.
    pub fn deliveries(&self) -> u64 {
        self.latencies_us.len() as u64
    }

    /// Total µs across all paths and stages.
    pub fn total_us(&self) -> u64 {
        self.total_us
    }

    /// A stage's cost row (zero row if the stage never appeared).
    pub fn stage(&self, stage: Stage) -> StageCost {
        self.stages.get(stage.as_str()).copied().unwrap_or_default()
    }

    /// A stage's share of the total, in per-mille (integer math — no
    /// float ordering anywhere near the determinism gates).
    pub fn share_pm(&self, stage: Stage) -> u64 {
        if self.total_us == 0 {
            0
        } else {
            self.stage(stage).us * 1000 / self.total_us
        }
    }

    /// End-to-end latency quantile over all deliveries, in µs
    /// (nearest-rank; 0 when empty).
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let n = self.latencies_us.len();
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
        self.latencies_us.get(rank - 1).copied().unwrap_or(0)
    }

    /// Renders the human table (stage, total µs, share, samples).
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<10} {:>12} {:>7} {:>9}", "stage", "total_us", "share", "samples");
        for (name, row) in &self.stages {
            let pm = if self.total_us == 0 {
                0
            } else {
                row.us * 1000 / self.total_us
            };
            let _ = writeln!(
                out,
                "{:<10} {:>12} {:>4}.{}% {:>9}",
                name,
                row.us,
                pm / 10,
                pm % 10,
                row.samples
            );
        }
        let _ = writeln!(
            out,
            "{:<10} {:>12} 100.0% {:>9}",
            "total",
            self.total_us,
            self.deliveries()
        );
        out
    }

    /// Renders the deterministic JSON export (schema
    /// `contory-trace-breakup/1`; integers only, keys sorted).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"contory-trace-breakup/1\",\"deliveries\":{},\
             \"latency_us_total\":{},\"latency_us_p50\":{},\"latency_us_p99\":{},\
             \"stages\":{{",
            self.deliveries(),
            self.total_us,
            self.latency_quantile_us(0.50),
            self.latency_quantile_us(0.99),
        );
        let mut first = true;
        for (name, row) in &self.stages {
            if !first {
                out.push(',');
            }
            first = false;
            let pm = if self.total_us == 0 {
                0
            } else {
                row.us * 1000 / self.total_us
            };
            let _ = write!(
                out,
                "\"{name}\":{{\"us\":{},\"share_pm\":{pm},\"samples\":{}}}",
                row.us, row.samples
            );
        }
        out.push_str("}}");
        out
    }
}

/// A compact per-trace row for the live `TRACE` ops request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Trace identity.
    pub trace_id: u64,
    /// Observed hop events.
    pub spans: u64,
    /// First observed instant, µs.
    pub start_us: u64,
    /// Last observed instant, µs.
    pub end_us: u64,
    /// Deliveries observed.
    pub deliveries: u64,
    /// Worst end-to-end delivery latency, µs.
    pub worst_latency_us: u64,
}

impl TraceSummary {
    /// The single-line wire rendering.
    pub fn line(&self) -> String {
        format!(
            "trace={:016x} spans={} start_us={} end_us={} deliveries={} worst_us={}",
            self.trace_id, self.spans, self.start_us, self.end_us, self.deliveries,
            self.worst_latency_us
        )
    }
}

/// The `limit` most recent trace summaries (latest last-activity
/// first; trace id breaks ties for determinism).
pub fn summaries(log: &TraceLog, limit: usize) -> Vec<TraceSummary> {
    let mut rows: Vec<TraceSummary> = assemble(log)
        .iter()
        .map(|tree| {
            let deliveries = tree.deliveries();
            TraceSummary {
                trace_id: tree.trace_id,
                spans: tree.nodes.len() as u64,
                start_us: tree.start_us(),
                end_us: tree.end_us(),
                deliveries: deliveries.len() as u64,
                worst_latency_us: deliveries.iter().map(|d| d.latency_us).max().unwrap_or(0),
            }
        })
        .collect();
    rows.sort_by(|a, b| b.end_us.cmp(&a.end_us).then(a.trace_id.cmp(&b.trace_id)));
    rows.truncate(limit);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::TraceCtx;
    use simkit::{SimDuration, SimTime};

    /// publish(dev) → admit/enqueue(b1) → dispatch(b1) → {deliver(sub),
    /// federate(b1) → admit/enqueue(b2) → dispatch(b2) → deliver(sub2)}
    fn two_hop_log() -> TraceLog {
        let mut log = TraceLog::new();
        let ms = SimDuration::from_millis;
        let t0 = SimTime::from_secs(5);
        let root = TraceCtx::root(99, 0);
        let p = log.record(root, Stage::Publish, 1000, t0);
        let a = log.record(root.child(p), Stage::Admit, 1, t0 + ms(2));
        let e = log.record(root.child(a), Stage::Enqueue, 1, t0 + ms(2));
        let d = log.record(root.child(e), Stage::Dispatch, 1, t0 + ms(40));
        log.record(root.child(d), Stage::Deliver, 2000, t0 + ms(45));
        let f = log.record(root.child(d), Stage::Federate, 1, t0 + ms(40));
        let fwd = root.hopped(f);
        let a2 = log.record(fwd, Stage::Admit, 2, t0 + ms(50));
        let e2 = log.record(fwd.child(a2), Stage::Enqueue, 2, t0 + ms(50));
        let d2 = log.record(fwd.child(e2), Stage::Dispatch, 2, t0 + ms(90));
        log.record(fwd.child(d2), Stage::Deliver, 2001, t0 + ms(95));
        log
    }

    #[test]
    fn assembly_conserves_spans_and_orders_parents() {
        let log = two_hop_log();
        let trees = assemble(&log);
        assert_eq!(trees.len(), 1);
        let tree = trees.first().unwrap();
        assert_eq!(tree.nodes.len(), log.len());
        let roots = tree.nodes.iter().filter(|n| n.parent.is_none()).count();
        assert_eq!(roots, 1, "fully sampled trace assembles to one tree");
        for (i, n) in tree.nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                assert!(p < i);
                let pat = tree.nodes.get(p).unwrap().event.at;
                assert!(pat <= n.event.at, "parent must precede child");
            }
        }
    }

    #[test]
    fn critical_paths_cover_both_deliveries() {
        let log = two_hop_log();
        let trees = assemble(&log);
        let tree = trees.first().unwrap();
        let ds = tree.deliveries();
        assert_eq!(ds.len(), 2);
        let local = ds.first().unwrap();
        let remote = ds.get(1).unwrap();
        assert_eq!(local.latency_us, 45_000);
        assert_eq!(remote.latency_us, 95_000);
        // Remote path crosses the federation hop.
        let stages: Vec<Stage> = remote
            .path
            .iter()
            .filter_map(|&i| tree.nodes.get(i).map(|n| n.event.stage))
            .collect();
        assert_eq!(
            stages,
            vec![
                Stage::Publish,
                Stage::Admit,
                Stage::Enqueue,
                Stage::Dispatch,
                Stage::Federate,
                Stage::Admit,
                Stage::Enqueue,
                Stage::Dispatch,
                Stage::Deliver
            ]
        );
    }

    #[test]
    fn breakup_accounts_every_microsecond() {
        let log = two_hop_log();
        let b = Breakup::of(&assemble(&log));
        assert_eq!(b.deliveries(), 2);
        let stage_sum: u64 = Stage::ALL.iter().map(|s| b.stage(*s).us).sum();
        assert_eq!(stage_sum, b.total_us());
        // total = 45ms (local) + 95ms (remote) path time.
        assert_eq!(b.total_us(), 140_000);
        assert_eq!(b.latency_quantile_us(0.50), 45_000);
        assert_eq!(b.latency_quantile_us(0.99), 95_000);
        let json = b.to_json();
        assert!(json.starts_with("{\"schema\":\"contory-trace-breakup/1\""));
        // Dispatch wait is charged per delivery path: 38 ms on the
        // local path plus 38 ms + 40 ms on the federated one.
        assert!(json.contains("\"dispatch\":{\"us\":116000"));
        assert!(b.table().contains("total"));
    }

    #[test]
    fn orphaned_parent_becomes_root() {
        let mut log = TraceLog::new();
        // An active ctx claiming a parent span nobody recorded
        // (e.g. the upstream hop pre-dates the log window).
        let ctx = TraceCtx {
            parent_span: 777,
            ..TraceCtx::root(3, 0)
        };
        log.record(ctx, Stage::Dispatch, 1, SimTime::from_secs(1));
        let trees = assemble(&log);
        assert_eq!(trees.first().unwrap().nodes.first().unwrap().parent, None);
    }

    #[test]
    fn summaries_are_recent_first_and_bounded() {
        let mut log = two_hop_log();
        let other = TraceCtx::root(123, 0);
        log.record(other, Stage::Publish, 1, SimTime::from_secs(99));
        let rows = summaries(&log, 10);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.first().unwrap().end_us, 99_000_000);
        assert_eq!(rows.get(1).unwrap().deliveries, 2);
        assert!(rows.first().unwrap().line().starts_with("trace="));
        assert_eq!(summaries(&log, 1).len(), 1);
    }
}
