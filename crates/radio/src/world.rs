//! Spatial world: node identities, positions and mobility.
//!
//! All radios share one [`World`], which answers "where is node N at time
//! t?" — the only geometry question the range checks and the geographic
//! routing of Smart Messages need. Mobility is piecewise-linear waypoint
//! interpolation, enough to model sailing boats drifting along a regatta
//! course.

use simkit::{ShardId, Sim, SimTime};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

/// Identifier of a node (phone, communicator, GPS puck, base station…).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A point in the flat 2-D world, in metres.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Position {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Position {
    /// Origin of the world.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position, in metres.
    pub fn distance_to(&self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Linear interpolation towards `other` (`t` in `[0,1]`).
    pub fn lerp(&self, other: Position, t: f64) -> Position {
        let t = t.clamp(0.0, 1.0);
        Position {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// A circular region of interest (query destinations can be regions,
/// e.g. "the waters near a guest harbour").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Region {
    /// Centre of the region.
    pub center: Position,
    /// Radius in metres.
    pub radius: f64,
}

impl Region {
    /// Creates a region.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative.
    pub fn new(center: Position, radius: f64) -> Self {
        assert!(radius >= 0.0, "region radius must be non-negative");
        Region { center, radius }
    }

    /// Whether `p` lies inside (or on the edge of) the region.
    pub fn contains(&self, p: Position) -> bool {
        self.center.distance_to(p) <= self.radius
    }
}

#[derive(Clone, Debug)]
enum Mobility {
    Fixed(Position),
    /// Piecewise-linear path: holds the first position until its time,
    /// then interpolates segment by segment, then holds the last.
    Waypoints(Vec<(SimTime, Position)>),
}

impl Mobility {
    fn position_at(&self, t: SimTime) -> Position {
        match self {
            Mobility::Fixed(p) => *p,
            Mobility::Waypoints(points) => {
                debug_assert!(!points.is_empty());
                let Some(&(first_t, first_p)) = points.first() else {
                    // Degenerate empty waypoint list: hold the origin
                    // rather than panicking inside the interpolator.
                    return Position::ORIGIN;
                };
                if t <= first_t {
                    return first_p;
                }
                for w in points.windows(2) {
                    let (t0, p0) = w[0];
                    let (t1, p1) = w[1];
                    if t <= t1 {
                        let span = (t1 - t0).as_secs_f64();
                        let frac = if span == 0.0 {
                            1.0
                        } else {
                            (t - t0).as_secs_f64() / span
                        };
                        return p0.lerp(p1, frac);
                    }
                }
                points.last().map_or(first_p, |w| w.1)
            }
        }
    }
}

struct Inner {
    sim: Sim,
    nodes: BTreeMap<NodeId, Mobility>,
    /// Nodes whose radios are dead (churn/partition fault injection):
    /// they keep a position but drop out of every topology answer.
    down: BTreeSet<NodeId>,
    /// Partition assignment for the sharded engine: nodes not present
    /// live on shard 0 (the whole-world default). The assignment is an
    /// event-ordering *tag*, never a topology answer, so it cannot
    /// change what a scenario computes — only how its same-instant
    /// events tie-break, which matches the partitioned merge order.
    shards: BTreeMap<NodeId, ShardId>,
    next_id: u32,
}

/// Shared registry of nodes and their (possibly moving) positions.
///
/// ```
/// use radio::{Position, World};
/// use simkit::Sim;
///
/// let sim = Sim::new();
/// let world = World::new(&sim);
/// let a = world.add_node(Position::new(0.0, 0.0));
/// let b = world.add_node(Position::new(3.0, 4.0));
/// assert_eq!(world.distance(a, b), Some(5.0));
/// ```
#[derive(Clone)]
pub struct World {
    inner: Rc<RefCell<Inner>>,
}

impl World {
    /// Creates an empty world bound to a simulator clock.
    pub fn new(sim: &Sim) -> Self {
        World {
            inner: Rc::new(RefCell::new(Inner {
                sim: sim.clone(),
                nodes: BTreeMap::new(),
                down: BTreeSet::new(),
                shards: BTreeMap::new(),
                next_id: 0,
            })),
        }
    }

    /// Registers a stationary node and returns its id.
    pub fn add_node(&self, pos: Position) -> NodeId {
        let mut inner = self.inner.borrow_mut();
        let id = NodeId(inner.next_id);
        inner.next_id += 1;
        inner.nodes.insert(id, Mobility::Fixed(pos));
        id
    }

    /// Registers a node following a waypoint path.
    ///
    /// # Panics
    ///
    /// Panics if `waypoints` is empty or not time-ordered.
    pub fn add_mobile_node(&self, waypoints: Vec<(SimTime, Position)>) -> NodeId {
        assert!(!waypoints.is_empty(), "waypoint path must be non-empty");
        assert!(
            waypoints.windows(2).all(|w| w[0].0 <= w[1].0),
            "waypoints must be time-ordered"
        );
        let mut inner = self.inner.borrow_mut();
        let id = NodeId(inner.next_id);
        inner.next_id += 1;
        inner.nodes.insert(id, Mobility::Waypoints(waypoints));
        id
    }

    /// Moves a node to a fixed position (replacing any path).
    pub fn set_position(&self, node: NodeId, pos: Position) {
        self.inner
            .borrow_mut()
            .nodes
            .insert(node, Mobility::Fixed(pos));
    }

    /// Current position of a node, if registered.
    pub fn position_of(&self, node: NodeId) -> Option<Position> {
        let inner = self.inner.borrow();
        let now = inner.sim.now();
        inner.nodes.get(&node).map(|m| m.position_at(now))
    }

    /// Distance between two nodes, if both are registered.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Option<f64> {
        Some(self.position_of(a)?.distance_to(self.position_of(b)?))
    }

    /// Whether two distinct registered nodes are within `range` metres
    /// *and* both up (see [`World::set_node_up`]).
    pub fn in_range(&self, a: NodeId, b: NodeId, range: f64) -> bool {
        a != b
            && self.is_node_up(a)
            && self.is_node_up(b)
            && self.distance(a, b).is_some_and(|d| d <= range)
    }

    /// Marks a node's radio dead or alive (fault injection: churn, crash,
    /// partition). A down node keeps its position and mobility but stops
    /// appearing in [`World::neighbors`], [`World::in_range`] and
    /// [`World::nodes_in_region`]. Nodes start up; unknown ids are a
    /// no-op.
    pub fn set_node_up(&self, node: NodeId, up: bool) {
        let mut inner = self.inner.borrow_mut();
        if up {
            inner.down.remove(&node);
        } else if inner.nodes.contains_key(&node) {
            inner.down.insert(node);
        }
    }

    /// Whether the node's radio is alive (unknown nodes report `false`).
    pub fn is_node_up(&self, node: NodeId) -> bool {
        let inner = self.inner.borrow();
        inner.nodes.contains_key(&node) && !inner.down.contains(&node)
    }

    /// Partitions the world: every node in `nodes` goes down at once
    /// (convenience for scripted partitions).
    pub fn partition_down(&self, nodes: &[NodeId]) {
        for &n in nodes {
            self.set_node_up(n, false);
        }
    }

    /// Assigns a node to a shard (partition of the sharded engine).
    /// Unassigned nodes live on shard 0. Radios use the assignment to
    /// tag cross-node deliveries with the receiver's shard, preserving
    /// the partitioned merge order. Unknown ids are a no-op.
    pub fn set_shard(&self, node: NodeId, shard: ShardId) {
        let mut inner = self.inner.borrow_mut();
        if inner.nodes.contains_key(&node) {
            inner.shards.insert(node, shard);
        }
    }

    /// The shard a node is assigned to (shard 0 when unassigned or
    /// unknown).
    pub fn shard_of(&self, node: NodeId) -> ShardId {
        self.inner
            .borrow()
            .shards
            .get(&node)
            .copied()
            .unwrap_or(ShardId::ZERO)
    }

    /// All registered nodes.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.inner.borrow().nodes.keys().copied().collect()
    }

    /// All *up* nodes other than `of` within `range` metres of it.
    /// A down `of` has no neighbors at all.
    pub fn neighbors(&self, of: NodeId, range: f64) -> Vec<NodeId> {
        if !self.is_node_up(of) {
            return Vec::new();
        }
        let Some(origin) = self.position_of(of) else {
            return Vec::new();
        };
        let inner = self.inner.borrow();
        let now = inner.sim.now();
        inner
            .nodes
            .iter()
            .filter(|&(&id, m)| {
                id != of
                    && !inner.down.contains(&id)
                    && m.position_at(now).distance_to(origin) <= range
            })
            .map(|(&id, _)| id)
            .collect()
    }

    /// Up nodes currently inside a region.
    pub fn nodes_in_region(&self, region: Region) -> Vec<NodeId> {
        let inner = self.inner.borrow();
        let now = inner.sim.now();
        inner
            .nodes
            .iter()
            .filter(|&(&id, m)| !inner.down.contains(&id) && region.contains(m.position_at(now)))
            .map(|(&id, _)| id)
            .collect()
    }
}

impl fmt::Debug for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("nodes", &self.inner.borrow().nodes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    #[test]
    fn distance_and_range() {
        let sim = Sim::new();
        let w = World::new(&sim);
        let a = w.add_node(Position::new(0.0, 0.0));
        let b = w.add_node(Position::new(6.0, 8.0));
        assert_eq!(w.distance(a, b), Some(10.0));
        assert!(w.in_range(a, b, 10.0));
        assert!(!w.in_range(a, b, 9.99));
        assert!(!w.in_range(a, a, 100.0), "a node is not its own neighbor");
    }

    #[test]
    fn unknown_node_queries_are_none() {
        let sim = Sim::new();
        let w = World::new(&sim);
        let a = w.add_node(Position::ORIGIN);
        assert_eq!(w.position_of(NodeId(99)), None);
        assert_eq!(w.distance(a, NodeId(99)), None);
    }

    #[test]
    fn waypoint_interpolation() {
        let sim = Sim::new();
        let w = World::new(&sim);
        let n = w.add_mobile_node(vec![
            (SimTime::from_secs(10), Position::new(0.0, 0.0)),
            (SimTime::from_secs(20), Position::new(100.0, 0.0)),
        ]);
        // before the path starts: first waypoint
        assert_eq!(w.position_of(n).unwrap(), Position::new(0.0, 0.0));
        sim.run_until(SimTime::from_secs(15));
        assert_eq!(w.position_of(n).unwrap(), Position::new(50.0, 0.0));
        sim.run_for(SimDuration::from_secs(100));
        assert_eq!(w.position_of(n).unwrap(), Position::new(100.0, 0.0));
    }

    #[test]
    fn neighbors_respect_mobility() {
        let sim = Sim::new();
        let w = World::new(&sim);
        let fixed = w.add_node(Position::ORIGIN);
        let roamer = w.add_mobile_node(vec![
            (SimTime::ZERO, Position::new(0.0, 5.0)),
            (SimTime::from_secs(10), Position::new(0.0, 500.0)),
        ]);
        assert_eq!(w.neighbors(fixed, 10.0), vec![roamer]);
        sim.run_until(SimTime::from_secs(10));
        assert!(w.neighbors(fixed, 10.0).is_empty());
    }

    #[test]
    fn region_membership() {
        let sim = Sim::new();
        let w = World::new(&sim);
        let inside = w.add_node(Position::new(1.0, 1.0));
        let outside = w.add_node(Position::new(50.0, 50.0));
        let r = Region::new(Position::ORIGIN, 5.0);
        let members = w.nodes_in_region(r);
        assert!(members.contains(&inside));
        assert!(!members.contains(&outside));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unordered_waypoints_panic() {
        let sim = Sim::new();
        let w = World::new(&sim);
        w.add_mobile_node(vec![
            (SimTime::from_secs(5), Position::ORIGIN),
            (SimTime::from_secs(1), Position::ORIGIN),
        ]);
    }

    #[test]
    fn down_nodes_leave_the_topology() {
        let sim = Sim::new();
        let w = World::new(&sim);
        let a = w.add_node(Position::ORIGIN);
        let b = w.add_node(Position::new(3.0, 4.0));
        let c = w.add_node(Position::new(0.0, 1.0));
        assert!(w.is_node_up(b));
        w.set_node_up(b, false);
        assert!(!w.is_node_up(b));
        assert!(!w.in_range(a, b, 100.0));
        assert_eq!(w.neighbors(a, 100.0), vec![c]);
        assert_eq!(
            w.nodes_in_region(Region::new(Position::ORIGIN, 100.0)),
            vec![a, c]
        );
        // Position survives the outage; distance still answers.
        assert_eq!(w.distance(a, b), Some(5.0));
        w.set_node_up(b, true);
        assert_eq!(w.neighbors(a, 100.0), vec![b, c]);
    }

    #[test]
    fn down_origin_has_no_neighbors() {
        let sim = Sim::new();
        let w = World::new(&sim);
        let a = w.add_node(Position::ORIGIN);
        let _b = w.add_node(Position::new(1.0, 0.0));
        w.set_node_up(a, false);
        assert!(w.neighbors(a, 10.0).is_empty());
    }

    #[test]
    fn partition_and_unknown_nodes() {
        let sim = Sim::new();
        let w = World::new(&sim);
        let a = w.add_node(Position::ORIGIN);
        let b = w.add_node(Position::new(1.0, 0.0));
        w.partition_down(&[a, b]);
        assert!(!w.is_node_up(a) && !w.is_node_up(b));
        // Unknown ids: no-op / false.
        w.set_node_up(NodeId(77), false);
        assert!(!w.is_node_up(NodeId(77)));
        w.set_node_up(a, true);
        assert!(w.is_node_up(a));
    }

    #[test]
    fn shard_assignment_defaults_to_zero() {
        let sim = Sim::new();
        let w = World::new(&sim);
        let a = w.add_node(Position::ORIGIN);
        assert_eq!(w.shard_of(a), ShardId::ZERO);
        w.set_shard(a, ShardId(3));
        assert_eq!(w.shard_of(a), ShardId(3));
        // Unknown node: no-op assignment, zero answer.
        w.set_shard(NodeId(99), ShardId(7));
        assert_eq!(w.shard_of(NodeId(99)), ShardId::ZERO);
    }

    #[test]
    fn set_position_overrides_path() {
        let sim = Sim::new();
        let w = World::new(&sim);
        let n = w.add_mobile_node(vec![(SimTime::ZERO, Position::ORIGIN)]);
        w.set_position(n, Position::new(9.0, 9.0));
        assert_eq!(w.position_of(n).unwrap(), Position::new(9.0, 9.0));
    }
}
