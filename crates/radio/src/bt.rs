//! Bluetooth radio model (JSR-82-level abstractions).
//!
//! Reproduces the behaviour the paper measured on the Nokia testbed:
//!
//! - **Device inquiry** takes ≈ 13 s and dominates on-demand provisioning
//!   cost (Table 2: 5.27 J including discovery vs 0.099 J without).
//! - **SDP service discovery** takes ≈ 1.12 s.
//! - **Service registration** (building the `DataElement` and inserting it
//!   into the Service Discovery Database) takes ≈ 140.4 ms — this is why
//!   BT-based `publishCxtItem` is three orders of magnitude slower than
//!   publishing an SM tag (Table 1).
//! - **Data exchange** is segmented into L2CAP packets; a 205-byte query
//!   plus a 136-byte item reply costs ≈ 31.8 ms at one hop.
//! - **Power**: page/inquiry scan draws 2.72 mW, inquiry ≈ 385 mW, and the
//!   radio stays in an elevated *active window* around each transfer —
//!   which is what makes a periodic GPS-NMEA stream (340 B in several
//!   sentences) cost 0.42 J/item against 0.099 J for a compact context
//!   item, exactly the segmentation effect the paper calls out.
//!
//! The model is callback-based: every operation completes via a closure
//! scheduled on the simulator, never synchronously.

use crate::world::{NodeId, World};
use phone::{Consumer, Milliwatts, Phone, PowerModel};
use simkit::{DetRng, ShardId, Sim, SimDuration, SimTime};
use std::any::Any;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Opaque application payload carried over a link. The wire size is passed
/// separately (the simulation does not serialize for real).
pub type Payload = Rc<dyn Any>;

/// Identifier of an open ACL link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u64);

/// Errors surfaced by Bluetooth operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BtError {
    /// The local radio is powered off (or the phone is off).
    RadioOff,
    /// The peer is not within radio range.
    OutOfRange(NodeId),
    /// The peer exists but its radio is off or not discoverable.
    PeerUnavailable(NodeId),
    /// The link was closed or never existed.
    LinkClosed(LinkId),
    /// An inquiry or SDP query is already in progress.
    Busy,
}

impl fmt::Display for BtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BtError::RadioOff => write!(f, "bluetooth radio is off"),
            BtError::OutOfRange(n) => write!(f, "{n} is out of bluetooth range"),
            BtError::PeerUnavailable(n) => write!(f, "{n} is unavailable"),
            BtError::LinkClosed(l) => write!(f, "link {l:?} is closed"),
            BtError::Busy => write!(f, "radio is busy"),
        }
    }
}

impl Error for BtError {}

/// An entry in a device's Service Discovery Database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceRecord {
    /// Service class UUID (stringly, as JSR-82 exposes it).
    pub uuid: String,
    /// Human-readable service name.
    pub name: String,
    /// Attribute list (`DataElement`s flattened to strings).
    pub attributes: BTreeMap<String, String>,
}

impl ServiceRecord {
    /// Creates a record with no attributes.
    pub fn new(uuid: impl Into<String>, name: impl Into<String>) -> Self {
        ServiceRecord {
            uuid: uuid.into(),
            name: name.into(),
            attributes: BTreeMap::new(),
        }
    }

    /// Adds an attribute, builder style.
    pub fn with_attribute(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.insert(key.into(), value.into());
        self
    }

    /// Approximate wire size of the record when transferred during SDP.
    pub fn wire_size(&self) -> usize {
        let attrs: usize = self
            .attributes
            .iter()
            .map(|(k, v)| k.len() + v.len() + 6)
            .sum();
        self.uuid.len() + self.name.len() + attrs + 16
    }
}

/// Calibration constants of the Bluetooth model. Defaults reproduce the
/// paper's Tables 1 and 2 (see module docs).
#[derive(Clone, Debug)]
pub struct BtParams {
    /// Radio range in metres (class 2).
    pub range_m: f64,
    /// Mean device-inquiry duration (~13 s in the paper).
    pub inquiry_mean: SimDuration,
    /// Inquiry duration standard deviation.
    pub inquiry_std: SimDuration,
    /// Mean SDP service-search duration (~1.12 s).
    pub sdp_mean: SimDuration,
    /// SDP duration standard deviation.
    pub sdp_std: SimDuration,
    /// Mean page (connect) duration.
    pub page_mean: SimDuration,
    /// Page duration standard deviation.
    pub page_std: SimDuration,
    /// Mean service-registration latency (DataElement + SDDB insert,
    /// ~140.36 ms).
    pub register_mean: SimDuration,
    /// Service-registration standard deviation.
    pub register_std: SimDuration,
    /// L2CAP segment payload size in bytes.
    pub mtu: usize,
    /// Fixed per-send latency (link setup on the ACL).
    pub send_base: SimDuration,
    /// Per-packet airtime latency.
    pub per_packet: SimDuration,
    /// Draw while in page/inquiry scan (discoverable idle): 2.72 mW.
    pub scan_mw: f64,
    /// Draw while running an inquiry: ~385 mW (13 s of this is most of
    /// the 5.27 J on-demand cost).
    pub inquiry_mw: f64,
    /// Draw while an SDP transaction runs.
    pub sdp_mw: f64,
    /// Idle draw with an ACL link open.
    pub link_idle_mw: f64,
    /// Draw during the receive-side active window.
    pub active_rx_mw: f64,
    /// Draw during the transmit-side active window.
    pub active_tx_mw: f64,
    /// Fixed length of the post-transfer active window.
    pub active_window_base: SimDuration,
    /// Active-window extension per payload byte.
    pub active_window_per_byte: SimDuration,
}

impl Default for BtParams {
    fn default() -> Self {
        BtParams {
            range_m: 10.0,
            inquiry_mean: SimDuration::from_millis(13_000),
            inquiry_std: SimDuration::from_millis(120),
            sdp_mean: SimDuration::from_millis(1_120),
            sdp_std: SimDuration::from_millis(40),
            page_mean: SimDuration::from_millis(640),
            page_std: SimDuration::from_millis(60),
            register_mean: SimDuration::from_micros(140_359),
            register_std: SimDuration::from_micros(700),
            mtu: 96,
            send_base: SimDuration::from_micros(4_000),
            per_packet: SimDuration::from_micros(4_766),
            scan_mw: 2.72,
            inquiry_mw: 385.0,
            sdp_mw: 150.0,
            link_idle_mw: 6.0,
            active_rx_mw: 120.0,
            active_tx_mw: 161.0,
            active_window_base: SimDuration::from_micros(485_000),
            active_window_per_byte: SimDuration::from_micros(3_200),
        }
    }
}

impl BtParams {
    /// Number of L2CAP packets a payload of `bytes` segments into.
    pub fn packets_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.mtu).max(1)
    }
}

type ReceiveHandler = Rc<dyn Fn(LinkId, NodeId, Payload)>;
type DisconnectHandler = Rc<dyn Fn(LinkId, NodeId)>;
type ConnectHandler = Rc<dyn Fn(LinkId, NodeId)>;

struct RadioState {
    on: bool,
    discoverable: bool,
    services: Vec<ServiceRecord>,
    inquiring: bool,
    sdp_busy: bool,
    // link id -> peer
    links: BTreeMap<LinkId, NodeId>,
    tx_active_until: SimTime,
    rx_active_until: SimTime,
    on_receive: Option<ReceiveHandler>,
    on_disconnect: Option<DisconnectHandler>,
    on_connect: Option<ConnectHandler>,
    power: PowerModel,
    phone: Phone,
    rng: DetRng,
}

impl RadioState {
    fn current_draw(&self, params: &BtParams, now: SimTime) -> f64 {
        if !self.on || !self.phone.is_on() {
            return 0.0;
        }
        let mut draw: f64 = 0.0;
        if self.discoverable {
            draw = draw.max(params.scan_mw);
        }
        if !self.links.is_empty() {
            draw = draw.max(params.link_idle_mw);
        }
        if self.rx_active_until > now {
            draw = draw.max(params.active_rx_mw);
        }
        if self.tx_active_until > now {
            draw = draw.max(params.active_tx_mw);
        }
        if self.sdp_busy {
            draw = draw.max(params.sdp_mw);
        }
        if self.inquiring {
            draw = draw.max(params.inquiry_mw);
        }
        draw
    }
}

struct MediumInner {
    sim: Sim,
    world: World,
    params: BtParams,
    radios: BTreeMap<NodeId, Rc<RefCell<RadioState>>>,
    next_link: u64,
}

/// The shared Bluetooth medium: attach one radio per node.
#[derive(Clone)]
pub struct BtMedium {
    inner: Rc<RefCell<MediumInner>>,
}

impl BtMedium {
    /// Creates a medium over a world, with calibration parameters.
    pub fn new(sim: &Sim, world: &World, params: BtParams) -> Self {
        BtMedium {
            inner: Rc::new(RefCell::new(MediumInner {
                sim: sim.clone(),
                world: world.clone(),
                params,
                radios: BTreeMap::new(),
                next_link: 0,
            })),
        }
    }

    /// Attaches a Bluetooth radio to `node`, drawing power from `phone`.
    /// The radio starts powered on and discoverable (page/inquiry scan),
    /// like the paper's 8.47 mW baseline.
    ///
    /// # Panics
    ///
    /// Panics if the node already has a radio attached.
    pub fn attach(&self, node: NodeId, phone: &Phone, seed: u64) -> BtRadio {
        let state = Rc::new(RefCell::new(RadioState {
            on: true,
            discoverable: true,
            services: Vec::new(),
            inquiring: false,
            sdp_busy: false,
            links: BTreeMap::new(),
            tx_active_until: SimTime::ZERO,
            rx_active_until: SimTime::ZERO,
            on_receive: None,
            on_disconnect: None,
            on_connect: None,
            power: phone.power().clone(),
            phone: phone.clone(),
            rng: DetRng::new(seed),
        }));
        {
            let mut inner = self.inner.borrow_mut();
            let prev = inner.radios.insert(node, state.clone());
            assert!(prev.is_none(), "{node} already has a BT radio");
        }
        let radio = BtRadio {
            medium: self.clone(),
            node,
        };
        radio.refresh_power();
        radio
    }

    fn sim(&self) -> Sim {
        self.inner.borrow().sim.clone()
    }

    fn params(&self) -> BtParams {
        self.inner.borrow().params.clone()
    }

    fn state_of(&self, node: NodeId) -> Option<Rc<RefCell<RadioState>>> {
        self.inner.borrow().radios.get(&node).cloned()
    }

    /// The shard the node's receive side lives on (from the world's
    /// partition assignment) — the ordering tag of deliveries to it.
    fn shard_of(&self, node: NodeId) -> ShardId {
        self.inner.borrow().world.shard_of(node)
    }

    fn alloc_link(&self) -> LinkId {
        let mut inner = self.inner.borrow_mut();
        inner.next_link += 1;
        LinkId(inner.next_link)
    }

    fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        let inner = self.inner.borrow();
        inner.world.in_range(a, b, inner.params.range_m)
    }

    /// Nodes whose radios are on, discoverable and within range of `of`.
    fn discoverable_neighbors(&self, of: NodeId) -> Vec<NodeId> {
        let (world, range): (World, f64) = {
            let inner = self.inner.borrow();
            (inner.world.clone(), inner.params.range_m)
        };
        let neighbors = world.neighbors(of, range);
        let inner = self.inner.borrow();
        neighbors
            .into_iter()
            .filter(|n| {
                inner.radios.get(n).is_some_and(|r| {
                    let r = r.borrow();
                    r.on && r.discoverable && r.phone.is_on()
                })
            })
            .collect()
    }
}

impl fmt::Debug for BtMedium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BtMedium")
            .field("radios", &self.inner.borrow().radios.len())
            .finish()
    }
}

/// One node's Bluetooth radio. Cloneable handle.
#[derive(Clone)]
pub struct BtRadio {
    medium: BtMedium,
    node: NodeId,
}

impl BtRadio {
    /// The node this radio belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn state(&self) -> Rc<RefCell<RadioState>> {
        self.medium
            .state_of(self.node)
            // Attach is the only constructor, radios are never detached:
            // an absent entry is unreachable by construction.
            .expect("radio detached from medium") // lint:allow(panic-reachable) attach-time invariant
    }

    /// Recomputes this radio's draw and pokes the phone's power model.
    fn refresh_power(&self) {
        let params = self.medium.params();
        let now = self.medium.sim().now();
        let state = self.state();
        let (draw, power) = {
            let s = state.borrow();
            (s.current_draw(&params, now), s.power.clone())
        };
        power.set(Consumer::BtRadio, Milliwatts(draw));
    }

    /// Schedules a power refresh at `t` (used for active-window expiry).
    fn refresh_power_at(&self, t: SimTime) {
        let me = self.clone();
        self.medium.sim().schedule_at(t, move || me.refresh_power());
    }

    /// Powers the radio on or off. Powering off closes all links (both
    /// ends observe the disconnect).
    pub fn set_power(&self, on: bool) {
        let peers: Vec<(LinkId, NodeId)> = {
            let state = self.state();
            let mut s = state.borrow_mut();
            s.on = on;
            if on {
                Vec::new()
            } else {
                s.links.iter().map(|(&l, &p)| (l, p)).collect()
            }
        };
        for (link, peer) in peers {
            self.teardown_link(link, peer);
        }
        self.refresh_power();
    }

    /// True if the radio (and its phone) are powered.
    pub fn is_on(&self) -> bool {
        let state = self.state();
        let s = state.borrow();
        s.on && s.phone.is_on()
    }

    /// Sets whether this device answers inquiries (page/inquiry scan).
    pub fn set_discoverable(&self, discoverable: bool) {
        self.state().borrow_mut().discoverable = discoverable;
        self.refresh_power();
    }

    /// Installs the receive handler: `(link, from, payload)`.
    pub fn on_receive(&self, f: impl Fn(LinkId, NodeId, Payload) + 'static) {
        self.state().borrow_mut().on_receive = Some(Rc::new(f));
    }

    /// Installs the disconnect handler: `(link, peer)`.
    pub fn on_disconnect(&self, f: impl Fn(LinkId, NodeId) + 'static) {
        self.state().borrow_mut().on_disconnect = Some(Rc::new(f));
    }

    /// Installs the incoming-connection handler: `(link, initiator)`.
    /// Fired on the callee side when a peer opens an ACL link (how a
    /// BT-GPS puck learns a phone attached to it).
    pub fn on_connect(&self, f: impl Fn(LinkId, NodeId) + 'static) {
        self.state().borrow_mut().on_connect = Some(Rc::new(f));
    }

    /// Starts a device inquiry; `cb` receives discoverable in-range nodes
    /// after the ~13 s inquiry completes.
    ///
    /// # Errors
    ///
    /// The callback receives [`BtError::RadioOff`] if the radio is off or
    /// [`BtError::Busy`] if an inquiry is already running.
    pub fn inquiry(&self, cb: impl FnOnce(Result<Vec<NodeId>, BtError>) + 'static) {
        if !self.is_on() {
            let sim = self.medium.sim();
            sim.schedule_in(SimDuration::ZERO, move || cb(Err(BtError::RadioOff)));
            return;
        }
        let params = self.medium.params();
        let dur = {
            let state = self.state();
            let mut s = state.borrow_mut();
            if s.inquiring {
                drop(s);
                let sim = self.medium.sim();
                sim.schedule_in(SimDuration::ZERO, move || cb(Err(BtError::Busy)));
                return;
            }
            s.inquiring = true;
            s.rng.gauss_duration(params.inquiry_mean, params.inquiry_std)
        };
        self.refresh_power();
        obskit::count("bt_inquiries", 1);
        let span = obskit::start(
            obskit::Phase::Discovery,
            &format!("bt_inquiry:{}", self.node),
            None,
            self.medium.sim().now(),
        );
        let me = self.clone();
        self.medium.sim().schedule_in(dur, move || {
            me.state().borrow_mut().inquiring = false;
            me.refresh_power();
            obskit::end(span, me.medium.sim().now());
            let found = if me.is_on() {
                me.medium.discoverable_neighbors(me.node)
            } else {
                Vec::new()
            };
            obskit::count("bt_inquiry_found", found.len() as u64);
            cb(Ok(found));
        });
    }

    /// Registers a context service in the local SDDB. Completion (after
    /// the ~140 ms `DataElement` encapsulation + insert) is signalled via
    /// `cb`. Replaces any record with the same UUID.
    pub fn register_service(
        &self,
        record: ServiceRecord,
        cb: impl FnOnce(Result<(), BtError>) + 'static,
    ) {
        let sim = self.medium.sim();
        if !self.is_on() {
            sim.schedule_in(SimDuration::ZERO, move || cb(Err(BtError::RadioOff)));
            return;
        }
        let params = self.medium.params();
        let dur = {
            let state = self.state();
            let mut s = state.borrow_mut();
            s.rng
                .gauss_duration(params.register_mean, params.register_std)
        };
        obskit::count("bt_service_registrations", 1);
        obskit::observe("bt_register_us", dur.as_micros());
        let me = self.clone();
        sim.schedule_in(dur, move || {
            let state = me.state();
            let mut s = state.borrow_mut();
            s.services.retain(|r| r.uuid != record.uuid);
            s.services.push(record);
            drop(s);
            cb(Ok(()));
        });
    }

    /// Removes a service record immediately.
    pub fn unregister_service(&self, uuid: &str) {
        self.state().borrow_mut().services.retain(|r| r.uuid != uuid);
    }

    /// Snapshot of the local SDDB (mainly for tests and inspection).
    pub fn local_services(&self) -> Vec<ServiceRecord> {
        self.state().borrow().services.clone()
    }

    /// Runs an SDP service search against `peer` (~1.12 s).
    ///
    /// # Errors
    ///
    /// The callback receives [`BtError`] if the radio is off, busy, or the
    /// peer is out of range / unavailable at completion time.
    pub fn sdp_query(
        &self,
        peer: NodeId,
        cb: impl FnOnce(Result<Vec<ServiceRecord>, BtError>) + 'static,
    ) {
        let sim = self.medium.sim();
        if !self.is_on() {
            sim.schedule_in(SimDuration::ZERO, move || cb(Err(BtError::RadioOff)));
            return;
        }
        let params = self.medium.params();
        let dur = {
            let state = self.state();
            let mut s = state.borrow_mut();
            if s.sdp_busy {
                drop(s);
                sim.schedule_in(SimDuration::ZERO, move || cb(Err(BtError::Busy)));
                return;
            }
            s.sdp_busy = true;
            s.rng.gauss_duration(params.sdp_mean, params.sdp_std)
        };
        self.refresh_power();
        obskit::count("bt_sdp_queries", 1);
        let span = obskit::start(
            obskit::Phase::Sdp,
            &format!("bt_sdp:{}->{}", self.node, peer),
            None,
            sim.now(),
        );
        let me = self.clone();
        sim.schedule_in(dur, move || {
            me.state().borrow_mut().sdp_busy = false;
            me.refresh_power();
            obskit::end(span, me.medium.sim().now());
            let result = if !me.is_on() {
                Err(BtError::RadioOff)
            } else if !me.medium.in_range(me.node, peer) {
                Err(BtError::OutOfRange(peer))
            } else {
                match me.medium.state_of(peer) {
                    Some(p) if p.borrow().on && p.borrow().phone.is_on() => {
                        Ok(p.borrow().services.clone())
                    }
                    _ => Err(BtError::PeerUnavailable(peer)),
                }
            };
            if result.is_err() {
                obskit::count("bt_sdp_failures", 1);
            }
            cb(result);
        });
    }

    /// Opens an ACL link to `peer` (paging, ~0.6 s).
    ///
    /// # Errors
    ///
    /// The callback receives [`BtError`] if either radio is off or the
    /// peer is out of range.
    pub fn connect(&self, peer: NodeId, cb: impl FnOnce(Result<LinkId, BtError>) + 'static) {
        let sim = self.medium.sim();
        if !self.is_on() {
            sim.schedule_in(SimDuration::ZERO, move || cb(Err(BtError::RadioOff)));
            return;
        }
        let params = self.medium.params();
        let dur = {
            let state = self.state();
            let mut s = state.borrow_mut();
            s.rng.gauss_duration(params.page_mean, params.page_std)
        };
        obskit::count("bt_connects", 1);
        let span = obskit::start(
            obskit::Phase::Connect,
            &format!("bt_page:{}->{}", self.node, peer),
            None,
            sim.now(),
        );
        let me = self.clone();
        sim.schedule_in(dur, move || {
            obskit::end(span, me.medium.sim().now());
            if !me.is_on() {
                obskit::count("bt_connect_failures", 1);
                cb(Err(BtError::RadioOff));
                return;
            }
            if !me.medium.in_range(me.node, peer) {
                obskit::count("bt_connect_failures", 1);
                cb(Err(BtError::OutOfRange(peer)));
                return;
            }
            let Some(peer_state) = me.medium.state_of(peer) else {
                obskit::count("bt_connect_failures", 1);
                cb(Err(BtError::PeerUnavailable(peer)));
                return;
            };
            if !(peer_state.borrow().on && peer_state.borrow().phone.is_on()) {
                obskit::count("bt_connect_failures", 1);
                cb(Err(BtError::PeerUnavailable(peer)));
                return;
            }
            let link = me.medium.alloc_link();
            me.state().borrow_mut().links.insert(link, peer);
            peer_state.borrow_mut().links.insert(link, me.node);
            me.refresh_power();
            BtRadio {
                medium: me.medium.clone(),
                node: peer,
            }
            .refresh_power();
            let connect_handler = peer_state.borrow().on_connect.clone();
            if let Some(h) = connect_handler {
                h(link, me.node);
            }
            cb(Ok(link));
        });
    }

    /// Sends `payload` (`wire_bytes` on the air) over `link`. Delivery
    /// latency follows the segmented-packet model; both ends hold an
    /// elevated active power window sized by the payload.
    ///
    /// # Errors
    ///
    /// The callback receives [`BtError::LinkClosed`] if the link is not
    /// open locally, or [`BtError::OutOfRange`] if the peer moved away
    /// before delivery (the link is then torn down).
    pub fn send(
        &self,
        link: LinkId,
        wire_bytes: usize,
        payload: Payload,
        cb: impl FnOnce(Result<(), BtError>) + 'static,
    ) {
        let sim = self.medium.sim();
        if !self.is_on() {
            sim.schedule_in(SimDuration::ZERO, move || cb(Err(BtError::RadioOff)));
            return;
        }
        let params = self.medium.params();
        let peer = {
            let state = self.state();
            let s = state.borrow();
            match s.links.get(&link) {
                Some(&p) => p,
                None => {
                    drop(s);
                    sim.schedule_in(SimDuration::ZERO, move || cb(Err(BtError::LinkClosed(link))));
                    return;
                }
            }
        };
        let packets = params.packets_for(wire_bytes);
        let latency = {
            let state = self.state();
            let mut s = state.borrow_mut();
            let nominal = params.send_base + params.per_packet * packets as u64;
            s.rng.jitter(nominal, 0.01)
        };
        obskit::count("bt_sends", 1);
        obskit::count("bt_tx_packets", packets as u64);
        obskit::count("bt_tx_bytes", wire_bytes as u64);
        obskit::observe("bt_send_us", latency.as_micros());
        let span = obskit::start(
            obskit::Phase::Transfer,
            &format!("bt_send:{}->{}:{}B/{}pkt", self.node, peer, wire_bytes, packets),
            None,
            sim.now(),
        );
        // Open the transmit active window now.
        let window = params.active_window_base + params.active_window_per_byte * wire_bytes as u64;
        {
            let state = self.state();
            let mut s = state.borrow_mut();
            let now = sim.now();
            let start = s.tx_active_until.max(now);
            s.tx_active_until = start + window;
        }
        self.refresh_power();
        self.refresh_power_at(self.state().borrow().tx_active_until);

        let me = self.clone();
        // Cross-node delivery: tagged with the receiver's shard so the
        // event order matches the partitioned engine's merge.
        let dest_shard = self.medium.shard_of(peer);
        sim.schedule_in_sharded(dest_shard, latency, move || {
            obskit::end(span, me.medium.sim().now());
            if !me.medium.in_range(me.node, peer) {
                obskit::count("bt_send_failures", 1);
                me.teardown_link(link, peer);
                cb(Err(BtError::OutOfRange(peer)));
                return;
            }
            let Some(peer_state) = me.medium.state_of(peer) else {
                obskit::count("bt_send_failures", 1);
                cb(Err(BtError::PeerUnavailable(peer)));
                return;
            };
            let handler = {
                let mut p = peer_state.borrow_mut();
                if !(p.on && p.phone.is_on()) || !p.links.contains_key(&link) {
                    drop(p);
                    obskit::count("bt_send_failures", 1);
                    me.teardown_link(link, peer);
                    cb(Err(BtError::LinkClosed(link)));
                    return;
                }
                // Receive-side active window.
                let now = me.medium.sim().now();
                let start = p.rx_active_until.max(now);
                p.rx_active_until = start + window;
                p.on_receive.clone()
            };
            let peer_radio = BtRadio {
                medium: me.medium.clone(),
                node: peer,
            };
            peer_radio.refresh_power();
            peer_radio.refresh_power_at(peer_state.borrow().rx_active_until);
            if let Some(h) = handler {
                h(link, me.node, payload);
            }
            cb(Ok(()));
        });
    }

    /// Closes a link (both ends see the disconnect).
    pub fn disconnect(&self, link: LinkId) {
        let peer = self.state().borrow().links.get(&link).copied();
        if let Some(peer) = peer {
            self.teardown_link(link, peer);
        }
    }

    /// Simulates a spontaneous link failure (the paper saw roughly one
    /// BT-GPS disconnection per hour in the field trials).
    pub fn inject_disconnect(&self, link: LinkId) {
        self.disconnect(link);
    }

    /// Open links and their peers.
    pub fn links(&self) -> Vec<(LinkId, NodeId)> {
        self.state().borrow().links.iter().map(|(&l, &p)| (l, p)).collect()
    }

    fn teardown_link(&self, link: LinkId, peer: NodeId) {
        let removed_local = self.state().borrow_mut().links.remove(&link).is_some();
        let removed_peer = self
            .medium
            .state_of(peer)
            .map(|p| p.borrow_mut().links.remove(&link).is_some())
            .unwrap_or(false);
        if removed_local {
            self.notify_disconnect(link, peer);
            self.refresh_power();
        }
        if removed_peer {
            let peer_radio = BtRadio {
                medium: self.medium.clone(),
                node: peer,
            };
            peer_radio.notify_disconnect(link, self.node);
            peer_radio.refresh_power();
        }
    }

    fn notify_disconnect(&self, link: LinkId, peer: NodeId) {
        let handler = self.state().borrow().on_disconnect.clone();
        if let Some(h) = handler {
            h(link, peer);
        }
    }
}

impl fmt::Debug for BtRadio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BtRadio").field("node", &self.node).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Position;
    use phone::PhoneConfig;
    use std::cell::{Cell, RefCell as StdRefCell};

    struct Rig {
        sim: Sim,
        world: World,
        medium: BtMedium,
    }

    fn rig() -> Rig {
        let sim = Sim::new();
        let world = World::new(&sim);
        let medium = BtMedium::new(&sim, &world, BtParams::default());
        Rig { sim, world, medium }
    }

    fn phone_at(rig: &Rig, x: f64) -> (NodeId, Phone) {
        let node = rig.world.add_node(Position::new(x, 0.0));
        let phone = Phone::new(&rig.sim, PhoneConfig::default());
        (node, phone)
    }

    #[test]
    fn inquiry_finds_in_range_discoverable_peers() {
        let r = rig();
        let (a, pa) = phone_at(&r, 0.0);
        let (b, pb) = phone_at(&r, 5.0);
        let (c, pc) = phone_at(&r, 50.0); // out of range
        let ra = r.medium.attach(a, &pa, 1);
        let _rb = r.medium.attach(b, &pb, 2);
        let _rc = r.medium.attach(c, &pc, 3);
        let found = Rc::new(StdRefCell::new(Vec::new()));
        let f = found.clone();
        ra.inquiry(move |res| *f.borrow_mut() = res.unwrap());
        r.sim.run_until_idle();
        assert_eq!(*found.borrow(), vec![b]);
        // inquiry takes ~13 s
        let t = r.sim.now().as_secs_f64();
        assert!((12.0..14.0).contains(&t), "inquiry took {t}");
    }

    #[test]
    fn non_discoverable_peer_is_hidden() {
        let r = rig();
        let (a, pa) = phone_at(&r, 0.0);
        let (b, pb) = phone_at(&r, 5.0);
        let ra = r.medium.attach(a, &pa, 1);
        let rb = r.medium.attach(b, &pb, 2);
        rb.set_discoverable(false);
        let found = Rc::new(StdRefCell::new(vec![NodeId(999)]));
        let f = found.clone();
        ra.inquiry(move |res| *f.borrow_mut() = res.unwrap());
        r.sim.run_until_idle();
        assert!(found.borrow().is_empty());
    }

    #[test]
    fn sdp_returns_registered_services() {
        let r = rig();
        let (a, pa) = phone_at(&r, 0.0);
        let (b, pb) = phone_at(&r, 5.0);
        let ra = r.medium.attach(a, &pa, 1);
        let rb = r.medium.attach(b, &pb, 2);
        let record = ServiceRecord::new("uuid-ctx", "contory")
            .with_attribute("type", "temperature");
        rb.register_service(record.clone(), |res| res.unwrap());
        r.sim.run_until_idle();
        let t_reg = r.sim.now().as_secs_f64();
        assert!(
            (0.13..0.15).contains(&t_reg),
            "service registration took {t_reg}s, expected ~140 ms"
        );
        let got = Rc::new(StdRefCell::new(Vec::new()));
        let g = got.clone();
        ra.sdp_query(b, move |res| *g.borrow_mut() = res.unwrap());
        let t0 = r.sim.now();
        r.sim.run_until_idle();
        let sdp_secs = (r.sim.now() - t0).as_secs_f64();
        assert!((1.0..1.3).contains(&sdp_secs), "sdp took {sdp_secs}");
        assert_eq!(*got.borrow(), vec![record]);
    }

    #[test]
    fn exchange_latency_matches_table1() {
        // 205 B query + 136 B reply over an open link ≈ 31.8 ms.
        let r = rig();
        let (a, pa) = phone_at(&r, 0.0);
        let (b, pb) = phone_at(&r, 5.0);
        let ra = r.medium.attach(a, &pa, 1);
        let rb = r.medium.attach(b, &pb, 2);
        let link = Rc::new(Cell::new(None));
        let l = link.clone();
        ra.connect(b, move |res| l.set(Some(res.unwrap())));
        r.sim.run_until_idle();
        let link = link.get().unwrap();
        // echo server on b: replies with a 136-byte item
        {
            let rb2 = rb.clone();
            rb.on_receive(move |lnk, _from, _payload| {
                rb2.send(lnk, 136, Rc::new(()), |res| res.unwrap());
            });
        }
        let done_at = Rc::new(Cell::new(None));
        {
            let d = done_at.clone();
            let sim = r.sim.clone();
            ra.on_receive(move |_l, _f, _p| d.set(Some(sim.now())));
        }
        let t0 = r.sim.now();
        ra.send(link, 205, Rc::new(()), |res| res.unwrap());
        r.sim.run_until_idle();
        let rtt_ms = (done_at.get().unwrap() - t0).as_millis_f64();
        assert!(
            (30.0..34.0).contains(&rtt_ms),
            "exchange took {rtt_ms} ms, expected ~31.8"
        );
    }

    #[test]
    fn periodic_item_energy_matches_table2() {
        // Provider pushes a 136 B item; requester-side energy per item
        // should be ≈ 0.099 J (active window model).
        let r = rig();
        let (a, pa) = phone_at(&r, 0.0);
        let (b, pb) = phone_at(&r, 5.0);
        let ra = r.medium.attach(a, &pa, 1);
        let rb = r.medium.attach(b, &pb, 2);
        // Not discoverable: isolate the active-window energy from scan draw.
        ra.set_discoverable(false);
        rb.set_discoverable(false);
        let link = Rc::new(Cell::new(None));
        let l = link.clone();
        rb.connect(a, move |res| l.set(Some(res.unwrap())));
        r.sim.run_until_idle();
        let link = link.get().unwrap();
        let t0 = r.sim.now();
        let items = 10u64;
        let rb2 = rb.clone();
        let sent = Rc::new(Cell::new(0u64));
        let s = sent.clone();
        r.sim.schedule_repeating(SimDuration::from_secs(5), move || {
            rb2.send(link, 136, Rc::new(()), |_res| {});
            s.set(s.get() + 1);
            s.get() < items
        });
        r.sim.run_for(SimDuration::from_secs(60));
        let e = pa.power().energy_between(t0, r.sim.now());
        // Subtract the baseline + link idle floor to isolate per-item cost.
        let floor = (5.75 + 6.0) * 60.0 / 1000.0; // J
        let per_item = (e.as_joules() - floor) / items as f64;
        assert!(
            (0.085..0.115).contains(&per_item),
            "per-item energy {per_item} J, expected ~0.099"
        );
    }

    #[test]
    fn out_of_range_send_fails_and_disconnects() {
        let r = rig();
        let (a, pa) = phone_at(&r, 0.0);
        let (b, pb) = phone_at(&r, 5.0);
        let ra = r.medium.attach(a, &pa, 1);
        let _rb = r.medium.attach(b, &pb, 2);
        let link = Rc::new(Cell::new(None));
        let l = link.clone();
        ra.connect(b, move |res| l.set(Some(res.unwrap())));
        r.sim.run_until_idle();
        let link = link.get().unwrap();
        let dropped = Rc::new(Cell::new(false));
        let d = dropped.clone();
        ra.on_disconnect(move |_l, _p| d.set(true));
        // peer sails away
        r.world.set_position(b, Position::new(1000.0, 0.0));
        let err = Rc::new(StdRefCell::new(None));
        let e = err.clone();
        ra.send(link, 100, Rc::new(()), move |res| {
            *e.borrow_mut() = Some(res.unwrap_err())
        });
        r.sim.run_until_idle();
        assert_eq!(*err.borrow(), Some(BtError::OutOfRange(b)));
        assert!(dropped.get());
        assert!(ra.links().is_empty());
    }

    #[test]
    fn radio_off_rejects_operations() {
        let r = rig();
        let (a, pa) = phone_at(&r, 0.0);
        let ra = r.medium.attach(a, &pa, 1);
        ra.set_power(false);
        let got = Rc::new(StdRefCell::new(None));
        let g = got.clone();
        ra.inquiry(move |res| *g.borrow_mut() = Some(res));
        r.sim.run_until_idle();
        assert_eq!(*got.borrow(), Some(Err(BtError::RadioOff)));
        assert_eq!(pa.power().get(Consumer::BtRadio), Some(Milliwatts(0.0)));
    }

    #[test]
    fn concurrent_inquiry_is_busy() {
        let r = rig();
        let (a, pa) = phone_at(&r, 0.0);
        let ra = r.medium.attach(a, &pa, 1);
        ra.inquiry(|_res| {});
        let got = Rc::new(StdRefCell::new(None));
        let g = got.clone();
        ra.inquiry(move |res| *g.borrow_mut() = Some(res));
        r.sim.run_until_idle();
        assert_eq!(*got.borrow(), Some(Err(BtError::Busy)));
    }

    #[test]
    fn scan_draw_matches_paper() {
        let r = rig();
        let (a, pa) = phone_at(&r, 0.0);
        let _ra = r.medium.attach(a, &pa, 1);
        // 5.75 baseline + 2.72 scan = 8.47 mW
        assert!((pa.power().total().0 - 8.47).abs() < 1e-9);
    }

    #[test]
    fn ondemand_discovery_energy_matches_table2() {
        // inquiry (13 s @ 385 mW) + SDP (1.12 s @ 150 mW) + exchange
        // ≈ 5.27 J total on the requester.
        let r = rig();
        let (a, pa) = phone_at(&r, 0.0);
        let (b, pb) = phone_at(&r, 5.0);
        let ra = r.medium.attach(a, &pa, 1);
        let rb = r.medium.attach(b, &pb, 2);
        ra.set_discoverable(false); // requester needn't answer scans
        rb.register_service(ServiceRecord::new("uuid-ctx", "contory"), |_res| {});
        r.sim.run_until_idle();
        let t0 = r.sim.now();
        let ra2 = ra.clone();
        let ra3 = ra.clone();
        let rb2 = rb.clone();
        ra.inquiry(move |res| {
            let peer = res.unwrap()[0];
            ra2.sdp_query(peer, move |recs| {
                assert_eq!(recs.unwrap().len(), 1);
                let ra4 = ra3.clone();
                ra3.connect(peer, move |link| {
                    let link = link.unwrap();
                    rb2.on_receive({
                        let rb3 = rb2.clone();
                        move |l, _f, _p| rb3.send(l, 136, Rc::new(()), |_res| {})
                    });
                    ra4.send(link, 205, Rc::new(()), |_res| {});
                });
            });
        });
        r.sim.run_until_idle();
        let e = pa.power().energy_between(t0, r.sim.now());
        let elapsed = (r.sim.now() - t0).as_secs_f64();
        let baseline = 5.75 * elapsed / 1000.0;
        let op = e.as_joules() - baseline;
        assert!(
            (4.7..5.9).contains(&op),
            "on-demand discovery+get cost {op} J, expected ~5.27"
        );
    }
}
