//! 802.11b ad hoc (IBSS) WiFi model.
//!
//! The paper's WiFi findings are dominated by one fact: *having WiFi
//! connected at full signal drains a constant ≈ 300 mA* (≈ 1190 mW with
//! the back-light on) — more than 100× BT's inquiry-scan draw. Latency of
//! a one-hop transfer is, by contrast, cheap; multi-hop cost comes from
//! the Smart Messages platform built on top (see `contory-smartmsg`).
//!
//! The model also reproduces the measurement artefact the paper hit:
//! WiFi startup draws a large in-rush current, and with a multimeter's
//! shunt in series the supply sags below the battery protection threshold,
//! switching the communicator off within ~30 s (hence Table 2's `>`
//! lower bounds for the WiFi rows).

use crate::world::{NodeId, World};
use phone::{Consumer, Milliwatts, Phone, PowerModel};
use simkit::{DetRng, ShardId, Sim, SimDuration, SimTime};
use std::any::Any;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Opaque application payload (wire size passed separately).
pub type Payload = Rc<dyn Any>;

/// Errors surfaced by WiFi operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WifiError {
    /// The local radio is off (or the phone is off).
    RadioOff,
    /// The destination is not reachable in one hop right now.
    Unreachable(NodeId),
}

impl fmt::Display for WifiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WifiError::RadioOff => write!(f, "wifi radio is off"),
            WifiError::Unreachable(n) => write!(f, "{n} unreachable over wifi"),
        }
    }
}

impl Error for WifiError {}

/// Calibration constants for the WiFi model.
#[derive(Clone, Debug)]
pub struct WifiParams {
    /// Usable ad hoc range in metres.
    pub range_m: f64,
    /// Time from power-on to a usable IBSS join.
    pub join_duration: SimDuration,
    /// Steady connected draw. 1190 mW total with back-light (76.20 mW)
    /// on: 1113.8 mW for the radio itself.
    pub connected_mw: f64,
    /// In-rush draw during the startup phase.
    pub inrush_mw: f64,
    /// How long the startup phase (at in-rush draw) lasts. Long enough
    /// that a metered phone browns out first, as observed in the paper.
    pub inrush_duration: SimDuration,
    /// Fixed per-send MAC/queueing latency.
    pub send_base: SimDuration,
    /// Effective application-level throughput in bytes/second. J2ME-era
    /// TCP on these communicators was slow; ~26 KB/s makes the SM transfer
    /// component match the paper's break-up.
    pub throughput_bps: f64,
}

impl Default for WifiParams {
    fn default() -> Self {
        WifiParams {
            range_m: 100.0,
            join_duration: SimDuration::from_millis(1_500),
            connected_mw: 1190.0 - 76.20,
            inrush_mw: 2500.0,
            inrush_duration: SimDuration::from_secs(28),
            send_base: SimDuration::from_micros(2_000),
            throughput_bps: 26_600.0,
        }
    }
}

impl WifiParams {
    /// Transfer airtime for a payload of `bytes`.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        self.send_base + SimDuration::from_secs_f64(bytes as f64 / self.throughput_bps)
    }
}

type ReceiveHandler = Rc<dyn Fn(NodeId, Payload)>;

struct RadioState {
    on: bool,
    joined: bool,
    powered_since: SimTime,
    on_receive: Option<ReceiveHandler>,
    power: PowerModel,
    phone: Phone,
    rng: DetRng,
}

struct MediumInner {
    sim: Sim,
    world: World,
    params: WifiParams,
    radios: BTreeMap<NodeId, Rc<RefCell<RadioState>>>,
}

/// The shared ad hoc WiFi medium.
#[derive(Clone)]
pub struct WifiMedium {
    inner: Rc<RefCell<MediumInner>>,
}

impl WifiMedium {
    /// Creates a medium over a world.
    pub fn new(sim: &Sim, world: &World, params: WifiParams) -> Self {
        WifiMedium {
            inner: Rc::new(RefCell::new(MediumInner {
                sim: sim.clone(),
                world: world.clone(),
                params,
                radios: BTreeMap::new(),
            })),
        }
    }

    /// Attaches a WiFi radio to `node` (starts powered *off* — WiFi is too
    /// expensive to leave on).
    ///
    /// # Panics
    ///
    /// Panics if the node already has a WiFi radio.
    pub fn attach(&self, node: NodeId, phone: &Phone, seed: u64) -> WifiRadio {
        let state = Rc::new(RefCell::new(RadioState {
            on: false,
            joined: false,
            powered_since: SimTime::ZERO,
            on_receive: None,
            power: phone.power().clone(),
            phone: phone.clone(),
            rng: DetRng::new(seed),
        }));
        let mut inner = self.inner.borrow_mut();
        let prev = inner.radios.insert(node, state);
        assert!(prev.is_none(), "{node} already has a WiFi radio");
        WifiRadio {
            medium: self.clone(),
            node,
        }
    }

    fn sim(&self) -> Sim {
        self.inner.borrow().sim.clone()
    }

    fn params(&self) -> WifiParams {
        self.inner.borrow().params.clone()
    }

    fn state_of(&self, node: NodeId) -> Option<Rc<RefCell<RadioState>>> {
        self.inner.borrow().radios.get(&node).cloned()
    }

    /// The shard the node's receive side lives on (from the world's
    /// partition assignment) — the ordering tag of deliveries to it.
    fn shard_of(&self, node: NodeId) -> ShardId {
        self.inner.borrow().world.shard_of(node)
    }

    fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        let inner = self.inner.borrow();
        inner.world.in_range(a, b, inner.params.range_m)
    }

    /// Nodes with a joined radio in range of `of` (ad hoc beacon view).
    pub fn joined_neighbors(&self, of: NodeId) -> Vec<NodeId> {
        let (world, range) = {
            let inner = self.inner.borrow();
            (inner.world.clone(), inner.params.range_m)
        };
        let neighbors = world.neighbors(of, range);
        let inner = self.inner.borrow();
        neighbors
            .into_iter()
            .filter(|n| {
                inner.radios.get(n).is_some_and(|r| {
                    let r = r.borrow();
                    r.on && r.joined && r.phone.is_on()
                })
            })
            .collect()
    }
}

impl fmt::Debug for WifiMedium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WifiMedium")
            .field("radios", &self.inner.borrow().radios.len())
            .finish()
    }
}

/// One node's WiFi radio. Cloneable handle.
#[derive(Clone)]
pub struct WifiRadio {
    medium: WifiMedium,
    node: NodeId,
}

impl WifiRadio {
    /// The node this radio belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn state(&self) -> Rc<RefCell<RadioState>> {
        self.medium
            .state_of(self.node)
            // Attach is the only constructor, radios are never detached:
            // an absent entry is unreachable by construction.
            .expect("radio detached from medium") // lint:allow(panic-reachable) attach-time invariant
    }

    /// True if the radio is on, joined to the IBSS, and the phone is up.
    pub fn is_joined(&self) -> bool {
        let state = self.state();
        let s = state.borrow();
        s.on && s.joined && s.phone.is_on()
    }

    /// Powers the radio on. `cb` fires once the ad hoc network is joined
    /// (~1.5 s). Draw goes to in-rush level immediately, dropping to the
    /// steady connected draw after the startup phase — unless the battery
    /// protection circuit kills the phone first (metered runs).
    pub fn power_on(&self, cb: impl FnOnce() + 'static) {
        let sim = self.medium.sim();
        let params = self.medium.params();
        {
            let state = self.state();
            let mut s = state.borrow_mut();
            if s.on {
                drop(s);
                sim.schedule_in(SimDuration::ZERO, cb);
                return;
            }
            s.on = true;
            s.powered_since = sim.now();
            s.power
                .set(Consumer::WifiRadio, Milliwatts(params.inrush_mw));
        }
        let me = self.clone();
        let join_jitter = {
            let state = self.state();
            let mut s = state.borrow_mut();
            s.rng.jitter(params.join_duration, 0.1)
        };
        obskit::count("wifi_power_ons", 1);
        let span = obskit::start(
            obskit::Phase::Connect,
            &format!("wifi_join:{}", self.node),
            None,
            sim.now(),
        );
        sim.schedule_in(join_jitter, move || {
            obskit::end(span, me.medium.sim().now());
            let state = me.state();
            let mut s = state.borrow_mut();
            if s.on && s.phone.is_on() {
                s.joined = true;
                drop(s);
                cb();
            }
        });
        let me2 = self.clone();
        let since = self.state().borrow().powered_since;
        sim.schedule_in(params.inrush_duration, move || {
            let state = me2.state();
            let s = state.borrow();
            // Still the same power-on session, still on, phone survived.
            if s.on && s.powered_since == since && s.phone.is_on() {
                s.power
                    .set(Consumer::WifiRadio, Milliwatts(params.connected_mw));
            }
        });
    }

    /// Powers the radio off immediately.
    pub fn power_off(&self) {
        let state = self.state();
        let mut s = state.borrow_mut();
        s.on = false;
        s.joined = false;
        s.power.set(Consumer::WifiRadio, Milliwatts::ZERO);
    }

    /// Installs the receive handler: `(from, payload)`.
    pub fn on_receive(&self, f: impl Fn(NodeId, Payload) + 'static) {
        self.state().borrow_mut().on_receive = Some(Rc::new(f));
    }

    /// Joined neighbors visible right now.
    pub fn neighbors(&self) -> Vec<NodeId> {
        if !self.is_joined() {
            return Vec::new();
        }
        self.medium.joined_neighbors(self.node)
    }

    /// Sends `payload` (`wire_bytes` on the air) to a one-hop neighbor.
    ///
    /// # Errors
    ///
    /// The callback receives [`WifiError::RadioOff`] if this radio is not
    /// joined, or [`WifiError::Unreachable`] if `dst` is not a joined
    /// neighbor when the frame would arrive.
    pub fn send(
        &self,
        dst: NodeId,
        wire_bytes: usize,
        payload: Payload,
        cb: impl FnOnce(Result<(), WifiError>) + 'static,
    ) {
        let sim = self.medium.sim();
        if !self.is_joined() {
            sim.schedule_in(SimDuration::ZERO, move || cb(Err(WifiError::RadioOff)));
            return;
        }
        let params = self.medium.params();
        let latency = {
            let state = self.state();
            let mut s = state.borrow_mut();
            s.rng.jitter(params.transfer_time(wire_bytes), 0.02)
        };
        obskit::count("wifi_hops", 1);
        obskit::count("wifi_tx_bytes", wire_bytes as u64);
        obskit::observe("wifi_hop_us", latency.as_micros());
        let span = obskit::start(
            obskit::Phase::Transfer,
            &format!("wifi_hop:{}->{}:{}B", self.node, dst, wire_bytes),
            None,
            sim.now(),
        );
        let me = self.clone();
        // Cross-node delivery: tagged with the receiver's shard so the
        // event order matches the partitioned engine's merge.
        let dest_shard = self.medium.shard_of(dst);
        sim.schedule_in_sharded(dest_shard, latency, move || {
            obskit::end(span, me.medium.sim().now());
            if !me.is_joined() {
                obskit::count("wifi_hop_failures", 1);
                cb(Err(WifiError::RadioOff));
                return;
            }
            if !me.medium.in_range(me.node, dst) {
                obskit::count("wifi_hop_failures", 1);
                cb(Err(WifiError::Unreachable(dst)));
                return;
            }
            let Some(peer) = me.medium.state_of(dst) else {
                obskit::count("wifi_hop_failures", 1);
                cb(Err(WifiError::Unreachable(dst)));
                return;
            };
            let handler = {
                let p = peer.borrow();
                if !(p.on && p.joined && p.phone.is_on()) {
                    drop(p);
                    obskit::count("wifi_hop_failures", 1);
                    cb(Err(WifiError::Unreachable(dst)));
                    return;
                }
                p.on_receive.clone()
            };
            if let Some(h) = handler {
                h(me.node, payload);
            }
            cb(Ok(()));
        });
    }
}

impl fmt::Debug for WifiRadio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WifiRadio")
            .field("node", &self.node)
            .field("joined", &self.is_joined())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Position;
    use phone::{PhoneConfig, PhoneModel};
    use std::cell::Cell;

    struct Rig {
        sim: Sim,
        world: World,
        medium: WifiMedium,
    }

    fn rig() -> Rig {
        let sim = Sim::new();
        let world = World::new(&sim);
        let medium = WifiMedium::new(&sim, &world, WifiParams::default());
        Rig { sim, world, medium }
    }

    fn communicator(rig: &Rig, x: f64, metered: bool) -> (NodeId, Phone, WifiRadio) {
        let node = rig.world.add_node(Position::new(x, 0.0));
        let cfg = if metered {
            PhoneConfig::measurement(PhoneModel::Nokia9500)
        } else {
            PhoneConfig {
                model: PhoneModel::Nokia9500,
                ..PhoneConfig::default()
            }
        };
        let phone = Phone::new(&rig.sim, cfg);
        let radio = rig.medium.attach(node, &phone, node.0 as u64 + 1);
        (node, phone, radio)
    }

    #[test]
    fn join_then_steady_draw_matches_paper() {
        let r = rig();
        let (_, phone, radio) = communicator(&r, 0.0, false);
        phone.set_backlight(true); // the paper's WiFi runs kept it on
        let joined = Rc::new(Cell::new(false));
        let j = joined.clone();
        radio.power_on(move || j.set(true));
        r.sim.run_for(SimDuration::from_secs(2));
        assert!(joined.get());
        r.sim.run_for(SimDuration::from_secs(30));
        // steady: 1113.8 radio + 76.20 backlight-on baseline = 1190 mW
        assert!(
            (phone.power().total().0 - 1190.0).abs() < 1e-6,
            "total {}",
            phone.power().total()
        );
    }

    #[test]
    fn metered_phone_browns_out_within_30s_of_wifi_on() {
        let r = rig();
        let (_, phone, radio) = communicator(&r, 0.0, true);
        radio.power_on(|| {});
        r.sim.run_for(SimDuration::from_secs(30));
        assert!(!phone.is_on(), "paper: communicator switched off < 30 s");
    }

    #[test]
    fn unmetered_phone_survives_wifi() {
        let r = rig();
        let (_, phone, radio) = communicator(&r, 0.0, false);
        radio.power_on(|| {});
        r.sim.run_for(SimDuration::from_secs(60));
        assert!(phone.is_on());
    }

    #[test]
    fn one_hop_send_delivers_with_transfer_latency() {
        let r = rig();
        let (_, _pa, ra) = communicator(&r, 0.0, false);
        let (b, _pb, rb) = communicator(&r, 50.0, false);
        ra.power_on(|| {});
        rb.power_on(|| {});
        r.sim.run_for(SimDuration::from_secs(40));
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        rb.on_receive(move |_from, _p| g.set(true));
        let t0 = r.sim.now();
        ra.send(b, 10_240, Rc::new(()), |res| res.unwrap());
        r.sim.run_until_idle();
        assert!(got.get());
        let ms = (r.sim.now() - t0).as_millis_f64();
        // ~10 KB at ~26.6 KB/s ≈ 385 ms
        assert!((350.0..430.0).contains(&ms), "transfer took {ms} ms");
    }

    #[test]
    fn out_of_range_send_fails() {
        let r = rig();
        let (_, _pa, ra) = communicator(&r, 0.0, false);
        let (b, _pb, rb) = communicator(&r, 500.0, false);
        ra.power_on(|| {});
        rb.power_on(|| {});
        r.sim.run_for(SimDuration::from_secs(40));
        let err = Rc::new(Cell::new(None));
        let e = err.clone();
        ra.send(b, 100, Rc::new(()), move |res| e.set(Some(res.unwrap_err())));
        r.sim.run_until_idle();
        assert_eq!(err.take(), Some(WifiError::Unreachable(b)));
    }

    #[test]
    fn radio_off_rejects_send_and_hides_from_neighbors() {
        let r = rig();
        let (_, _pa, ra) = communicator(&r, 0.0, false);
        let (b, _pb, rb) = communicator(&r, 50.0, false);
        ra.power_on(|| {});
        rb.power_on(|| {});
        r.sim.run_for(SimDuration::from_secs(40));
        assert_eq!(ra.neighbors(), vec![b]);
        rb.power_off();
        assert!(ra.neighbors().is_empty());
        rb.send(ra.node(), 10, Rc::new(()), |res| {
            assert_eq!(res.unwrap_err(), WifiError::RadioOff);
        });
        r.sim.run_until_idle();
    }

    #[test]
    fn energy_of_one_hop_periodic_item_is_latency_times_power() {
        // Table 2: WiFi 1-hop periodic getCxtItem > 0.906 J — which is the
        // 761 ms 1-hop latency at the 1190 mW connected draw.
        let p = WifiParams::default();
        let e_joules: f64 = 0.761 * 1.190;
        assert!((e_joules - 0.906).abs() < 0.01);
        // and 2 hops doubles it: 1422.5 ms * 1.19 W ≈ 1.693 J
        assert!((1.4225_f64 * 1.190 - 1.693).abs() < 0.01);
        let _ = p;
    }
}
