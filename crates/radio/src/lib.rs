//! # contory-radio
//!
//! Simulated radio substrates for the Contory reproduction: Bluetooth,
//! 802.11b ad hoc WiFi and 2G/3G cellular, plus the spatial world model
//! (node positions and mobility) they share.
//!
//! Each radio couples a *latency model* (what Table 1 of the paper
//! measures) with a *power model* (what Table 2 measures): state changes
//! update the owning phone's [`phone::PowerModel`], so energy per
//! operation falls out of the same mechanism the paper used — integrating
//! the supply current over time.
//!
//! Calibration constants live in each module's `*Params` struct, with
//! defaults tuned against the paper's measurements:
//!
//! - BT inquiry ≈ 13 s, SDP ≈ 1.12 s, one-hop item exchange ≈ 31.8 ms,
//!   service registration ≈ 140.4 ms, idle scan draw 2.72 mW.
//! - WiFi connected drains a constant ≈ 300 mA (1190 mW with back-light),
//!   with an in-rush at startup that trips the battery-protection circuit
//!   when a multimeter's shunt is in series (the paper's Table 2 `>` rows).
//! - UMTS: high, heavy-tailed latency (703–2766 ms observed), ~1000 mW
//!   while active, expensive connection setup and energy tail, and
//!   450–481 mW GSM paging peaks every 50–60 s while idle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bt;
pub mod cell;
pub mod wifi;
mod world;

pub use world::{NodeId, Position, Region, World};
