//! 2G/3G cellular model (GPRS/UMTS).
//!
//! Reproduces the extInfra numbers of the paper:
//!
//! - **Latency** is high and heavily variable: publishing an event over
//!   UMTS averaged 772.7 ms with a 158.9 ms confidence half-width, and a
//!   full request/response averaged 1473 ms ranging 703–2766 ms. We model
//!   uplink and downlink legs as log-normal draws.
//! - **Energy**: opening the UMTS connection pushes the radio to
//!   ≈ 1000 mW, and the radio lingers in high-power states (DCH, then
//!   FACH) long after the transfer — which is why one on-demand item costs
//!   14.076 J (Table 2) and why batching items amortizes so well.
//! - **GSM idle**: with the radio on, paging peaks of 450–481 mW appear
//!   every 50–60 s (visible in paper Fig. 4 between queries).
//! - The paper also observed phones switching off during 2G/3G handover
//!   with an active UMTS connection; [`CellModem::trigger_handover`]
//!   injects that fault.

use crate::world::NodeId;
use phone::{Consumer, Milliwatts, Phone, PowerModel};
use simkit::{DetRng, ShardId, Sim, SimDuration, SimTime};
use std::any::Any;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Opaque application payload (wire size passed separately).
pub type Payload = Rc<dyn Any>;

/// Errors surfaced by cellular operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellError {
    /// The GSM radio is off (or the phone is off).
    RadioOff,
    /// The phone dropped mid-transfer (e.g. handover bug).
    Dropped,
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::RadioOff => write!(f, "cellular radio is off"),
            CellError::Dropped => write!(f, "connection dropped"),
        }
    }
}

impl Error for CellError {}

/// Network mode the phone is camped on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CellMode {
    /// 2G only (the paper's workaround for the handover switch-off bug).
    TwoG,
    /// Dual 2G/3G (default; vulnerable to the handover bug).
    #[default]
    Dual,
}

/// Calibration constants for the cellular model.
#[derive(Clone, Debug)]
pub struct CellParams {
    /// Median uplink latency for an event-sized message (log-normal).
    pub uplink_median: SimDuration,
    /// Log-normal sigma of the uplink latency.
    pub uplink_sigma: f64,
    /// Median downlink latency.
    pub downlink_median: SimDuration,
    /// Log-normal sigma of the downlink latency.
    pub downlink_sigma: f64,
    /// Extra latency per kilobyte beyond the first (events are ~1.7 KB;
    /// larger batches pay this).
    pub per_extra_kb: SimDuration,
    /// Draw while a transfer is in flight (connection open, ~1000 mW).
    pub dch_mw: f64,
    /// How long the radio holds DCH after the last transfer.
    pub dch_tail: SimDuration,
    /// Draw during the DCH tail.
    pub dch_tail_mw: f64,
    /// How long the radio then lingers in FACH.
    pub fach_tail: SimDuration,
    /// Draw during the FACH tail.
    pub fach_mw: f64,
    /// GSM paging spike draw range (450–481 mW in Fig. 4).
    pub paging_mw: (f64, f64),
    /// Paging spike duration.
    pub paging_duration: SimDuration,
    /// Paging interval range (every 50–60 s in Fig. 4).
    pub paging_interval: (SimDuration, SimDuration),
}

impl Default for CellParams {
    fn default() -> Self {
        CellParams {
            uplink_median: SimDuration::from_millis(740),
            uplink_sigma: 0.30,
            downlink_median: SimDuration::from_millis(650),
            downlink_sigma: 0.35,
            per_extra_kb: SimDuration::from_millis(60),
            dch_mw: 1000.0,
            dch_tail: SimDuration::from_millis(7_000),
            dch_tail_mw: 950.0,
            fach_tail: SimDuration::from_millis(13_000),
            fach_mw: 460.0,
            paging_mw: (450.0, 481.0),
            paging_duration: SimDuration::from_millis(300),
            paging_interval: (SimDuration::from_secs(50), SimDuration::from_secs(60)),
        }
    }
}

type UplinkHandler = Rc<dyn Fn(NodeId, Payload)>;
type DownlinkHandler = Rc<dyn Fn(Payload)>;

struct ModemState {
    radio_on: bool,
    mode: CellMode,
    transfers_in_flight: u32,
    dch_until: SimTime,
    fach_until: SimTime,
    paging_spike_until: SimTime,
    on_receive: Option<DownlinkHandler>,
    power: PowerModel,
    phone: Phone,
    rng: DetRng,
    /// Partition the modem's receive side lives on; downlink deliveries
    /// carry this as their ordering tag. Shard 0 unless assigned.
    shard: ShardId,
}

impl ModemState {
    fn current_draw(&self, params: &CellParams, now: SimTime) -> f64 {
        if !self.radio_on || !self.phone.is_on() {
            return 0.0;
        }
        let mut draw: f64 = 0.0;
        if self.paging_spike_until > now {
            draw = draw.max(self.rng_free_paging_mw(params));
        }
        if self.fach_until > now {
            draw = draw.max(params.fach_mw);
        }
        if self.dch_until > now {
            draw = draw.max(params.dch_tail_mw);
        }
        if self.transfers_in_flight > 0 {
            draw = draw.max(params.dch_mw);
        }
        draw
    }

    /// Paging spikes draw somewhere in the 450–481 mW band; to keep
    /// `current_draw` pure we take the midpoint here — the actual spike
    /// amplitude is drawn when the spike is scheduled.
    fn rng_free_paging_mw(&self, params: &CellParams) -> f64 {
        (params.paging_mw.0 + params.paging_mw.1) / 2.0
    }
}

struct NetworkInner {
    sim: Sim,
    params: CellParams,
    modems: BTreeMap<NodeId, Rc<RefCell<ModemState>>>,
    uplink_handler: Option<UplinkHandler>,
    server_rng: DetRng,
    /// Partition the fixed-side endpoint lives on; uplink deliveries
    /// carry this as their ordering tag. Shard 0 unless assigned.
    server_shard: ShardId,
}

/// The operator network plus the fixed-side endpoint (where the context
/// infrastructure lives).
#[derive(Clone)]
pub struct CellNetwork {
    inner: Rc<RefCell<NetworkInner>>,
}

impl CellNetwork {
    /// Creates a network.
    pub fn new(sim: &Sim, params: CellParams, seed: u64) -> Self {
        CellNetwork {
            inner: Rc::new(RefCell::new(NetworkInner {
                sim: sim.clone(),
                params,
                modems: BTreeMap::new(),
                uplink_handler: None,
                server_rng: DetRng::new(seed),
                server_shard: ShardId::ZERO,
            })),
        }
    }

    /// Attaches a modem to `node`, radio initially off.
    ///
    /// # Panics
    ///
    /// Panics if the node already has a modem.
    pub fn attach(&self, node: NodeId, phone: &Phone, seed: u64) -> CellModem {
        let state = Rc::new(RefCell::new(ModemState {
            radio_on: false,
            mode: CellMode::default(),
            transfers_in_flight: 0,
            dch_until: SimTime::ZERO,
            fach_until: SimTime::ZERO,
            paging_spike_until: SimTime::ZERO,
            on_receive: None,
            power: phone.power().clone(),
            phone: phone.clone(),
            rng: DetRng::new(seed),
            shard: ShardId::ZERO,
        }));
        let mut inner = self.inner.borrow_mut();
        let prev = inner.modems.insert(node, state);
        assert!(prev.is_none(), "{node} already has a modem");
        CellModem {
            network: self.clone(),
            node,
        }
    }

    /// Installs the fixed-side handler receiving every uplink message.
    pub fn on_uplink(&self, f: impl Fn(NodeId, Payload) + 'static) {
        self.inner.borrow_mut().uplink_handler = Some(Rc::new(f));
    }

    /// Assigns the fixed-side endpoint (uplink receiver) to a shard of
    /// the partitioned engine. Shard 0 unless assigned.
    pub fn set_server_shard(&self, shard: ShardId) {
        self.inner.borrow_mut().server_shard = shard;
    }

    fn server_shard(&self) -> ShardId {
        self.inner.borrow().server_shard
    }

    /// Sends `payload` down to a phone. Latency follows the downlink
    /// model; the phone's radio enters DCH for the delivery. Silently
    /// dropped if the phone's radio is off when the message would arrive
    /// (like a real push over a dead bearer).
    pub fn send_downlink(&self, node: NodeId, wire_bytes: usize, payload: Payload) {
        let (sim, latency) = {
            let mut inner = self.inner.borrow_mut();
            let params = inner.params.clone();
            let lat = draw_leg_latency(
                &mut inner.server_rng,
                params.downlink_median,
                params.downlink_sigma,
                params.per_extra_kb,
                wire_bytes,
            );
            (inner.sim.clone(), lat)
        };
        obskit::count("cell_downlinks", 1);
        obskit::count("cell_downlink_bytes", wire_bytes as u64);
        obskit::observe("cell_downlink_us", latency.as_micros());
        let span = obskit::start(
            obskit::Phase::Transfer,
            &format!("cell_downlink:{node}:{wire_bytes}B"),
            None,
            sim.now(),
        );
        let net = self.clone();
        // Cross-node delivery: tagged with the destination modem's shard
        // so the event order matches the partitioned engine's merge.
        let dest_shard = self.shard_of(node);
        sim.schedule_in_sharded(dest_shard, latency, move || {
            obskit::end(span, net.sim().now());
            let Some(state) = net.state_of(node) else {
                return;
            };
            let handler = {
                let s = state.borrow();
                if !(s.radio_on && s.phone.is_on()) {
                    return;
                }
                s.on_receive.clone()
            };
            let modem = CellModem {
                network: net.clone(),
                node,
            };
            modem.open_activity_window();
            if let Some(h) = handler {
                h(payload);
            }
        });
    }

    fn sim(&self) -> Sim {
        self.inner.borrow().sim.clone()
    }

    fn params(&self) -> CellParams {
        self.inner.borrow().params.clone()
    }

    fn state_of(&self, node: NodeId) -> Option<Rc<RefCell<ModemState>>> {
        self.inner.borrow().modems.get(&node).cloned()
    }

    /// The shard a node's modem receive side lives on (shard 0 when the
    /// node has no modem or was never assigned).
    fn shard_of(&self, node: NodeId) -> ShardId {
        self.inner
            .borrow()
            .modems
            .get(&node)
            .map_or(ShardId::ZERO, |m| m.borrow().shard)
    }
}

impl fmt::Debug for CellNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CellNetwork")
            .field("modems", &self.inner.borrow().modems.len())
            .finish()
    }
}

fn draw_leg_latency(
    rng: &mut DetRng,
    median: SimDuration,
    sigma: f64,
    per_extra_kb: SimDuration,
    wire_bytes: usize,
) -> SimDuration {
    let base = rng.lognormal(median.as_secs_f64(), sigma);
    let extra_kb = (wire_bytes.saturating_sub(1_700)) as f64 / 1024.0;
    SimDuration::from_secs_f64(base) + per_extra_kb * extra_kb
}

/// One phone's cellular modem. Cloneable handle.
#[derive(Clone)]
pub struct CellModem {
    network: CellNetwork,
    node: NodeId,
}

impl CellModem {
    /// The node this modem belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Assigns the modem's receive side to a shard of the partitioned
    /// engine; downlink deliveries to it carry the shard as their
    /// ordering tag. Shard 0 unless assigned.
    pub fn set_shard(&self, shard: ShardId) {
        self.state().borrow_mut().shard = shard;
    }

    /// The shard the modem's receive side is assigned to.
    pub fn shard(&self) -> ShardId {
        self.state().borrow().shard
    }

    fn state(&self) -> Rc<RefCell<ModemState>> {
        self.network
            .state_of(self.node)
            // Attach is the only constructor, modems are never detached:
            // an absent entry is unreachable by construction.
            .expect("modem detached from network") // lint:allow(panic-reachable) attach-time invariant
    }

    fn refresh_power(&self) {
        let params = self.network.params();
        let now = self.network.sim().now();
        let state = self.state();
        let (draw, power) = {
            let s = state.borrow();
            (s.current_draw(&params, now), s.power.clone())
        };
        power.set(Consumer::CellRadio, Milliwatts(draw));
    }

    fn refresh_power_at(&self, t: SimTime) {
        let me = self.clone();
        self.network.sim().schedule_at(t, move || me.refresh_power());
    }

    /// Turns the GSM radio on or off. While on (and idle) the periodic
    /// paging spikes of Fig. 4 appear in the power trace.
    pub fn set_radio(&self, on: bool) {
        {
            let state = self.state();
            let mut s = state.borrow_mut();
            s.radio_on = on;
            if !on {
                s.transfers_in_flight = 0;
                s.dch_until = SimTime::ZERO;
                s.fach_until = SimTime::ZERO;
                s.paging_spike_until = SimTime::ZERO;
            }
        }
        self.refresh_power();
        if on {
            self.schedule_next_paging();
        }
    }

    /// True if the radio is on and the phone is up.
    pub fn is_on(&self) -> bool {
        let state = self.state();
        let s = state.borrow();
        s.radio_on && s.phone.is_on()
    }

    /// Selects 2G-only or dual mode.
    pub fn set_mode(&self, mode: CellMode) {
        self.state().borrow_mut().mode = mode;
    }

    /// Current network mode.
    pub fn mode(&self) -> CellMode {
        self.state().borrow().mode
    }

    /// Installs the downlink receive handler.
    pub fn on_receive(&self, f: impl Fn(Payload) + 'static) {
        self.state().borrow_mut().on_receive = Some(Rc::new(f));
    }

    fn schedule_next_paging(&self) {
        let params = self.network.params();
        let (interval, spike_mw) = {
            let state = self.state();
            let mut s = state.borrow_mut();
            if !s.radio_on {
                return;
            }
            let lo = params.paging_interval.0.as_secs_f64();
            let hi = params.paging_interval.1.as_secs_f64();
            let interval = SimDuration::from_secs_f64(s.rng.range_f64(lo, hi));
            let spike = s.rng.range_f64(params.paging_mw.0, params.paging_mw.1);
            (interval, spike)
        };
        let me = self.clone();
        self.network.sim().schedule_in(interval, move || {
            let params = me.network.params();
            let busy = {
                let state = me.state();
                let s = state.borrow();
                if !(s.radio_on && s.phone.is_on()) {
                    return; // stop the paging loop; restarted by set_radio
                }
                s.transfers_in_flight > 0 || s.dch_until > me.network.sim().now()
            };
            if !busy {
                let until = me.network.sim().now() + params.paging_duration;
                me.state().borrow_mut().paging_spike_until = until;
                // Record the actual spike amplitude directly.
                let power = me.state().borrow().power.clone();
                power.set(Consumer::CellRadio, Milliwatts(spike_mw));
                me.refresh_power_at(until);
            }
            me.schedule_next_paging();
        });
    }

    /// Opens (or extends) the DCH/FACH activity window around a transfer.
    /// This is the RRC-like state transition the energy model hinges on:
    /// DCH tail, then FACH tail, then idle.
    fn open_activity_window(&self) {
        let params = self.network.params();
        let now = self.network.sim().now();
        let was_open = {
            let state = self.state();
            let s = state.borrow();
            s.fach_until > now
        };
        let (dch_until, fach_until) = {
            let state = self.state();
            let mut s = state.borrow_mut();
            s.dch_until = now + params.dch_tail;
            s.fach_until = s.dch_until + params.fach_tail;
            (s.dch_until, s.fach_until)
        };
        obskit::count(
            if was_open {
                "cell_rrc_extensions"
            } else {
                "cell_rrc_promotions"
            },
            1,
        );
        obskit::event(
            obskit::Phase::Rrc,
            &format!("dch:{}", self.node),
            None,
            now,
        );
        obskit::gauge(
            "cell_rrc_tail_s",
            fach_until.since(now).as_secs_f64(),
        );
        self.refresh_power();
        self.refresh_power_at(dch_until);
        self.refresh_power_at(fach_until);
    }

    /// Sends an event-encapsulated message up to the infrastructure.
    /// The callback fires when the fixed side has received it (one uplink
    /// leg, Table 1's `publishCxtItem` over UMTS).
    ///
    /// # Errors
    ///
    /// The callback receives [`CellError::RadioOff`] if the radio is off,
    /// or [`CellError::Dropped`] if the phone dies mid-transfer.
    pub fn send_event(
        &self,
        wire_bytes: usize,
        payload: Payload,
        cb: impl FnOnce(Result<(), CellError>) + 'static,
    ) {
        let sim = self.network.sim();
        if !self.is_on() {
            sim.schedule_in(SimDuration::ZERO, move || cb(Err(CellError::RadioOff)));
            return;
        }
        let params = self.network.params();
        let latency = {
            let state = self.state();
            let mut s = state.borrow_mut();
            s.transfers_in_flight += 1;
            draw_leg_latency(
                &mut s.rng,
                params.uplink_median,
                params.uplink_sigma,
                params.per_extra_kb,
                wire_bytes,
            )
        };
        self.refresh_power();
        obskit::count("cell_uplinks", 1);
        obskit::count("cell_uplink_bytes", wire_bytes as u64);
        obskit::observe("cell_uplink_us", latency.as_micros());
        let span = obskit::start(
            obskit::Phase::Transfer,
            &format!("cell_uplink:{}:{}B", self.node, wire_bytes),
            None,
            sim.now(),
        );
        let me = self.clone();
        // Delivery at the fixed side: tagged with the server's shard so
        // the event order matches the partitioned engine's merge.
        let dest_shard = self.network.server_shard();
        sim.schedule_in_sharded(dest_shard, latency, move || {
            obskit::end(span, me.network.sim().now());
            {
                let state = me.state();
                let mut s = state.borrow_mut();
                s.transfers_in_flight = s.transfers_in_flight.saturating_sub(1);
            }
            me.open_activity_window();
            if !me.is_on() {
                obskit::count("cell_uplink_failures", 1);
                cb(Err(CellError::Dropped));
                return;
            }
            let handler = me.network.inner.borrow().uplink_handler.clone();
            if let Some(h) = handler {
                h(me.node, payload);
            }
            cb(Ok(()));
        });
    }

    /// Injects the 2G/3G handover fault the paper observed: in dual mode
    /// with an active UMTS connection, the phone switches off. Returns
    /// `true` if the fault fired.
    pub fn trigger_handover(&self) -> bool {
        let (fires, phone) = {
            let state = self.state();
            let s = state.borrow();
            let active = s.transfers_in_flight > 0
                || s.dch_until > self.network.sim().now();
            (
                s.radio_on && s.phone.is_on() && s.mode == CellMode::Dual && active,
                s.phone.clone(),
            )
        };
        if fires {
            phone.power_off();
            self.refresh_power();
        }
        fires
    }
}

impl fmt::Debug for CellModem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CellModem")
            .field("node", &self.node)
            .field("on", &self.is_on())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phone::{Phone, PhoneConfig};
    use simkit::stats::Summary;
    use std::cell::Cell;

    struct Rig {
        sim: Sim,
        net: CellNetwork,
    }

    fn rig() -> Rig {
        let sim = Sim::new();
        let net = CellNetwork::new(&sim, CellParams::default(), 7);
        Rig { sim, net }
    }

    fn modem(r: &Rig, id: u32) -> (Phone, CellModem) {
        let phone = Phone::new(&r.sim, PhoneConfig::default());
        let m = r.net.attach(NodeId(id), &phone, id as u64 + 100);
        m.set_radio(true);
        (phone, m)
    }

    #[test]
    fn uplink_latency_matches_table1() {
        // publishCxtItem over UMTS: 772.7 ms mean, high variance.
        let r = rig();
        let (_phone, m) = modem(&r, 0);
        r.net.on_uplink(|_from, _p| {});
        let mut lat = Summary::new();
        for _ in 0..200 {
            let t0 = r.sim.now();
            let done = Rc::new(Cell::new(false));
            let d = done.clone();
            m.send_event(1_696, Rc::new(()), move |res| {
                res.unwrap();
                d.set(true);
            });
            while !done.get() {
                assert!(r.sim.step());
            }
            lat.push((r.sim.now() - t0).as_millis_f64());
            // drain tails between sends
            r.sim.run_for(SimDuration::from_secs(30));
        }
        let mean = lat.mean();
        assert!((680.0..880.0).contains(&mean), "uplink mean {mean} ms");
        assert!(lat.std_dev() > 120.0, "UMTS variance should be large");
    }

    #[test]
    fn round_trip_latency_matches_table1_range() {
        // getCxtItem over UMTS: ~1473 ms mean, observed range 703–2766 ms.
        let r = rig();
        let (_phone, m) = modem(&r, 0);
        // Echo infrastructure.
        let net = r.net.clone();
        r.net.on_uplink(move |from, _p| net.send_downlink(from, 1_696, Rc::new(())));
        let mut lat = Summary::new();
        for _ in 0..200 {
            let t0 = r.sim.now();
            let done = Rc::new(Cell::new(false));
            let d = done.clone();
            m.on_receive(move |_p| d.set(true));
            m.send_event(1_696, Rc::new(()), |res| res.unwrap());
            while !done.get() {
                assert!(r.sim.step(), "no echo received");
            }
            lat.push((r.sim.now() - t0).as_millis_f64());
            r.sim.run_for(SimDuration::from_secs(30));
        }
        let mean = lat.mean();
        assert!((1300.0..1650.0).contains(&mean), "RTT mean {mean} ms");
        assert!(lat.min() > 500.0, "min {}", lat.min());
        assert!(lat.max() < 3600.0, "max {}", lat.max());
        assert!(lat.max() > 1900.0, "heavy tail expected, max {}", lat.max());
    }

    #[test]
    fn ondemand_energy_matches_table2() {
        // 14.076 J per on-demand item: transfer at ~1 W plus DCH/FACH tails.
        let r = rig();
        let (phone, m) = modem(&r, 0);
        let net = r.net.clone();
        r.net.on_uplink(move |from, _p| net.send_downlink(from, 1_696, Rc::new(())));
        let mut per_item = Summary::new();
        for _ in 0..20 {
            let t0 = r.sim.now();
            m.send_event(1_696, Rc::new(()), |res| res.unwrap());
            // run past all tails
            r.sim.run_for(SimDuration::from_secs(60));
            let e = phone.power().energy_between(t0, r.sim.now()).as_joules();
            let baseline = 5.75 * 60.0 / 1000.0;
            per_item.push(e - baseline);
        }
        let mean = per_item.mean();
        assert!(
            (12.5..15.5).contains(&mean),
            "on-demand UMTS energy {mean} J, expected ~14.1"
        );
    }

    #[test]
    fn paging_spikes_while_idle() {
        let r = rig();
        let (phone, _m) = modem(&r, 0);
        r.sim.run_for(SimDuration::from_secs(300));
        let trace = phone.power().trace_snapshot();
        // count samples in the 450-481 band (+5.75 baseline)
        let spikes = trace
            .iter()
            .filter(|&(_, v)| (450.0..490.0).contains(&(v - 5.75)))
            .count();
        // every 50-60 s over 300 s -> ~5-6 spikes
        assert!((4..=7).contains(&spikes), "saw {spikes} paging spikes");
        let peak = trace.max_value().unwrap();
        assert!((450.0..490.0).contains(&(peak - 5.75)), "peak {peak}");
    }

    #[test]
    fn radio_off_rejects_send() {
        let r = rig();
        let (_phone, m) = modem(&r, 0);
        m.set_radio(false);
        let got = Rc::new(Cell::new(None));
        let g = got.clone();
        m.send_event(100, Rc::new(()), move |res| g.set(Some(res.unwrap_err())));
        r.sim.run_until_idle();
        assert_eq!(got.take(), Some(CellError::RadioOff));
    }

    #[test]
    fn downlink_to_dead_radio_is_dropped() {
        let r = rig();
        let (_phone, m) = modem(&r, 0);
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        m.on_receive(move |_p| g.set(true));
        m.set_radio(false);
        r.net.send_downlink(NodeId(0), 100, Rc::new(()));
        r.sim.run_until_idle();
        assert!(!got.get());
    }

    #[test]
    fn handover_bug_kills_dual_mode_phone_mid_transfer() {
        let r = rig();
        let (phone, m) = modem(&r, 0);
        r.net.on_uplink(|_f, _p| {});
        m.send_event(1_696, Rc::new(()), |_res| {});
        r.sim.run_for(SimDuration::from_millis(100));
        assert!(m.trigger_handover());
        assert!(!phone.is_on());
    }

    #[test]
    fn handover_in_2g_mode_is_harmless() {
        let r = rig();
        let (phone, m) = modem(&r, 0);
        m.set_mode(CellMode::TwoG);
        r.net.on_uplink(|_f, _p| {});
        m.send_event(1_696, Rc::new(()), |_res| {});
        r.sim.run_for(SimDuration::from_millis(100));
        assert!(!m.trigger_handover());
        assert!(phone.is_on());
    }

    #[test]
    fn batching_amortizes_energy() {
        // The paper: "Sending and retrieving larger groups of items in the
        // same time slot largely reduces the energy consumption per item."
        let r = rig();
        let (phone, m) = modem(&r, 0);
        r.net.on_uplink(|_f, _p| {});
        // one batched send of 10 items' worth of payload
        let t0 = r.sim.now();
        m.send_event(1_696 + 9 * 136, Rc::new(()), |res| res.unwrap());
        r.sim.run_for(SimDuration::from_secs(60));
        let batched = phone.power().energy_between(t0, r.sim.now()).as_joules();
        let per_item_batched = batched / 10.0;
        assert!(
            per_item_batched < 14.076 / 4.0,
            "batched per-item {per_item_batched} J should amortize"
        );
    }
}
