//! Failure detection, retry accounting and the [`FailoverReport`].
//!
//! The paper's Fig. 5 shows the middleware switching a location query
//! from a BT-GPS stream to ad hoc provisioning and back. This module adds
//! the bookkeeping needed to *measure* such failovers: per query, when
//! failures were detected, which mechanisms were tried, how long the
//! delivery gap lasted and roughly how many periodic items were lost.
//! The [`FailoverTracker`] is fed by the `ContextFactory` and surfaced
//! through the `ResourcesMonitor`, so failure-scenario tests and the
//! Fig. 5 bench can assert recovery SLOs without instrumenting clients.

#![deny(warnings)]

use crate::backoff::BackoffPolicy;
use crate::factory::{Mechanism, QueryId};
use simkit::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Tunables for failure detection and retry behaviour.
#[derive(Clone, Debug, PartialEq)]
pub struct FailoverConfig {
    /// Same-mechanism retries (with backoff) before a failing mechanism
    /// is declared failed and the query moves to the next candidate.
    /// `0` = fail over immediately (the seed behaviour).
    pub max_retries: u32,
    /// Delay schedule between same-mechanism retries.
    pub backoff: BackoffPolicy,
    /// Watchdog: a periodic query that delivers nothing for this many
    /// consecutive periods is declared failed on its current mechanism.
    /// `0` disables the watchdog.
    pub silence_periods: u32,
    /// Seed for the retry jitter stream (deterministic per factory).
    pub rng_seed: u64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            max_retries: 0,
            backoff: BackoffPolicy::default(),
            silence_periods: 0,
            rng_seed: 0x5EED_CAFE,
        }
    }
}

/// Per-query failover record (a row of the [`FailoverReport`]).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryFailover {
    /// When the query was submitted.
    pub submitted_at: SimTime,
    /// Delivery period, for item-loss estimation (periodic queries).
    pub period: Option<SimDuration>,
    /// Mechanisms that served the query, in order (consecutive
    /// duplicates collapsed): the failover trail.
    pub mechanisms_tried: Vec<Mechanism>,
    /// Failure events detected (provider errors + watchdog timeouts).
    pub failures: u32,
    /// Same-mechanism retries spent.
    pub retries: u32,
    /// Successful mechanism switches.
    pub switches: u32,
    /// When the first failure was detected.
    pub first_failure_at: Option<SimTime>,
    /// When the most recent failure was detected.
    pub last_failure_at: Option<SimTime>,
    /// Total time spent between a detected failure and the next
    /// delivery (or query end): the provisioning blackout.
    pub gap_total: SimDuration,
    /// Longest single blackout.
    pub gap_max: SimDuration,
    /// Items delivered to the client.
    pub items_delivered: u64,
    /// Estimated periodic items lost to blackouts (`gap / period`).
    pub items_lost_estimate: u64,
    /// Times the query was suspended (all mechanisms failed).
    pub suspensions: u32,
    /// Whether the query is currently suspended.
    pub suspended: bool,
    /// Start of the currently open blackout, if any.
    pub open_gap_since: Option<SimTime>,
    /// Most recent activity (submit, delivery or switch) — what the
    /// silence watchdog measures against.
    pub last_activity: SimTime,
}

impl QueryFailover {
    fn new(now: SimTime, mechanism: Mechanism, period: Option<SimDuration>) -> Self {
        QueryFailover {
            submitted_at: now,
            period,
            mechanisms_tried: vec![mechanism],
            failures: 0,
            retries: 0,
            switches: 0,
            first_failure_at: None,
            last_failure_at: None,
            gap_total: SimDuration::ZERO,
            gap_max: SimDuration::ZERO,
            items_delivered: 0,
            items_lost_estimate: 0,
            suspensions: 0,
            suspended: false,
            open_gap_since: None,
            last_activity: now,
        }
    }

    fn close_gap(&mut self, now: SimTime) {
        if let Some(since) = self.open_gap_since.take() {
            let gap = now.since(since);
            self.gap_total = self.gap_total + gap;
            self.gap_max = self.gap_max.max(gap);
            if let Some(p) = self.period {
                if !p.is_zero() {
                    self.items_lost_estimate += gap.as_micros() / p.as_micros().max(1);
                }
            }
        }
    }
}

/// Snapshot of every tracked query's failover history.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FailoverReport {
    /// Per-query rows, including finished queries.
    pub queries: BTreeMap<QueryId, QueryFailover>,
}

impl FailoverReport {
    /// The row for one query.
    pub fn get(&self, id: QueryId) -> Option<&QueryFailover> {
        self.queries.get(&id)
    }

    /// Total blackout time across all queries.
    pub fn total_gap(&self) -> SimDuration {
        self.queries
            .values()
            .fold(SimDuration::ZERO, |acc, q| acc + q.gap_total)
    }

    /// Total failures detected across all queries.
    pub fn total_failures(&self) -> u64 {
        self.queries.values().map(|q| u64::from(q.failures)).sum()
    }

    /// Total mechanism switches across all queries.
    pub fn total_switches(&self) -> u64 {
        self.queries.values().map(|q| u64::from(q.switches)).sum()
    }
}

impl fmt::Display for FailoverReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "failover report: {} queries, {} failures, {} switches, {:.1}s total gap",
            self.queries.len(),
            self.total_failures(),
            self.total_switches(),
            self.total_gap().as_secs_f64()
        )?;
        for (id, q) in &self.queries {
            let trail: Vec<String> = q.mechanisms_tried.iter().map(|m| m.to_string()).collect();
            writeln!(
                f,
                "  {id}: {} | failures={} retries={} gap={:.1}s (max {:.1}s) \
                 items={} lost~{}{}",
                trail.join(" -> "),
                q.failures,
                q.retries,
                q.gap_total.as_secs_f64(),
                q.gap_max.as_secs_f64(),
                q.items_delivered,
                q.items_lost_estimate,
                if q.suspended { " [suspended]" } else { "" },
            )?;
        }
        Ok(())
    }
}

/// Shared failover bookkeeping handle (cheap to clone).
#[derive(Clone, Default)]
pub struct FailoverTracker {
    inner: Rc<RefCell<BTreeMap<QueryId, QueryFailover>>>,
    /// Open obskit blackout spans, one per query with an open gap. Span
    /// ids are allocated in creation order, so per-seed runs produce
    /// identical id sequences.
    gap_spans: Rc<RefCell<BTreeMap<QueryId, obskit::SpanId>>>,
}

impl FailoverTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        FailoverTracker::default()
    }

    /// A query was assigned to a mechanism. The first call creates the
    /// row; later calls record a switch (or a same-mechanism re-start)
    /// and clear any suspension.
    pub fn assigned(&self, id: QueryId, mechanism: Mechanism, now: SimTime) {
        let mut inner = self.inner.borrow_mut();
        match inner.get_mut(&id) {
            Some(q) => {
                q.switches += 1;
                q.suspended = false;
                q.last_activity = now;
                if q.mechanisms_tried.last() != Some(&mechanism) {
                    q.mechanisms_tried.push(mechanism);
                }
            }
            None => {
                inner.insert(id, QueryFailover::new(now, mechanism, None));
            }
        }
    }

    /// Records the query's delivery period for item-loss estimation.
    pub fn set_period(&self, id: QueryId, period: Option<SimDuration>) {
        if let Some(q) = self.inner.borrow_mut().get_mut(&id) {
            q.period = period;
        }
    }

    /// Items reached the client: closes any open blackout.
    pub fn delivered(&self, id: QueryId, items: u64, now: SimTime) {
        if let Some(q) = self.inner.borrow_mut().get_mut(&id) {
            q.close_gap(now);
            q.items_delivered += items;
            q.last_activity = now;
        }
        self.end_gap_span(id, now);
    }

    /// A failure was detected on `mechanism`: opens a blackout if none
    /// is already open.
    pub fn failure(&self, id: QueryId, mechanism: Mechanism, now: SimTime) {
        let opened = {
            let mut inner = self.inner.borrow_mut();
            let q = inner
                .entry(id)
                .or_insert_with(|| QueryFailover::new(now, mechanism, None));
            q.failures += 1;
            q.first_failure_at.get_or_insert(now);
            q.last_failure_at = Some(now);
            if q.open_gap_since.is_none() {
                q.open_gap_since = Some(now);
                true
            } else {
                false
            }
        };
        if opened {
            self.open_gap_span(id, now);
        }
    }

    /// A same-mechanism retry was scheduled.
    pub fn retried(&self, id: QueryId) {
        if let Some(q) = self.inner.borrow_mut().get_mut(&id) {
            q.retries += 1;
        }
    }

    /// All mechanisms failed: the query is parked until a probe revives
    /// it. The blackout stays open.
    pub fn suspended(&self, id: QueryId, now: SimTime) {
        let opened = {
            let mut inner = self.inner.borrow_mut();
            let Some(q) = inner.get_mut(&id) else {
                return;
            };
            q.suspensions += 1;
            q.suspended = true;
            q.last_failure_at = Some(now);
            if q.open_gap_since.is_none() {
                q.open_gap_since = Some(now);
                true
            } else {
                false
            }
        };
        if opened {
            self.open_gap_span(id, now);
        }
    }

    /// The query ended (expiry, budget, cancel or termination): closes
    /// any open blackout. The row is kept for reporting.
    pub fn finished(&self, id: QueryId, now: SimTime) {
        if let Some(q) = self.inner.borrow_mut().get_mut(&id) {
            q.close_gap(now);
            q.suspended = false;
        }
        self.end_gap_span(id, now);
    }

    /// Opens the obskit blackout span for a query's provisioning gap.
    fn open_gap_span(&self, id: QueryId, now: SimTime) {
        if let Some(span) = obskit::start(obskit::Phase::Failover, &format!("gap:{id}"), None, now)
        {
            self.gap_spans.borrow_mut().insert(id, span);
        }
    }

    /// Ends the blackout span, if one is open.
    fn end_gap_span(&self, id: QueryId, now: SimTime) {
        let span = self.gap_spans.borrow_mut().remove(&id);
        obskit::end(span, now);
    }

    /// Most recent activity timestamp for the silence watchdog.
    pub fn last_activity(&self, id: QueryId) -> Option<SimTime> {
        self.inner.borrow().get(&id).map(|q| q.last_activity)
    }

    /// Snapshot of all rows (open blackouts are reported as accrued up
    /// to `now`).
    pub fn report_at(&self, now: SimTime) -> FailoverReport {
        let mut queries = self.inner.borrow().clone();
        for q in queries.values_mut() {
            if let Some(since) = q.open_gap_since {
                let gap = now.since(since);
                q.gap_total = q.gap_total + gap;
                q.gap_max = q.gap_max.max(gap);
                if let Some(p) = q.period {
                    if !p.is_zero() {
                        q.items_lost_estimate += gap.as_micros() / p.as_micros().max(1);
                    }
                }
                q.open_gap_since = None;
            }
        }
        FailoverReport { queries }
    }
}

impl fmt::Debug for FailoverTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FailoverTracker")
            .field("queries", &self.inner.borrow().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn gap_accrues_between_failure_and_next_delivery() {
        let tr = FailoverTracker::new();
        let id = QueryId(1);
        tr.assigned(id, Mechanism::IntSensor, t(0));
        tr.set_period(id, Some(SimDuration::from_secs(5)));
        tr.delivered(id, 3, t(10));
        tr.failure(id, Mechanism::IntSensor, t(20));
        tr.assigned(id, Mechanism::AdHocBt, t(21));
        tr.delivered(id, 1, t(35));
        let r = tr.report_at(t(40));
        let q = r.get(id).unwrap();
        assert_eq!(q.gap_total, SimDuration::from_secs(15));
        assert_eq!(q.gap_max, SimDuration::from_secs(15));
        assert_eq!(q.items_delivered, 4);
        assert_eq!(q.items_lost_estimate, 3); // 15s gap / 5s period
        assert_eq!(
            q.mechanisms_tried,
            vec![Mechanism::IntSensor, Mechanism::AdHocBt]
        );
        assert_eq!(q.failures, 1);
        assert_eq!(q.switches, 1);
        assert_eq!(q.first_failure_at, Some(t(20)));
    }

    #[test]
    fn open_gap_is_reported_up_to_now_without_mutating_state() {
        let tr = FailoverTracker::new();
        let id = QueryId(2);
        tr.assigned(id, Mechanism::Infra, t(0));
        tr.failure(id, Mechanism::Infra, t(100));
        let r1 = tr.report_at(t(130));
        assert_eq!(r1.get(id).unwrap().gap_total, SimDuration::from_secs(30));
        let r2 = tr.report_at(t(160));
        assert_eq!(r2.get(id).unwrap().gap_total, SimDuration::from_secs(60));
        // Closing at delivery uses the real timestamps.
        tr.delivered(id, 1, t(200));
        let r3 = tr.report_at(t(999));
        assert_eq!(r3.get(id).unwrap().gap_total, SimDuration::from_secs(100));
    }

    #[test]
    fn repeated_failures_keep_one_open_gap() {
        let tr = FailoverTracker::new();
        let id = QueryId(3);
        tr.assigned(id, Mechanism::AdHocBt, t(0));
        tr.failure(id, Mechanism::AdHocBt, t(10));
        tr.retried(id);
        tr.failure(id, Mechanism::AdHocBt, t(15));
        tr.failure(id, Mechanism::AdHocWifi, t(20));
        tr.delivered(id, 1, t(30));
        let q = tr.report_at(t(30)).get(id).unwrap().clone();
        assert_eq!(q.failures, 3);
        assert_eq!(q.retries, 1);
        assert_eq!(q.gap_total, SimDuration::from_secs(20));
    }

    #[test]
    fn suspension_and_finish_round_trip() {
        let tr = FailoverTracker::new();
        let id = QueryId(4);
        tr.assigned(id, Mechanism::Infra, t(0));
        tr.set_period(id, Some(SimDuration::from_secs(10)));
        tr.failure(id, Mechanism::Infra, t(50));
        tr.suspended(id, t(50));
        assert!(tr.report_at(t(60)).get(id).unwrap().suspended);
        tr.assigned(id, Mechanism::Infra, t(120));
        assert!(!tr.report_at(t(120)).get(id).unwrap().suspended);
        tr.delivered(id, 1, t(125));
        tr.finished(id, t(200));
        let q = tr.report_at(t(999)).get(id).unwrap().clone();
        assert_eq!(q.suspensions, 1);
        assert_eq!(q.gap_total, SimDuration::from_secs(75));
        assert_eq!(q.items_lost_estimate, 7);
    }

    #[test]
    fn report_totals_and_display() {
        let tr = FailoverTracker::new();
        tr.assigned(QueryId(1), Mechanism::IntSensor, t(0));
        tr.failure(QueryId(1), Mechanism::IntSensor, t(5));
        tr.assigned(QueryId(1), Mechanism::AdHocBt, t(6));
        tr.delivered(QueryId(1), 1, t(8));
        tr.assigned(QueryId(2), Mechanism::Infra, t(0));
        let r = tr.report_at(t(10));
        assert_eq!(r.total_failures(), 1);
        assert_eq!(r.total_switches(), 1);
        assert_eq!(r.total_gap(), SimDuration::from_secs(3));
        let text = r.to_string();
        assert!(text.contains("q1"), "{text}");
        assert!(text.contains("intSensor -> adHocNetwork/BT"), "{text}");
    }

    #[test]
    fn last_activity_tracks_submit_delivery_and_switch() {
        let tr = FailoverTracker::new();
        let id = QueryId(7);
        tr.assigned(id, Mechanism::IntSensor, t(1));
        assert_eq!(tr.last_activity(id), Some(t(1)));
        tr.delivered(id, 1, t(9));
        assert_eq!(tr.last_activity(id), Some(t(9)));
        tr.failure(id, Mechanism::IntSensor, t(12));
        assert_eq!(tr.last_activity(id), Some(t(9)), "failure is not activity");
        tr.assigned(id, Mechanism::Infra, t(14));
        assert_eq!(tr.last_activity(id), Some(t(14)));
    }
}
