//! The CxtPublisher (§4.3): "allows publishing context information in ad
//! hoc networks by means of the BTReference or the WiFiReference. Each
//! time a context item has to be published, two access modalities can be
//! applied: public access allows any external entity to access the item,
//! and authenticated access locks the item with a key."

use crate::item::CxtItem;
use crate::refs::{BtReference, RefError, WifiReference};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

struct Inner {
    bt: Option<Rc<dyn BtReference>>,
    wifi: Option<Rc<dyn WifiReference>>,
    /// Items currently published, by context type.
    published: BTreeMap<String, (CxtItem, Option<String>)>,
}

/// Shared handle to the publisher.
#[derive(Clone)]
pub struct CxtPublisher {
    inner: Rc<RefCell<Inner>>,
}

impl CxtPublisher {
    /// Creates a publisher over the available ad hoc references.
    pub fn new(bt: Option<Rc<dyn BtReference>>, wifi: Option<Rc<dyn WifiReference>>) -> Self {
        CxtPublisher {
            inner: Rc::new(RefCell::new(Inner {
                bt,
                wifi,
                published: BTreeMap::new(),
            })),
        }
    }

    /// Publishes (or refreshes) an item on every available ad hoc
    /// reference. `key` = `Some` selects authenticated access. The
    /// callback fires once, after the first reference succeeds — or with
    /// the last error if all fail.
    pub fn publish(
        &self,
        item: CxtItem,
        key: Option<String>,
        cb: Box<dyn FnOnce(Result<(), RefError>)>,
    ) {
        obskit::count("publisher_publishes", 1);
        if key.is_some() {
            obskit::count("publisher_authenticated", 1);
        }
        let (bt, wifi) = {
            let mut inner = self.inner.borrow_mut();
            inner
                .published
                .insert(item.cxt_type.clone(), (item.clone(), key.clone()));
            (inner.bt.clone(), inner.wifi.clone())
        };
        let targets: Vec<Target> = [
            bt.map(Target::Bt),
            wifi.map(Target::Wifi),
        ]
        .into_iter()
        .flatten()
        .collect();
        if targets.is_empty() {
            cb(Err(RefError::Unavailable("no ad hoc reference".into())));
            return;
        }
        // First success wins; all failures -> last error.
        let state = Rc::new(RefCell::new(PublishState {
            remaining: targets.len(),
            done: false,
            cb: Some(cb),
            last_err: None,
        }));
        for target in targets {
            let state = state.clone();
            let done: Box<dyn FnOnce(Result<(), RefError>)> = Box::new(move |res| {
                let mut st = state.borrow_mut();
                st.remaining -= 1;
                match res {
                    Ok(()) if !st.done => {
                        st.done = true;
                        if let Some(cb) = st.cb.take() {
                            drop(st);
                            cb(Ok(()));
                        }
                    }
                    Ok(()) => {}
                    Err(e) => {
                        st.last_err = Some(e);
                        if st.remaining == 0 && !st.done {
                            // Every target failed: report the most recent
                            // error. The `if let` replaces a former
                            // `expect()` — the error was just recorded, but
                            // panicking inside a radio callback would take
                            // the whole middleware down.
                            if let (Some(err), Some(cb)) = (st.last_err.take(), st.cb.take()) {
                                drop(st);
                                cb(Err(err));
                            }
                        }
                    }
                }
            });
            match target {
                Target::Bt(r) => r.publish(&item, key.clone(), done),
                Target::Wifi(r) => r.publish(&item, key.clone(), done),
            }
        }
    }

    /// Withdraws a published item from every reference.
    pub fn unpublish(&self, cxt_type: &str) {
        obskit::count("publisher_unpublishes", 1);
        let (bt, wifi) = {
            let mut inner = self.inner.borrow_mut();
            inner.published.remove(cxt_type);
            (inner.bt.clone(), inner.wifi.clone())
        };
        if let Some(bt) = bt {
            bt.unpublish(cxt_type);
        }
        if let Some(wifi) = wifi {
            wifi.unpublish(cxt_type);
        }
    }

    /// Context types currently published.
    pub fn published_types(&self) -> Vec<String> {
        self.inner.borrow().published.keys().cloned().collect()
    }
}

enum Target {
    Bt(Rc<dyn BtReference>),
    Wifi(Rc<dyn WifiReference>),
}

struct PublishState {
    remaining: usize,
    done: bool,
    cb: Option<Box<dyn FnOnce(Result<(), RefError>)>>,
    last_err: Option<RefError>,
}

impl fmt::Debug for CxtPublisher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CxtPublisher")
            .field("published", &self.inner.borrow().published.len())
            .finish()
    }
}
