//! Crate-level error type.

use crate::query::ParseQueryError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the Contory public API.
#[derive(Clone, Debug, PartialEq)]
pub enum ContoryError {
    /// The query text failed to parse.
    Parse(ParseQueryError),
    /// No provisioning mechanism can serve the query right now.
    NoMechanism {
        /// Context type that could not be provisioned.
        cxt_type: String,
        /// Why every candidate was rejected.
        reason: String,
    },
    /// The device has candidate mechanisms for the query, but every one
    /// of them has failed (total blackout).
    AllMechanismsFailed {
        /// Context type that could not be provisioned.
        cxt_type: String,
        /// Mechanisms that were tried, rendered for diagnostics.
        tried: String,
    },
    /// The referenced query is not active.
    UnknownQuery(u64),
    /// The access controller blocked the interaction.
    AccessDenied(String),
    /// A reference (communication module) failed.
    Reference(String),
    /// Operation requires a capability the platform lacks.
    Unsupported(String),
}

impl fmt::Display for ContoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContoryError::Parse(e) => write!(f, "{e}"),
            ContoryError::NoMechanism { cxt_type, reason } => {
                write!(f, "no mechanism can provision '{cxt_type}': {reason}")
            }
            ContoryError::AllMechanismsFailed { cxt_type, tried } => {
                write!(
                    f,
                    "all mechanisms failed for '{cxt_type}' (tried: {tried})"
                )
            }
            ContoryError::UnknownQuery(id) => write!(f, "unknown query id {id}"),
            ContoryError::AccessDenied(who) => write!(f, "access denied for {who}"),
            ContoryError::Reference(msg) => write!(f, "reference failure: {msg}"),
            ContoryError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl Error for ContoryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ContoryError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseQueryError> for ContoryError {
    fn from(e: ParseQueryError) -> Self {
        ContoryError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e: ContoryError = crate::query::CxtQuery::parse("nonsense").unwrap_err().into();
        assert!(e.to_string().contains("parse error"));
        assert!(Error::source(&e).is_some());
        let e = ContoryError::NoMechanism {
            cxt_type: "temperature".into(),
            reason: "all radios down".into(),
        };
        assert!(e.to_string().contains("temperature"));
        assert!(Error::source(&e).is_none());
        let e = ContoryError::AllMechanismsFailed {
            cxt_type: "location".into(),
            tried: "intSensor, adHocNetwork/BT".into(),
        };
        let s = e.to_string();
        assert!(s.contains("all mechanisms failed"), "{s}");
        assert!(s.contains("adHocNetwork/BT"), "{s}");
    }
}
