//! The AccessController (§4.3).
//!
//! "The AccessController keeps track of previously connected context
//! sources and also of blocked context sources. This list is continuously
//! refreshed so that only the most recent and the most often accessed
//! sources are kept in memory. If the application requires high-security
//! operating mode, every time a new context source is encountered, it is
//! blocked or admitted based on explicit validation by the application.
//! In low-security mode, every new entity is trusted."

use crate::item::SourceId;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

/// Security posture of the controller.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SecurityMode {
    /// Every new entity is trusted.
    #[default]
    Low,
    /// New entities require explicit validation by the application
    /// (`Client::make_decision`).
    High,
}

/// Outcome of an access check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessDecision {
    /// Interaction may proceed.
    Granted,
    /// Interaction must not proceed.
    Blocked,
}

/// Application hook consulted for unknown sources in high-security mode.
pub type Decider = Rc<dyn Fn(&SourceId) -> bool>;

/// What the controller concluded about one vetted interaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditVerdict {
    /// The source was admitted.
    Granted,
    /// The source was refused (blocklist or application decision).
    Blocked,
    /// The context carried no source attribution at all — refused under
    /// the brokerd hygiene contract (every context packet must be
    /// attributable).
    Unattributed,
}

impl fmt::Display for AuditVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AuditVerdict::Granted => "granted",
            AuditVerdict::Blocked => "blocked",
            AuditVerdict::Unattributed => "unattributed",
        })
    }
}

/// One line of the controller's audit trail: who was vetted, in which
/// admission order, with what outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditEntry {
    /// Monotonic decision sequence number (deterministic admission
    /// order; the controller has no clock of its own).
    pub seq: u64,
    /// The vetted source (`None` for unattributed context).
    pub source: Option<SourceId>,
    /// The outcome.
    pub verdict: AuditVerdict,
}

struct Inner {
    mode: SecurityMode,
    /// Most-recently-used list of known-good sources, newest at the back.
    known: Vec<SourceId>,
    capacity: usize,
    blocked: BTreeSet<SourceId>,
    decider: Option<Decider>,
    /// Bounded audit ring, newest at the back.
    audit: std::collections::VecDeque<AuditEntry>,
    audit_capacity: usize,
    audit_seq: u64,
    granted_total: u64,
    blocked_total: u64,
    unattributed_total: u64,
}

impl Inner {
    fn record(&mut self, source: Option<SourceId>, verdict: AuditVerdict) {
        match verdict {
            AuditVerdict::Granted => self.granted_total += 1,
            AuditVerdict::Blocked => self.blocked_total += 1,
            AuditVerdict::Unattributed => self.unattributed_total += 1,
        }
        let seq = self.audit_seq;
        self.audit_seq += 1;
        if self.audit.len() >= self.audit_capacity {
            self.audit.pop_front();
        }
        self.audit.push_back(AuditEntry {
            seq,
            source,
            verdict,
        });
    }
}

/// Shared handle to the access controller.
///
/// ```
/// use contory::{AccessController, AccessDecision, SecurityMode, SourceId};
///
/// let ac = AccessController::new(SecurityMode::Low, 8);
/// assert_eq!(ac.check(&SourceId::new("boat-7")), AccessDecision::Granted);
/// ac.block(SourceId::new("boat-7"));
/// assert_eq!(ac.check(&SourceId::new("boat-7")), AccessDecision::Blocked);
/// ```
#[derive(Clone)]
pub struct AccessController {
    inner: Rc<RefCell<Inner>>,
}

impl AccessController {
    /// Creates a controller keeping at most `capacity` known sources.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(mode: SecurityMode, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        AccessController {
            inner: Rc::new(RefCell::new(Inner {
                mode,
                known: Vec::new(),
                capacity,
                blocked: BTreeSet::new(),
                decider: None,
                audit: std::collections::VecDeque::new(),
                audit_capacity: 256,
                audit_seq: 0,
                granted_total: 0,
                blocked_total: 0,
                unattributed_total: 0,
            })),
        }
    }

    /// Installs the application's validation hook (wired to
    /// `Client::make_decision` by the factory).
    pub fn set_decider(&self, f: impl Fn(&SourceId) -> bool + 'static) {
        self.inner.borrow_mut().decider = Some(Rc::new(f));
    }

    /// Switches security mode.
    pub fn set_mode(&self, mode: SecurityMode) {
        self.inner.borrow_mut().mode = mode;
    }

    /// Current security mode.
    pub fn mode(&self) -> SecurityMode {
        self.inner.borrow().mode
    }

    /// Checks whether interaction with `source` is allowed, updating the
    /// recently-used bookkeeping.
    pub fn check(&self, source: &SourceId) -> AccessDecision {
        self.check_with(source, None)
    }

    /// Like [`AccessController::check`], but when the controller has no
    /// installed decider, `fallback` is consulted for unknown sources in
    /// high-security mode — this is how the factory routes the decision
    /// to the `Client::make_decision` of the query that encountered the
    /// source (§4.4).
    pub fn check_with(
        &self,
        source: &SourceId,
        fallback: Option<&dyn Fn(&SourceId) -> bool>,
    ) -> AccessDecision {
        let mut inner = self.inner.borrow_mut();
        if inner.blocked.contains(source) {
            inner.record(Some(source.clone()), AuditVerdict::Blocked);
            return AccessDecision::Blocked;
        }
        if let Some(pos) = inner.known.iter().position(|s| s == source) {
            // Refresh: move to most-recent position.
            let s = inner.known.remove(pos);
            inner.known.push(s);
            inner.record(Some(source.clone()), AuditVerdict::Granted);
            return AccessDecision::Granted;
        }
        match inner.mode {
            SecurityMode::Low => {
                Self::admit(&mut inner, source.clone());
                inner.record(Some(source.clone()), AuditVerdict::Granted);
                AccessDecision::Granted
            }
            SecurityMode::High => {
                let decider = inner.decider.clone();
                drop(inner);
                let allowed = match decider {
                    Some(d) => d(source),
                    None => fallback.map(|f| f(source)).unwrap_or(false),
                };
                let mut inner = self.inner.borrow_mut();
                if allowed {
                    Self::admit(&mut inner, source.clone());
                    inner.record(Some(source.clone()), AuditVerdict::Granted);
                    AccessDecision::Granted
                } else {
                    inner.blocked.insert(source.clone());
                    inner.record(Some(source.clone()), AuditVerdict::Blocked);
                    AccessDecision::Blocked
                }
            }
        }
    }

    /// Vets a possibly-unattributed piece of context: attribution is
    /// mandatory (the brokerd hygiene contract), so `None` is refused
    /// outright and recorded as [`AuditVerdict::Unattributed`]; a named
    /// source goes through the normal [`AccessController::check_with`]
    /// path.
    pub fn check_attributed(
        &self,
        source: Option<&SourceId>,
        fallback: Option<&dyn Fn(&SourceId) -> bool>,
    ) -> AccessDecision {
        match source {
            Some(s) => self.check_with(s, fallback),
            None => {
                self.inner
                    .borrow_mut()
                    .record(None, AuditVerdict::Unattributed);
                AccessDecision::Blocked
            }
        }
    }

    /// The retained audit trail, oldest first (bounded ring).
    pub fn audit_trail(&self) -> Vec<AuditEntry> {
        self.inner.borrow().audit.iter().cloned().collect()
    }

    /// Lifetime decision totals `(granted, blocked, unattributed)` —
    /// unaffected by the ring bound.
    pub fn audit_totals(&self) -> (u64, u64, u64) {
        let inner = self.inner.borrow();
        (
            inner.granted_total,
            inner.blocked_total,
            inner.unattributed_total,
        )
    }

    fn admit(inner: &mut Inner, source: SourceId) {
        if inner.known.len() >= inner.capacity {
            inner.known.remove(0); // evict the least recently used
        }
        inner.known.push(source);
    }

    /// Explicitly blocks a source (and forgets it from the known list).
    pub fn block(&self, source: SourceId) {
        let mut inner = self.inner.borrow_mut();
        inner.known.retain(|s| s != &source);
        inner.blocked.insert(source);
    }

    /// Unblocks a source.
    pub fn unblock(&self, source: &SourceId) {
        self.inner.borrow_mut().blocked.remove(source);
    }

    /// Currently known (recently granted) sources, oldest first.
    pub fn known_sources(&self) -> Vec<SourceId> {
        self.inner.borrow().known.clone()
    }
}

impl fmt::Debug for AccessController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("AccessController")
            .field("mode", &inner.mode)
            .field("known", &inner.known.len())
            .field("blocked", &inner.blocked.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(s: &str) -> SourceId {
        SourceId::new(s)
    }

    #[test]
    fn low_mode_trusts_everyone() {
        let ac = AccessController::new(SecurityMode::Low, 4);
        assert_eq!(ac.check(&src("a")), AccessDecision::Granted);
        assert_eq!(ac.known_sources(), vec![src("a")]);
    }

    #[test]
    fn high_mode_asks_the_application() {
        let ac = AccessController::new(SecurityMode::High, 4);
        // No decider installed: block by default.
        assert_eq!(ac.check(&src("a")), AccessDecision::Blocked);
        ac.unblock(&src("a"));
        ac.set_decider(|s| s.0.starts_with("boat"));
        assert_eq!(ac.check(&src("boat-1")), AccessDecision::Granted);
        assert_eq!(ac.check(&src("a")), AccessDecision::Blocked);
        // Once blocked, stays blocked without another decision.
        assert_eq!(ac.check(&src("a")), AccessDecision::Blocked);
        // Once admitted, no more decisions needed.
        assert_eq!(ac.check(&src("boat-1")), AccessDecision::Granted);
    }

    #[test]
    fn lru_eviction_keeps_most_recent() {
        let ac = AccessController::new(SecurityMode::Low, 2);
        ac.check(&src("a"));
        ac.check(&src("b"));
        ac.check(&src("a")); // refresh a
        ac.check(&src("c")); // evicts b
        assert_eq!(ac.known_sources(), vec![src("a"), src("c")]);
        // b is unknown again but low mode re-admits it.
        assert_eq!(ac.check(&src("b")), AccessDecision::Granted);
    }

    #[test]
    fn block_and_unblock() {
        let ac = AccessController::new(SecurityMode::Low, 4);
        ac.check(&src("a"));
        ac.block(src("a"));
        assert_eq!(ac.check(&src("a")), AccessDecision::Blocked);
        assert!(ac.known_sources().is_empty());
        ac.unblock(&src("a"));
        assert_eq!(ac.check(&src("a")), AccessDecision::Granted);
    }

    #[test]
    fn mode_switching() {
        let ac = AccessController::new(SecurityMode::Low, 4);
        assert_eq!(ac.mode(), SecurityMode::Low);
        ac.set_mode(SecurityMode::High);
        assert_eq!(ac.mode(), SecurityMode::High);
        assert_eq!(ac.check(&src("new")), AccessDecision::Blocked);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = AccessController::new(SecurityMode::Low, 0);
    }

    #[test]
    fn audit_trail_records_decisions_in_order() {
        let ac = AccessController::new(SecurityMode::Low, 4);
        ac.check(&src("a"));
        ac.block(src("b"));
        ac.check(&src("b"));
        ac.check_attributed(None, None);
        let trail = ac.audit_trail();
        assert_eq!(trail.len(), 3); // block() itself is not a vetting event
        assert_eq!(trail[0].seq, 0);
        assert_eq!(trail[0].verdict, AuditVerdict::Granted);
        assert_eq!(trail[1].verdict, AuditVerdict::Blocked);
        assert_eq!(trail[1].source, Some(src("b")));
        assert_eq!(trail[2].verdict, AuditVerdict::Unattributed);
        assert_eq!(trail[2].source, None);
        assert_eq!(ac.audit_totals(), (1, 1, 1));
    }

    #[test]
    fn unattributed_context_is_refused() {
        let ac = AccessController::new(SecurityMode::Low, 4);
        assert_eq!(ac.check_attributed(None, None), AccessDecision::Blocked);
        assert_eq!(
            ac.check_attributed(Some(&src("boat-1")), None),
            AccessDecision::Granted
        );
    }

    #[test]
    fn audit_ring_is_bounded_but_totals_are_not() {
        let ac = AccessController::new(SecurityMode::Low, 4);
        for i in 0..300 {
            ac.check(&src(&format!("s{}", i % 3)));
        }
        let trail = ac.audit_trail();
        assert_eq!(trail.len(), 256);
        assert_eq!(trail.last().unwrap().seq, 299);
        assert_eq!(ac.audit_totals().0, 300);
    }
}
