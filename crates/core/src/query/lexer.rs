//! Tokenizer for the query language.

use std::fmt;

/// A lexical token with its byte offset.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds. Keywords are recognized case-insensitively but carried
/// as distinct kinds; identifiers keep their original spelling.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum TokenKind {
    Select,
    From,
    Where,
    Freshness,
    Duration,
    Every,
    Event,
    And,
    Or,
    Ident(String),
    Number(f64),
    LParen,
    RParen,
    Comma,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Number(n) => write!(f, "number {n}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// Lexing failure: offending offset and message.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct LexError {
    pub offset: usize,
    pub message: String,
}

pub(crate) fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                tokens.push(Token { kind: TokenKind::LParen, offset: i });
                i += 1;
            }
            b')' => {
                tokens.push(Token { kind: TokenKind::RParen, offset: i });
                i += 1;
            }
            b',' => {
                tokens.push(Token { kind: TokenKind::Comma, offset: i });
                i += 1;
            }
            b'=' => {
                tokens.push(Token { kind: TokenKind::Eq, offset: i });
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ne, offset: i });
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Le, offset: i });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token { kind: TokenKind::Ne, offset: i });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, offset: i });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, offset: i });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, offset: i });
                    i += 1;
                }
            }
            b'0'..=b'9' | b'.' | b'-' | b'+' => {
                let start = i;
                if matches!(b, b'-' | b'+') {
                    i += 1;
                }
                let mut seen_dot = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !seen_dot => {
                            seen_dot = true;
                            i += 1;
                        }
                        _ => break,
                    }
                }
                let text = &input[start..i];
                let n: f64 = text.parse().map_err(|_| LexError {
                    offset: start,
                    message: format!("bad number '{text}'"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(n),
                    offset: start,
                });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'-')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let kind = match word.to_ascii_uppercase().as_str() {
                    "SELECT" => TokenKind::Select,
                    "FROM" => TokenKind::From,
                    "WHERE" => TokenKind::Where,
                    "FRESHNESS" => TokenKind::Freshness,
                    "DURATION" => TokenKind::Duration,
                    "EVERY" => TokenKind::Every,
                    "EVENT" => TokenKind::Event,
                    "AND" => TokenKind::And,
                    "OR" => TokenKind::Or,
                    _ => TokenKind::Ident(word.to_owned()),
                };
                tokens.push(Token { kind, offset: start });
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character '{}'", other as char),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_case_insensitively() {
        assert_eq!(
            kinds("select FROM Where freshness DURATION every EVENT and OR"),
            vec![
                TokenKind::Select,
                TokenKind::From,
                TokenKind::Where,
                TokenKind::Freshness,
                TokenKind::Duration,
                TokenKind::Every,
                TokenKind::Event,
                TokenKind::And,
                TokenKind::Or,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("= != < <= > >= <>"),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Ne,
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_idents() {
        assert_eq!(
            kinds("adHocNetwork(10,3) 0.2 -5"),
            vec![
                TokenKind::Ident("adHocNetwork".into()),
                TokenKind::LParen,
                TokenKind::Number(10.0),
                TokenKind::Comma,
                TokenKind::Number(3.0),
                TokenKind::RParen,
                TokenKind::Number(0.2),
                TokenKind::Number(-5.0),
            ]
        );
    }

    #[test]
    fn offsets_point_at_tokens() {
        let toks = lex("SELECT x").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("SELECT #").is_err());
        assert!(lex("a ! b").is_err());
        let err = lex("DURATION .").unwrap_err();
        assert!(err.message.contains("bad number"), "{err:?}");
    }
}
