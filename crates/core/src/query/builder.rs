//! Programmatic query construction (guide rule C-BUILDER).
//!
//! Applications that prefer not to concatenate query strings can build a
//! [`CxtQuery`] fluently; the builder enforces the same invariants as the
//! parser.

use super::ast::*;
use simkit::SimDuration;

/// Fluent builder for [`CxtQuery`].
///
/// ```
/// use contory::query::{NumNodes, QueryBuilder};
/// use simkit::SimDuration;
///
/// let q = QueryBuilder::select("temperature")
///     .from_adhoc(NumNodes::First(10), 3)
///     .where_numeric("accuracy", contory::query::CmpOp::Eq, 0.2)
///     .freshness(SimDuration::from_secs(30))
///     .duration(SimDuration::from_hours(1))
///     .event_avg_above("temperature", 25.0)
///     .build();
/// assert_eq!(
///     q.to_string(),
///     "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 \
///      FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25"
/// );
/// ```
#[derive(Clone, Debug)]
pub struct QueryBuilder {
    query: CxtQuery,
}

impl QueryBuilder {
    /// Starts a query for a context type. The duration defaults to one
    /// sample (an on-demand, single-shot query) until set.
    pub fn select(cxt_type: impl Into<String>) -> Self {
        QueryBuilder {
            query: CxtQuery {
                select: cxt_type.into(),
                from: None,
                where_clause: Vec::new(),
                freshness: None,
                duration: DurationClause::Samples(1),
                mode: QueryMode::OnDemand,
            },
        }
    }

    /// FROM intSensor.
    pub fn from_int_sensor(mut self) -> Self {
        self.query.from = Some(Source::IntSensor);
        self
    }

    /// FROM extInfra.
    pub fn from_infra(mut self) -> Self {
        self.query.from = Some(Source::ExtInfra);
        self
    }

    /// FROM adHocNetwork(numNodes, numHops).
    ///
    /// # Panics
    ///
    /// Panics if `num_hops` is zero.
    pub fn from_adhoc(mut self, num_nodes: NumNodes, num_hops: u32) -> Self {
        assert!(num_hops >= 1, "numHops must be at least 1");
        self.query.from = Some(Source::AdHocNetwork {
            num_nodes,
            num_hops,
        });
        self
    }

    /// FROM entity(id).
    pub fn from_entity(mut self, entity: impl Into<String>) -> Self {
        self.query.from = Some(Source::Entity(entity.into()));
        self
    }

    /// FROM region(x, y, radius).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative.
    pub fn from_region(mut self, x: f64, y: f64, radius: f64) -> Self {
        assert!(radius >= 0.0, "region radius must be non-negative");
        self.query.from = Some(Source::Region { x, y, radius });
        self
    }

    /// Adds a numeric WHERE predicate.
    pub fn where_numeric(mut self, key: impl Into<String>, op: CmpOp, value: f64) -> Self {
        self.query.where_clause.push(WherePredicate {
            key: key.into(),
            op,
            value: PredValue::Number(value),
        });
        self
    }

    /// Adds a textual WHERE predicate (e.g. `trust = trusted`).
    pub fn where_text(
        mut self,
        key: impl Into<String>,
        op: CmpOp,
        value: impl Into<String>,
    ) -> Self {
        self.query.where_clause.push(WherePredicate {
            key: key.into(),
            op,
            value: PredValue::Text(value.into()),
        });
        self
    }

    /// FRESHNESS: maximum item age.
    pub fn freshness(mut self, freshness: SimDuration) -> Self {
        self.query.freshness = Some(freshness);
        self
    }

    /// DURATION as wall time.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.query.duration = DurationClause::Time(duration);
        self
    }

    /// DURATION as a sample budget.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn duration_samples(mut self, samples: u32) -> Self {
        assert!(samples >= 1, "sample budget must be at least 1");
        self.query.duration = DurationClause::Samples(samples);
        self
    }

    /// EVERY: periodic delivery.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn every(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "EVERY period must be non-zero");
        self.query.mode = QueryMode::Periodic(period);
        self
    }

    /// EVENT with an arbitrary expression.
    pub fn event(mut self, expr: EventExpr) -> Self {
        self.query.mode = QueryMode::Event(expr);
        self
    }

    /// Convenience: `EVENT AVG(field) > threshold`.
    pub fn event_avg_above(self, field: impl Into<String>, threshold: f64) -> Self {
        self.event(EventExpr::Cmp {
            left: EventTerm::Agg {
                func: AggFunc::Avg,
                field: field.into(),
            },
            op: CmpOp::Gt,
            right: EventTerm::Number(threshold),
        })
    }

    /// Finishes the query.
    pub fn build(self) -> CxtQuery {
        self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_parser() {
        let built = QueryBuilder::select("location")
            .from_int_sensor()
            .freshness(SimDuration::from_secs(5))
            .duration(SimDuration::from_mins(10))
            .every(SimDuration::from_secs(2))
            .build();
        let parsed = CxtQuery::parse(
            "SELECT location FROM intSensor FRESHNESS 5 sec DURATION 10 min EVERY 2 sec",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn entity_and_region_builders() {
        let q = QueryBuilder::select("location")
            .from_entity("friend-7")
            .duration_samples(3)
            .build();
        assert_eq!(q.from, Some(Source::Entity("friend-7".into())));
        let q = QueryBuilder::select("wind")
            .from_region(100.0, 200.0, 50.0)
            .duration(SimDuration::from_mins(1))
            .build();
        assert!(matches!(q.from, Some(Source::Region { .. })));
    }

    #[test]
    fn default_is_single_sample_on_demand() {
        let q = QueryBuilder::select("noise").build();
        assert_eq!(q.duration, DurationClause::Samples(1));
        assert_eq!(q.mode, QueryMode::OnDemand);
    }

    #[test]
    #[should_panic(expected = "numHops")]
    fn zero_hops_panics() {
        let _ = QueryBuilder::select("x").from_adhoc(NumNodes::All, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let _ = QueryBuilder::select("x").every(SimDuration::ZERO);
    }
}
