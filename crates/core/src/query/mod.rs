//! The Contory context query language (§4.2).
//!
//! ```text
//! SELECT <context name>                      (mandatory)
//! FROM <source>                              (optional: middleware picks)
//! WHERE <predicate clause>                   (metadata filters)
//! FRESHNESS <time>                           (maximum data age)
//! DURATION <duration>                        (mandatory: time or samples)
//! EVERY <time> | EVENT <predicate clause>    (long-running queries)
//! ```
//!
//! Example from the paper:
//!
//! ```
//! use contory::query::{CxtQuery, NumNodes, QueryMode, Source};
//! use simkit::SimDuration;
//!
//! let q = CxtQuery::parse(
//!     "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 \
//!      FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25",
//! )?;
//! assert_eq!(q.select, "temperature");
//! assert_eq!(
//!     q.from,
//!     Some(Source::AdHocNetwork { num_nodes: NumNodes::First(10), num_hops: 3 })
//! );
//! assert_eq!(q.freshness, Some(SimDuration::from_secs(30)));
//! assert!(matches!(q.mode, QueryMode::Event(_)));
//! # Ok::<(), contory::query::ParseQueryError>(())
//! ```

mod ast;
mod builder;
mod lexer;
mod parser;

pub use ast::{
    AggFunc, CmpOp, CxtQuery, DurationClause, EventExpr, EventTerm, NumNodes, PredValue,
    QueryMode, Source, WherePredicate,
};
pub use builder::QueryBuilder;
pub use parser::ParseQueryError;
