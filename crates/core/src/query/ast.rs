//! Abstract syntax of context queries, with canonical rendering.

use simkit::SimDuration;
use std::fmt;

/// Comparison operators usable in WHERE and EVENT clauses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to two floats (`Eq`/`Ne` use a small epsilon).
    pub fn eval_f64(self, left: f64, right: f64) -> bool {
        const EPS: f64 = 1e-9;
        match self {
            CmpOp::Eq => (left - right).abs() <= EPS,
            CmpOp::Ne => (left - right).abs() > EPS,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Right-hand side of a WHERE predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum PredValue {
    /// Numeric literal.
    Number(f64),
    /// Textual literal (e.g. `trust=trusted`).
    Text(String),
}

impl fmt::Display for PredValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredValue::Number(n) => write!(f, "{}", fmt_num(*n)),
            PredValue::Text(t) => f.write_str(t),
        }
    }
}

/// One WHERE predicate: `<metadata key> <op> <value>`.
#[derive(Clone, Debug, PartialEq)]
pub struct WherePredicate {
    /// Metadata key (see [`crate::metadata_keys`]).
    pub key: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: PredValue,
}

impl fmt::Display for WherePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.key, self.op, self.value)
    }
}

/// Multiplicity of ad hoc source nodes (`numNodes`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NumNodes {
    /// All nodes that can be discovered.
    All,
    /// The first `k` nodes found.
    First(u32),
}

impl fmt::Display for NumNodes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumNodes::All => f.write_str("all"),
            NumNodes::First(k) => write!(f, "{k}"),
        }
    }
}

/// The FROM clause: which provisioning mechanism / destination to use.
#[derive(Clone, Debug, PartialEq)]
pub enum Source {
    /// Internal sensor-based provisioning.
    IntSensor,
    /// External infrastructure-based provisioning.
    ExtInfra,
    /// Distributed provisioning in an ad hoc network.
    AdHocNetwork {
        /// How many provider nodes to involve.
        num_nodes: NumNodes,
        /// Maximum provider distance in hops.
        num_hops: u32,
    },
    /// A specific entity ("to know when a friend is nearby").
    Entity(String),
    /// A geographic region to monitor ("next exit on the highway").
    Region {
        /// Centre easting, metres.
        x: f64,
        /// Centre northing, metres.
        y: f64,
        /// Radius, metres.
        radius: f64,
    },
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::IntSensor => f.write_str("intSensor"),
            Source::ExtInfra => f.write_str("extInfra"),
            Source::AdHocNetwork {
                num_nodes,
                num_hops,
            } => write!(f, "adHocNetwork({num_nodes},{num_hops})"),
            Source::Entity(e) => write!(f, "entity({e})"),
            Source::Region { x, y, radius } => {
                write!(f, "region({},{},{})", fmt_num(*x), fmt_num(*y), fmt_num(*radius))
            }
        }
    }
}

/// The DURATION clause: "as time (e.g., 1 hour) or as the number of
/// samples that must be collected".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DurationClause {
    /// Query lifetime as wall time.
    Time(SimDuration),
    /// Query lifetime as a sample budget.
    Samples(u32),
}

impl fmt::Display for DurationClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurationClause::Time(d) => f.write_str(&fmt_duration(*d)),
            DurationClause::Samples(n) => write!(f, "{n} samples"),
        }
    }
}

/// Aggregation functions usable in EVENT expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Sample count.
    Count,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
        })
    }
}

/// A term in an EVENT comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum EventTerm {
    /// An aggregate over the collection window, e.g. `AVG(temperature)`.
    Agg {
        /// Aggregation function.
        func: AggFunc,
        /// Context type aggregated.
        field: String,
    },
    /// The latest value of a context type.
    Field(String),
    /// A numeric literal.
    Number(f64),
}

impl fmt::Display for EventTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventTerm::Agg { func, field } => write!(f, "{func}({field})"),
            EventTerm::Field(name) => f.write_str(name),
            EventTerm::Number(n) => f.write_str(&fmt_num(*n)),
        }
    }
}

/// An EVENT condition over collected context data.
#[derive(Clone, Debug, PartialEq)]
pub enum EventExpr {
    /// A comparison between two terms.
    Cmp {
        /// Left term.
        left: EventTerm,
        /// Operator.
        op: CmpOp,
        /// Right term.
        right: EventTerm,
    },
    /// Both sub-expressions must hold.
    And(Box<EventExpr>, Box<EventExpr>),
    /// Either sub-expression must hold.
    Or(Box<EventExpr>, Box<EventExpr>),
}

impl fmt::Display for EventExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventExpr::Cmp { left, op, right } => write!(f, "{left}{op}{right}"),
            EventExpr::And(a, b) => write!(f, "{a} AND {b}"),
            EventExpr::Or(a, b) => write!(f, "({a} OR {b})"),
        }
    }
}

/// Interaction mode: on-demand, periodic (EVERY) or event-based (EVENT).
#[derive(Clone, Debug, PartialEq)]
pub enum QueryMode {
    /// Single round, results returned once.
    OnDemand,
    /// New results every interval.
    Periodic(SimDuration),
    /// New results whenever the condition holds at the provider.
    Event(EventExpr),
}

impl QueryMode {
    /// True for EVERY/EVENT queries.
    pub fn is_long_running(&self) -> bool {
        !matches!(self, QueryMode::OnDemand)
    }
}

/// A parsed context query.
#[derive(Clone, Debug, PartialEq)]
pub struct CxtQuery {
    /// SELECT: requested context type.
    pub select: String,
    /// FROM: requested source (None = middleware decides).
    pub from: Option<Source>,
    /// WHERE: metadata predicates (all must hold).
    pub where_clause: Vec<WherePredicate>,
    /// FRESHNESS: maximum item age.
    pub freshness: Option<SimDuration>,
    /// DURATION: query lifetime.
    pub duration: DurationClause,
    /// EVERY/EVENT/on-demand.
    pub mode: QueryMode,
}

impl CxtQuery {
    /// The paper's cited object size for a context query.
    pub const WIRE_SIZE: usize = 205;

    /// Serialized size in bytes. Queries are fixed-layout objects in the
    /// prototype: 205 bytes (§6.1).
    pub fn wire_size(&self) -> usize {
        Self::WIRE_SIZE
    }
}

impl fmt::Display for CxtQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT {}", self.select)?;
        if let Some(src) = &self.from {
            write!(f, " FROM {src}")?;
        }
        if !self.where_clause.is_empty() {
            write!(f, " WHERE ")?;
            for (i, p) in self.where_clause.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if let Some(fr) = self.freshness {
            write!(f, " FRESHNESS {}", fmt_duration(fr))?;
        }
        write!(f, " DURATION {}", self.duration)?;
        match &self.mode {
            QueryMode::OnDemand => Ok(()),
            QueryMode::Periodic(d) => write!(f, " EVERY {}", fmt_duration(*d)),
            QueryMode::Event(e) => write!(f, " EVENT {e}"),
        }
    }
}

/// Renders a duration in the query language's units (largest exact unit).
pub(crate) fn fmt_duration(d: SimDuration) -> String {
    let us = d.as_micros();
    if us == 0 {
        return "0 sec".to_owned();
    }
    if us % 3_600_000_000 == 0 {
        format!("{} hour", us / 3_600_000_000)
    } else if us % 60_000_000 == 0 {
        format!("{} min", us / 60_000_000)
    } else if us % 1_000_000 == 0 {
        format!("{} sec", us / 1_000_000)
    } else {
        format!("{} msec", us / 1_000)
    }
}

/// Renders a float without a trailing `.0` when integral.
pub(crate) fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Eq.eval_f64(0.2, 0.2));
        assert!(!CmpOp::Eq.eval_f64(0.2, 0.3));
        assert!(CmpOp::Ne.eval_f64(1.0, 2.0));
        assert!(CmpOp::Lt.eval_f64(1.0, 2.0));
        assert!(CmpOp::Le.eval_f64(2.0, 2.0));
        assert!(CmpOp::Gt.eval_f64(3.0, 2.0));
        assert!(CmpOp::Ge.eval_f64(2.0, 2.0));
    }

    #[test]
    fn display_round_trip_of_paper_example() {
        let text = "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 \
                    FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25";
        let q = CxtQuery::parse(text).unwrap();
        assert_eq!(q.to_string(), text);
    }

    #[test]
    fn duration_formatting_picks_largest_unit() {
        assert_eq!(fmt_duration(SimDuration::from_hours(2)), "2 hour");
        assert_eq!(fmt_duration(SimDuration::from_mins(90)), "90 min");
        assert_eq!(fmt_duration(SimDuration::from_secs(45)), "45 sec");
        assert_eq!(fmt_duration(SimDuration::from_millis(250)), "250 msec");
        assert_eq!(fmt_duration(SimDuration::ZERO), "0 sec");
    }

    #[test]
    fn wire_size_is_fixed() {
        let q = CxtQuery::parse("SELECT light DURATION 10 samples").unwrap();
        assert_eq!(q.wire_size(), 205);
    }

    #[test]
    fn mode_long_running() {
        assert!(!QueryMode::OnDemand.is_long_running());
        assert!(QueryMode::Periodic(SimDuration::from_secs(1)).is_long_running());
    }
}
