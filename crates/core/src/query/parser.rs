//! Recursive-descent parser for the query language.

use super::ast::*;
use super::lexer::{lex, Token, TokenKind};
use simkit::SimDuration;
use std::error::Error;
use std::fmt;

/// Error from [`CxtQuery::parse`].
#[derive(Clone, Debug, PartialEq)]
pub struct ParseQueryError {
    /// Byte offset in the query text where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for ParseQueryError {}

impl CxtQuery {
    /// Parses a context query from its textual form.
    ///
    /// # Errors
    ///
    /// Returns [`ParseQueryError`] when the text is not a valid query —
    /// including a missing mandatory SELECT or DURATION clause, clauses
    /// out of order, or both EVERY and EVENT present (they are mutually
    /// exclusive).
    pub fn parse(input: &str) -> Result<CxtQuery, ParseQueryError> {
        let tokens = lex(input).map_err(|e| ParseQueryError {
            offset: e.offset,
            message: e.message,
        })?;
        Parser { tokens, pos: 0 }.query()
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseQueryError {
        let offset = self
            .tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.offset)
            .unwrap_or(0);
        ParseQueryError {
            offset,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseQueryError> {
        match self.bump() {
            Some(TokenKind::Ident(s)) => Ok(s),
            other => Err(self.err(format!(
                "expected {what}, found {}",
                other.map_or("end of query".to_owned(), |t| t.to_string())
            ))),
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<f64, ParseQueryError> {
        match self.bump() {
            Some(TokenKind::Number(n)) => Ok(n),
            other => Err(self.err(format!(
                "expected {what}, found {}",
                other.map_or("end of query".to_owned(), |t| t.to_string())
            ))),
        }
    }

    fn query(&mut self) -> Result<CxtQuery, ParseQueryError> {
        if !self.eat(&TokenKind::Select) {
            return Err(self.err("query must start with SELECT"));
        }
        let select = self.expect_ident("a context type after SELECT")?;

        let from = if self.eat(&TokenKind::From) {
            Some(self.source()?)
        } else {
            None
        };

        let mut where_clause = Vec::new();
        if self.eat(&TokenKind::Where) {
            loop {
                where_clause.push(self.where_predicate()?);
                if !(self.eat(&TokenKind::And) || self.eat(&TokenKind::Comma)) {
                    break;
                }
            }
        }

        let freshness = if self.eat(&TokenKind::Freshness) {
            Some(self.time()?)
        } else {
            None
        };

        if !self.eat(&TokenKind::Duration) {
            return Err(self.err("DURATION clause is mandatory"));
        }
        let duration = self.duration()?;

        let mode = if self.eat(&TokenKind::Every) {
            QueryMode::Periodic(self.time()?)
        } else if self.eat(&TokenKind::Event) {
            QueryMode::Event(self.event_or()?)
        } else {
            QueryMode::OnDemand
        };

        if let Some(t) = self.peek() {
            let msg = if matches!(t, TokenKind::Every | TokenKind::Event) {
                "EVERY and EVENT are mutually exclusive".to_owned()
            } else {
                format!("unexpected {t} after the query")
            };
            return Err(self.err(msg));
        }

        Ok(CxtQuery {
            select,
            from,
            where_clause,
            freshness,
            duration,
            mode,
        })
    }

    fn source(&mut self) -> Result<Source, ParseQueryError> {
        let name_offset = self.tokens.get(self.pos).map(|t| t.offset).unwrap_or(0);
        let name = self.expect_ident("a source after FROM")?;
        match name.as_str() {
            "intSensor" => Ok(Source::IntSensor),
            "extInfra" => Ok(Source::ExtInfra),
            "adHocNetwork" => {
                if !self.eat(&TokenKind::LParen) {
                    // Bare adHocNetwork: all nodes within one hop.
                    return Ok(Source::AdHocNetwork {
                        num_nodes: NumNodes::All,
                        num_hops: 1,
                    });
                }
                let num_nodes = match self.bump() {
                    Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("all") => NumNodes::All,
                    Some(TokenKind::Number(n)) if n >= 1.0 && n.fract() == 0.0 => {
                        NumNodes::First(n as u32)
                    }
                    _ => return Err(self.err("numNodes must be 'all' or a positive integer")),
                };
                if !self.eat(&TokenKind::Comma) {
                    return Err(self.err("expected ',' between numNodes and numHops"));
                }
                let hops = self.expect_number("numHops")?;
                if hops < 1.0 || hops.fract() != 0.0 {
                    return Err(self.err("numHops must be a positive integer"));
                }
                if !self.eat(&TokenKind::RParen) {
                    return Err(self.err("expected ')' after adHocNetwork arguments"));
                }
                Ok(Source::AdHocNetwork {
                    num_nodes,
                    num_hops: hops as u32,
                })
            }
            "entity" => {
                if !self.eat(&TokenKind::LParen) {
                    return Err(self.err("expected '(' after entity"));
                }
                let id = self.expect_ident("an entity identifier")?;
                if !self.eat(&TokenKind::RParen) {
                    return Err(self.err("expected ')' after entity identifier"));
                }
                Ok(Source::Entity(id))
            }
            "region" => {
                if !self.eat(&TokenKind::LParen) {
                    return Err(self.err("expected '(' after region"));
                }
                let x = self.expect_number("region centre x")?;
                if !self.eat(&TokenKind::Comma) {
                    return Err(self.err("expected ',' in region coordinates"));
                }
                let y = self.expect_number("region centre y")?;
                if !self.eat(&TokenKind::Comma) {
                    return Err(self.err("expected ',' in region coordinates"));
                }
                let radius = self.expect_number("region radius")?;
                if radius < 0.0 {
                    return Err(self.err("region radius must be non-negative"));
                }
                if !self.eat(&TokenKind::RParen) {
                    return Err(self.err("expected ')' after region"));
                }
                Ok(Source::Region { x, y, radius })
            }
            other => Err(ParseQueryError {
                offset: name_offset,
                message: format!(
                    "unknown source '{other}' (expected intSensor, extInfra, adHocNetwork, entity or region)"
                ),
            }),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseQueryError> {
        match self.bump() {
            Some(TokenKind::Eq) => Ok(CmpOp::Eq),
            Some(TokenKind::Ne) => Ok(CmpOp::Ne),
            Some(TokenKind::Lt) => Ok(CmpOp::Lt),
            Some(TokenKind::Le) => Ok(CmpOp::Le),
            Some(TokenKind::Gt) => Ok(CmpOp::Gt),
            Some(TokenKind::Ge) => Ok(CmpOp::Ge),
            _ => Err(self.err("expected a comparison operator")),
        }
    }

    fn where_predicate(&mut self) -> Result<WherePredicate, ParseQueryError> {
        let key = self.expect_ident("a metadata key")?;
        let op = self.cmp_op()?;
        let value = match self.bump() {
            Some(TokenKind::Number(n)) => PredValue::Number(n),
            Some(TokenKind::Ident(s)) => PredValue::Text(s),
            _ => return Err(self.err("expected a literal after the operator")),
        };
        Ok(WherePredicate { key, op, value })
    }

    /// `<number> <unit>` where unit ∈ {msec, ms, sec, s, min, hour, h}.
    fn time(&mut self) -> Result<SimDuration, ParseQueryError> {
        let n = self.expect_number("a time value")?;
        if n < 0.0 {
            return Err(self.err("time must be non-negative"));
        }
        let unit = self.expect_ident("a time unit (msec/sec/min/hour)")?;
        let secs = match unit.to_ascii_lowercase().as_str() {
            "ms" | "msec" | "millis" => n / 1e3,
            "s" | "sec" | "secs" | "second" | "seconds" => n,
            "min" | "mins" | "minute" | "minutes" => n * 60.0,
            "h" | "hour" | "hours" => n * 3600.0,
            other => return Err(self.err(format!("unknown time unit '{other}'"))),
        };
        Ok(SimDuration::from_secs_f64(secs))
    }

    /// DURATION value: a time or `<n> samples`.
    fn duration(&mut self) -> Result<DurationClause, ParseQueryError> {
        let n = self.expect_number("a duration value")?;
        let unit = self.expect_ident("a duration unit (time unit or 'samples')")?;
        if unit.eq_ignore_ascii_case("samples") || unit.eq_ignore_ascii_case("sample") {
            if n < 1.0 || n.fract() != 0.0 {
                return Err(self.err("sample count must be a positive integer"));
            }
            return Ok(DurationClause::Samples(n as u32));
        }
        // Re-use the time path by rewinding the two tokens.
        self.pos -= 2;
        Ok(DurationClause::Time(self.time()?))
    }

    /// `or := and (OR and)*`
    fn event_or(&mut self) -> Result<EventExpr, ParseQueryError> {
        let mut left = self.event_and()?;
        while self.eat(&TokenKind::Or) {
            let right = self.event_and()?;
            left = EventExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    /// `and := cmp (AND cmp)*`
    fn event_and(&mut self) -> Result<EventExpr, ParseQueryError> {
        let mut left = self.event_cmp()?;
        while self.eat(&TokenKind::And) {
            let right = self.event_cmp()?;
            left = EventExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    /// `cmp := term op term | '(' or ')'`
    fn event_cmp(&mut self) -> Result<EventExpr, ParseQueryError> {
        if self.eat(&TokenKind::LParen) {
            let inner = self.event_or()?;
            if !self.eat(&TokenKind::RParen) {
                return Err(self.err("expected ')' in EVENT expression"));
            }
            return Ok(inner);
        }
        let left = self.event_term()?;
        let op = self.cmp_op()?;
        let right = self.event_term()?;
        Ok(EventExpr::Cmp { left, op, right })
    }

    fn event_term(&mut self) -> Result<EventTerm, ParseQueryError> {
        match self.bump() {
            Some(TokenKind::Number(n)) => Ok(EventTerm::Number(n)),
            Some(TokenKind::Ident(name)) => {
                let func = match name.to_ascii_uppercase().as_str() {
                    "AVG" => Some(AggFunc::Avg),
                    "MIN" => Some(AggFunc::Min),
                    "MAX" => Some(AggFunc::Max),
                    "SUM" => Some(AggFunc::Sum),
                    "COUNT" => Some(AggFunc::Count),
                    _ => None,
                };
                match func {
                    Some(func) if self.eat(&TokenKind::LParen) => {
                        let field = self.expect_ident("a context type inside the aggregate")?;
                        if !self.eat(&TokenKind::RParen) {
                            return Err(self.err("expected ')' after aggregate argument"));
                        }
                        Ok(EventTerm::Agg { func, field })
                    }
                    _ => Ok(EventTerm::Field(name)),
                }
            }
            _ => Err(self.err("expected a term in the EVENT expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example() {
        let q = CxtQuery::parse(
            "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 \
             FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25",
        )
        .unwrap();
        assert_eq!(q.select, "temperature");
        assert_eq!(
            q.from,
            Some(Source::AdHocNetwork {
                num_nodes: NumNodes::First(10),
                num_hops: 3
            })
        );
        assert_eq!(q.where_clause.len(), 1);
        assert_eq!(q.where_clause[0].key, "accuracy");
        assert_eq!(q.freshness, Some(SimDuration::from_secs(30)));
        assert_eq!(q.duration, DurationClause::Time(SimDuration::from_hours(1)));
        match &q.mode {
            QueryMode::Event(EventExpr::Cmp { left, op, right }) => {
                assert_eq!(
                    left,
                    &EventTerm::Agg {
                        func: AggFunc::Avg,
                        field: "temperature".into()
                    }
                );
                assert_eq!(*op, CmpOp::Gt);
                assert_eq!(right, &EventTerm::Number(25.0));
            }
            other => panic!("wrong mode {other:?}"),
        }
    }

    #[test]
    fn parses_the_merging_example_queries() {
        // q1 and q2 of §4.3.
        let q1 = CxtQuery::parse(
            "SELECT temperature FROM adHocNetwork(all,3) FRESHNESS 10 sec \
             DURATION 1 hour EVERY 15 sec",
        )
        .unwrap();
        assert_eq!(
            q1.from,
            Some(Source::AdHocNetwork {
                num_nodes: NumNodes::All,
                num_hops: 3
            })
        );
        assert_eq!(q1.mode, QueryMode::Periodic(SimDuration::from_secs(15)));
        let q2 = CxtQuery::parse(
            "SELECT temperature FROM adHocNetwork(all,1) FRESHNESS 20 sec \
             DURATION 2 hour EVERY 30 sec",
        )
        .unwrap();
        assert_eq!(q2.duration, DurationClause::Time(SimDuration::from_hours(2)));
    }

    #[test]
    fn minimal_query_is_select_plus_duration() {
        let q = CxtQuery::parse("SELECT location DURATION 50 samples").unwrap();
        assert_eq!(q.select, "location");
        assert_eq!(q.from, None);
        assert!(q.where_clause.is_empty());
        assert_eq!(q.freshness, None);
        assert_eq!(q.duration, DurationClause::Samples(50));
        assert_eq!(q.mode, QueryMode::OnDemand);
    }

    #[test]
    fn parses_entity_and_region_sources() {
        let q = CxtQuery::parse("SELECT location FROM entity(friend-7) DURATION 1 hour").unwrap();
        assert_eq!(q.from, Some(Source::Entity("friend-7".into())));
        let q =
            CxtQuery::parse("SELECT wind FROM region(1500,-200,800) DURATION 10 min").unwrap();
        assert_eq!(
            q.from,
            Some(Source::Region {
                x: 1500.0,
                y: -200.0,
                radius: 800.0
            })
        );
    }

    #[test]
    fn bare_adhoc_defaults_to_one_hop_all() {
        let q = CxtQuery::parse("SELECT noise FROM adHocNetwork DURATION 1 min").unwrap();
        assert_eq!(
            q.from,
            Some(Source::AdHocNetwork {
                num_nodes: NumNodes::All,
                num_hops: 1
            })
        );
    }

    #[test]
    fn where_supports_and_and_comma_and_text() {
        let q = CxtQuery::parse(
            "SELECT temperature WHERE accuracy<=0.5 AND trust=trusted, correctness>0.8 \
             DURATION 1 min",
        )
        .unwrap();
        assert_eq!(q.where_clause.len(), 3);
        assert_eq!(q.where_clause[1].value, PredValue::Text("trusted".into()));
        assert_eq!(q.where_clause[2].op, CmpOp::Gt);
    }

    #[test]
    fn event_expressions_with_boolean_structure() {
        let q = CxtQuery::parse(
            "SELECT temperature DURATION 1 hour \
             EVENT AVG(temperature)>25 AND MIN(temperature)>10 OR COUNT(temperature)>=5",
        )
        .unwrap();
        match q.mode {
            QueryMode::Event(EventExpr::Or(a, _b)) => {
                assert!(matches!(*a, EventExpr::And(_, _)));
            }
            other => panic!("wrong structure {other:?}"),
        }
    }

    #[test]
    fn time_units_accepted() {
        for (text, secs) in [
            ("500 msec", 0.5),
            ("30 sec", 30.0),
            ("2 min", 120.0),
            ("1 hour", 3600.0),
        ] {
            let q = CxtQuery::parse(&format!("SELECT x DURATION {text}")).unwrap();
            assert_eq!(
                q.duration,
                DurationClause::Time(SimDuration::from_secs_f64(secs)),
                "{text}"
            );
        }
    }

    #[test]
    fn rejects_malformed_queries() {
        // missing SELECT
        assert!(CxtQuery::parse("DURATION 1 hour").is_err());
        // missing DURATION (mandatory)
        let err = CxtQuery::parse("SELECT temperature EVERY 5 sec").unwrap_err();
        assert!(err.message.contains("DURATION"), "{err}");
        // EVERY and EVENT together
        let err = CxtQuery::parse(
            "SELECT t DURATION 1 hour EVERY 5 sec EVENT AVG(t)>1",
        )
        .unwrap_err();
        assert!(err.message.contains("mutually exclusive"), "{err}");
        // unknown source
        assert!(CxtQuery::parse("SELECT t FROM bogusSource DURATION 1 min").is_err());
        // bad unit
        assert!(CxtQuery::parse("SELECT t DURATION 3 fortnights").is_err());
        // zero hops
        assert!(CxtQuery::parse("SELECT t FROM adHocNetwork(all,0) DURATION 1 min").is_err());
        // trailing garbage
        assert!(CxtQuery::parse("SELECT t DURATION 1 min banana").is_err());
        // negative freshness
        assert!(CxtQuery::parse("SELECT t FRESHNESS -5 sec DURATION 1 min").is_err());
    }

    #[test]
    fn error_offsets_are_useful() {
        let err = CxtQuery::parse("SELECT t FROM bogus DURATION 1 min").unwrap_err();
        assert_eq!(err.offset, 14);
        assert!(err.to_string().contains("byte 14"));
    }
}
