//! The CxtAggregator (§4.3): "can be used to combine context items
//! collected from single or multiple CxtProviders" — the mechanism behind
//! the paper's claim that combining results from different context
//! mechanisms "allows applications to partly relieve the uncertainty of
//! single context sources".

use crate::item::{CxtItem, CxtValue, Metadata, Trust};
use simkit::SimTime;
use std::collections::BTreeMap;

/// How to fuse a set of items of the same type into one estimate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregationStrategy {
    /// Keep the newest item as-is.
    MostRecent,
    /// Unweighted mean of numeric values.
    Average,
    /// Inverse-variance weighting: more accurate sources count more.
    WeightedByAccuracy,
    /// Most frequent textual value (categorical context).
    MajorityVote,
}

/// Stateless fusion helper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CxtAggregator;

impl CxtAggregator {
    /// Creates an aggregator.
    pub fn new() -> Self {
        CxtAggregator
    }

    /// Fuses `items` (all of the same context type) into a single item
    /// using `strategy`. Returns `None` when `items` is empty, when a
    /// numeric strategy finds no numeric values, or when items disagree
    /// on type.
    pub fn combine(
        &self,
        items: &[CxtItem],
        strategy: AggregationStrategy,
        now: SimTime,
    ) -> Option<CxtItem> {
        let first = items.first()?;
        if !items.iter().all(|i| i.cxt_type == first.cxt_type) {
            return None;
        }
        obskit::count("aggregator_combines", 1);
        obskit::count("aggregator_items_fused", items.len() as u64);
        match strategy {
            AggregationStrategy::MostRecent => {
                items.iter().max_by_key(|i| i.timestamp).cloned()
            }
            AggregationStrategy::Average => {
                let values: Vec<f64> = items.iter().filter_map(|i| i.value.as_f64()).collect();
                if values.is_empty() {
                    return None;
                }
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                Some(self.fused(first, items, mean, now))
            }
            AggregationStrategy::WeightedByAccuracy => {
                // Inverse-variance weighting; items without accuracy get
                // a pessimistic default weight.
                const DEFAULT_ACCURACY: f64 = 10.0;
                let mut num = 0.0;
                let mut den = 0.0;
                let mut fused_var_inv = 0.0;
                let mut any = false;
                for i in items {
                    let Some(v) = i.value.as_f64() else { continue };
                    let acc = i.metadata.accuracy.unwrap_or(DEFAULT_ACCURACY).max(1e-6);
                    let w = 1.0 / (acc * acc);
                    num += w * v;
                    den += w;
                    fused_var_inv += w;
                    any = true;
                }
                if !any {
                    return None;
                }
                let mean = num / den;
                let mut out = self.fused(first, items, mean, now);
                out.metadata.accuracy = Some((1.0 / fused_var_inv).sqrt());
                Some(out)
            }
            AggregationStrategy::MajorityVote => {
                let mut votes: BTreeMap<String, usize> = BTreeMap::new();
                for i in items {
                    *votes.entry(i.value.to_string()).or_default() += 1;
                }
                let (winner, _) = votes.into_iter().max_by_key(|(_, n)| *n)?;
                let template = items
                    .iter()
                    .filter(|i| i.value.to_string() == winner)
                    .max_by_key(|i| i.timestamp)?;
                Some(template.clone())
            }
        }
    }

    fn fused(&self, first: &CxtItem, items: &[CxtItem], mean: f64, now: SimTime) -> CxtItem {
        let unit = match &first.value {
            CxtValue::Number { unit, .. } => unit.clone(),
            _ => String::new(),
        };
        let mut metadata = Metadata::none();
        // Accuracy of an unweighted mean: the worst input accuracy is a
        // safe bound.
        metadata.accuracy = items
            .iter()
            .filter_map(|i| i.metadata.accuracy)
            .fold(None, |acc: Option<f64>, a| Some(acc.map_or(a, |m| m.max(a))));
        // Trust of a fusion is the weakest input trust.
        metadata.trust = items
            .iter()
            .map(|i| i.metadata.trust)
            .min()
            .unwrap_or(Trust::Unknown);
        CxtItem {
            cxt_type: first.cxt_type.clone(),
            value: CxtValue::Number { value: mean, unit },
            timestamp: now,
            lifetime: None,
            source: Some(crate::item::SourceId::new(format!(
                "aggregate({} items)",
                items.len()
            ))),
            metadata,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(v: f64, acc: f64, at: u64) -> CxtItem {
        CxtItem::new(
            "temperature",
            CxtValue::quantity(v, "C"),
            SimTime::from_secs(at),
        )
        .with_accuracy(acc)
        .with_trust(Trust::Community)
    }

    #[test]
    fn most_recent_picks_newest() {
        let agg = CxtAggregator::new();
        let fused = agg
            .combine(
                &[item(10.0, 1.0, 5), item(20.0, 1.0, 9), item(15.0, 1.0, 7)],
                AggregationStrategy::MostRecent,
                SimTime::from_secs(10),
            )
            .unwrap();
        assert_eq!(fused.value.as_f64(), Some(20.0));
    }

    #[test]
    fn average_is_unweighted() {
        let agg = CxtAggregator::new();
        let fused = agg
            .combine(
                &[item(10.0, 0.1, 1), item(20.0, 5.0, 2)],
                AggregationStrategy::Average,
                SimTime::from_secs(3),
            )
            .unwrap();
        assert_eq!(fused.value.as_f64(), Some(15.0));
        // worst-accuracy bound
        assert_eq!(fused.metadata.accuracy, Some(5.0));
        assert_eq!(fused.timestamp, SimTime::from_secs(3));
    }

    #[test]
    fn weighted_fusion_prefers_accurate_sources() {
        let agg = CxtAggregator::new();
        let fused = agg
            .combine(
                &[item(10.0, 0.1, 1), item(20.0, 10.0, 2)],
                AggregationStrategy::WeightedByAccuracy,
                SimTime::from_secs(3),
            )
            .unwrap();
        let v = fused.value.as_f64().unwrap();
        assert!((v - 10.0).abs() < 0.01, "fused {v} should hug the accurate source");
        // fused accuracy is better than the best single source
        assert!(fused.metadata.accuracy.unwrap() <= 0.1);
    }

    #[test]
    fn majority_vote_on_categorical_values() {
        let agg = CxtAggregator::new();
        let mk = |s: &str, at: u64| {
            CxtItem::new("activity", CxtValue::Text(s.into()), SimTime::from_secs(at))
        };
        let fused = agg
            .combine(
                &[mk("sailing", 1), mk("walking", 2), mk("sailing", 3)],
                AggregationStrategy::MajorityVote,
                SimTime::from_secs(4),
            )
            .unwrap();
        assert_eq!(fused.value, CxtValue::Text("sailing".into()));
        assert_eq!(fused.timestamp, SimTime::from_secs(3), "newest of the winners");
    }

    #[test]
    fn empty_and_mixed_inputs() {
        let agg = CxtAggregator::new();
        assert!(agg
            .combine(&[], AggregationStrategy::Average, SimTime::ZERO)
            .is_none());
        let mixed = [
            item(1.0, 1.0, 1),
            CxtItem::new("wind", CxtValue::number(2.0), SimTime::ZERO),
        ];
        assert!(agg
            .combine(&mixed, AggregationStrategy::Average, SimTime::ZERO)
            .is_none());
        // text-only values cannot be averaged
        let texts = [CxtItem::new(
            "activity",
            CxtValue::Text("sailing".into()),
            SimTime::ZERO,
        )];
        assert!(agg
            .combine(&texts, AggregationStrategy::Average, SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn fusion_trust_is_weakest_input() {
        let agg = CxtAggregator::new();
        let mut a = item(10.0, 1.0, 1);
        a.metadata.trust = Trust::Trusted;
        let mut b = item(20.0, 1.0, 2);
        b.metadata.trust = Trust::Unknown;
        let fused = agg
            .combine(&[a, b], AggregationStrategy::Average, SimTime::from_secs(3))
            .unwrap();
        assert_eq!(fused.metadata.trust, Trust::Unknown);
    }
}
