//! Control policies: `contextRule`s (§4.3).
//!
//! "Control policies are formulated as contextRules consisting of a
//! condition and an action statement. Conditions are articulated as
//! Boolean expressions, and the operators currently supported are equal,
//! notEqual, moreThan, and lessThan. An example of condition is
//! `<batteryLevel, equal, low>`. Through and and or operators, elementary
//! conditions can be combined. … Actions currently supported are
//! reducePower, reduceMemory, and reduceLoad."

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Operators of the rules vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleOp {
    /// `equal`
    Equal,
    /// `notEqual`
    NotEqual,
    /// `moreThan`
    MoreThan,
    /// `lessThan`
    LessThan,
}

impl RuleOp {
    fn parse(s: &str) -> Option<RuleOp> {
        match s {
            "equal" => Some(RuleOp::Equal),
            "notEqual" => Some(RuleOp::NotEqual),
            "moreThan" => Some(RuleOp::MoreThan),
            "lessThan" => Some(RuleOp::LessThan),
            _ => None,
        }
    }
}

impl fmt::Display for RuleOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RuleOp::Equal => "equal",
            RuleOp::NotEqual => "notEqual",
            RuleOp::MoreThan => "moreThan",
            RuleOp::LessThan => "lessThan",
        })
    }
}

/// A status-variable value.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleValue {
    /// Numeric status (e.g. `memoryUtilization`).
    Number(f64),
    /// Categorical status (e.g. `batteryLevel = low`).
    Text(String),
}

impl fmt::Display for RuleValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleValue::Number(n) => write!(f, "{n}"),
            RuleValue::Text(t) => f.write_str(t),
        }
    }
}

/// A Boolean condition over system status variables.
#[derive(Clone, Debug, PartialEq)]
pub enum Condition {
    /// `<variable, op, value>`
    Cmp {
        /// Status variable name.
        variable: String,
        /// Operator.
        op: RuleOp,
        /// Literal to compare with.
        value: RuleValue,
    },
    /// Both must hold.
    And(Box<Condition>, Box<Condition>),
    /// Either must hold.
    Or(Box<Condition>, Box<Condition>),
}

/// Failure to parse a condition's text form.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseConditionError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseConditionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "condition parse error: {}", self.message)
    }
}

impl Error for ParseConditionError {}

impl Condition {
    /// Builds an elementary comparison.
    pub fn cmp(variable: impl Into<String>, op: RuleOp, value: RuleValue) -> Self {
        Condition::Cmp {
            variable: variable.into(),
            op,
            value,
        }
    }

    /// Combines with AND.
    pub fn and(self, other: Condition) -> Self {
        Condition::And(Box::new(self), Box::new(other))
    }

    /// Combines with OR.
    pub fn or(self, other: Condition) -> Self {
        Condition::Or(Box::new(self), Box::new(other))
    }

    /// Parses the paper's text form:
    /// `<batteryLevel, equal, low> and <memoryUtilization, moreThan, 0.8>`.
    /// `and` binds tighter than `or`; both are case-insensitive.
    ///
    /// # Errors
    ///
    /// Returns [`ParseConditionError`] for malformed input.
    pub fn parse(text: &str) -> Result<Condition, ParseConditionError> {
        let mut tokens = tokenize(text)?;
        tokens.reverse(); // pop() from the front
        let cond = parse_or(&mut tokens)?;
        if !tokens.is_empty() {
            return Err(ParseConditionError {
                message: "trailing input after condition".into(),
            });
        }
        Ok(cond)
    }

    /// Evaluates against the system status. Comparisons on unknown
    /// variables are false.
    pub fn eval(&self, status: &SystemStatus) -> bool {
        match self {
            Condition::Cmp {
                variable,
                op,
                value,
            } => match (status.get(variable), value) {
                (Some(RuleValue::Number(actual)), RuleValue::Number(target)) => match op {
                    RuleOp::Equal => (actual - target).abs() <= 1e-9,
                    RuleOp::NotEqual => (actual - target).abs() > 1e-9,
                    RuleOp::MoreThan => *actual > *target,
                    RuleOp::LessThan => *actual < *target,
                },
                (Some(RuleValue::Text(actual)), RuleValue::Text(target)) => match op {
                    RuleOp::Equal => actual == target,
                    RuleOp::NotEqual => actual != target,
                    _ => false,
                },
                _ => false,
            },
            Condition::And(a, b) => a.eval(status) && b.eval(status),
            Condition::Or(a, b) => a.eval(status) || b.eval(status),
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Cmp {
                variable,
                op,
                value,
            } => write!(f, "<{variable}, {op}, {value}>"),
            Condition::And(a, b) => write!(f, "{a} and {b}"),
            // No parentheses in the text form (the grammar has none):
            // `and` binds tighter, which re-parses with identical
            // semantics.
            Condition::Or(a, b) => write!(f, "{a} or {b}"),
        }
    }
}

enum CondToken {
    Cmp(Condition),
    And,
    Or,
}

fn tokenize(text: &str) -> Result<Vec<CondToken>, ParseConditionError> {
    let mut out = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        if let Some(tail) = rest.strip_prefix('<') {
            let Some(end) = tail.find('>') else {
                return Err(ParseConditionError {
                    message: "unterminated '<...>' comparison".into(),
                });
            };
            let inner = &tail[..end];
            let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
            if parts.len() != 3 {
                return Err(ParseConditionError {
                    message: format!("expected <variable, op, value>, got <{inner}>"),
                });
            }
            let op = RuleOp::parse(parts[1]).ok_or_else(|| ParseConditionError {
                message: format!("unknown operator '{}'", parts[1]),
            })?;
            let value = match parts[2].parse::<f64>() {
                Ok(n) => RuleValue::Number(n),
                Err(_) => RuleValue::Text(parts[2].to_owned()),
            };
            out.push(CondToken::Cmp(Condition::cmp(parts[0], op, value)));
            rest = tail[end + 1..].trim_start();
        } else {
            let word_end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            let (word, tail) = rest.split_at(word_end);
            match word.to_ascii_lowercase().as_str() {
                "and" => out.push(CondToken::And),
                "or" => out.push(CondToken::Or),
                other => {
                    return Err(ParseConditionError {
                        message: format!("unexpected token '{other}'"),
                    })
                }
            }
            rest = tail.trim_start();
        }
    }
    Ok(out)
}

fn parse_or(tokens: &mut Vec<CondToken>) -> Result<Condition, ParseConditionError> {
    let mut left = parse_and(tokens)?;
    while matches!(tokens.last(), Some(CondToken::Or)) {
        tokens.pop();
        let right = parse_and(tokens)?;
        left = left.or(right);
    }
    Ok(left)
}

fn parse_and(tokens: &mut Vec<CondToken>) -> Result<Condition, ParseConditionError> {
    let mut left = parse_leaf(tokens)?;
    while matches!(tokens.last(), Some(CondToken::And)) {
        tokens.pop();
        let right = parse_leaf(tokens)?;
        left = left.and(right);
    }
    Ok(left)
}

fn parse_leaf(tokens: &mut Vec<CondToken>) -> Result<Condition, ParseConditionError> {
    match tokens.pop() {
        Some(CondToken::Cmp(c)) => Ok(c),
        _ => Err(ParseConditionError {
            message: "expected a '<variable, op, value>' comparison".into(),
        }),
    }
}

/// Actions a rule can trigger.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RuleAction {
    /// Suspend or downgrade energy-hungry provisioning (e.g. terminate
    /// 2G/3G queries, replace WiFi multi-hop with BT one-hop).
    ReducePower,
    /// Trim local context storage.
    ReduceMemory,
    /// Lower provisioning rates.
    ReduceLoad,
}

impl fmt::Display for RuleAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RuleAction::ReducePower => crate::vocab::rule_actions::REDUCE_POWER,
            RuleAction::ReduceMemory => crate::vocab::rule_actions::REDUCE_MEMORY,
            RuleAction::ReduceLoad => crate::vocab::rule_actions::REDUCE_LOAD,
        })
    }
}

/// A control policy rule: when the condition holds, the action becomes
/// active and is enforced by the `ContextFactory`.
#[derive(Clone, Debug, PartialEq)]
pub struct ContextRule {
    /// Trigger condition.
    pub condition: Condition,
    /// Action to enforce while the condition holds.
    pub action: RuleAction,
}

impl ContextRule {
    /// Creates a rule.
    pub fn new(condition: Condition, action: RuleAction) -> Self {
        ContextRule { condition, action }
    }
}

impl fmt::Display for ContextRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "when {} do {}", self.condition, self.action)
    }
}

/// Snapshot of system status variables rules are evaluated against.
///
/// Well-known variables maintained by the `ResourcesMonitor`:
/// `batteryLevel` (low/medium/high), `memoryUtilization` (0–1),
/// `activeQueries` (count).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SystemStatus {
    vars: BTreeMap<String, RuleValue>,
}

impl SystemStatus {
    /// Creates an empty status.
    pub fn new() -> Self {
        SystemStatus::default()
    }

    /// Sets a variable.
    pub fn set(&mut self, variable: impl Into<String>, value: RuleValue) {
        self.vars.insert(variable.into(), value);
    }

    /// Reads a variable.
    pub fn get(&self, variable: &str) -> Option<&RuleValue> {
        self.vars.get(variable)
    }

    /// The actions of all rules whose conditions currently hold.
    pub fn active_actions(&self, rules: &[ContextRule]) -> Vec<RuleAction> {
        let mut actions: Vec<RuleAction> = Vec::new();
        for rule in rules.iter().filter(|r| r.condition.eval(self)) {
            if !actions.contains(&rule.action) {
                actions.push(rule.action);
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(battery: &str, mem: f64) -> SystemStatus {
        let mut s = SystemStatus::new();
        s.set("batteryLevel", RuleValue::Text(battery.into()));
        s.set("memoryUtilization", RuleValue::Number(mem));
        s
    }

    #[test]
    fn parses_the_paper_example_condition() {
        let c = Condition::parse("<batteryLevel, equal, low>").unwrap();
        assert!(c.eval(&status("low", 0.2)));
        assert!(!c.eval(&status("high", 0.2)));
    }

    #[test]
    fn and_or_combinations() {
        let c = Condition::parse(
            "<batteryLevel, equal, low> and <memoryUtilization, moreThan, 0.5>",
        )
        .unwrap();
        assert!(!c.eval(&status("low", 0.2)));
        assert!(c.eval(&status("low", 0.8)));
        let c = Condition::parse(
            "<batteryLevel, equal, low> or <memoryUtilization, moreThan, 0.5>",
        )
        .unwrap();
        assert!(c.eval(&status("high", 0.8)));
        assert!(!c.eval(&status("high", 0.2)));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        // a or (b and c)
        let c = Condition::parse(
            "<batteryLevel, equal, low> or <batteryLevel, equal, medium> and \
             <memoryUtilization, moreThan, 0.5>",
        )
        .unwrap();
        assert!(c.eval(&status("low", 0.0)));
        assert!(c.eval(&status("medium", 0.9)));
        assert!(!c.eval(&status("medium", 0.1)));
    }

    #[test]
    fn numeric_operators() {
        let more = Condition::parse("<memoryUtilization, moreThan, 0.5>").unwrap();
        let less = Condition::parse("<memoryUtilization, lessThan, 0.5>").unwrap();
        let ne = Condition::parse("<memoryUtilization, notEqual, 0.5>").unwrap();
        assert!(more.eval(&status("x", 0.6)));
        assert!(less.eval(&status("x", 0.4)));
        assert!(ne.eval(&status("x", 0.4)));
        assert!(!ne.eval(&status("x", 0.5)));
    }

    #[test]
    fn unknown_variable_is_false() {
        let c = Condition::parse("<nosuch, equal, 1>").unwrap();
        assert!(!c.eval(&SystemStatus::new()));
    }

    #[test]
    fn type_mismatch_is_false() {
        let c = Condition::parse("<batteryLevel, moreThan, 5>").unwrap();
        assert!(!c.eval(&status("low", 0.0)));
    }

    #[test]
    fn parse_errors() {
        assert!(Condition::parse("").is_err());
        assert!(Condition::parse("<a, equal>").is_err());
        assert!(Condition::parse("<a, sortaEqualish, 1>").is_err());
        assert!(Condition::parse("<a, equal, 1> xor <b, equal, 2>").is_err());
        assert!(Condition::parse("<a, equal, 1> and").is_err());
        assert!(Condition::parse("<a, equal, 1").is_err());
    }

    #[test]
    fn display_round_trips() {
        let text = "<batteryLevel, equal, low> and <memoryUtilization, moreThan, 0.8>";
        let c = Condition::parse(text).unwrap();
        let again = Condition::parse(&c.to_string()).unwrap();
        assert_eq!(c, again);
    }

    #[test]
    fn active_actions_dedup() {
        let rules = vec![
            ContextRule::new(
                Condition::parse("<batteryLevel, equal, low>").unwrap(),
                RuleAction::ReducePower,
            ),
            ContextRule::new(
                Condition::parse("<memoryUtilization, moreThan, 0.9>").unwrap(),
                RuleAction::ReduceMemory,
            ),
            ContextRule::new(
                Condition::parse("<batteryLevel, notEqual, high>").unwrap(),
                RuleAction::ReducePower,
            ),
        ];
        let s = status("low", 0.95);
        let actions = s.active_actions(&rules);
        assert_eq!(
            actions,
            vec![RuleAction::ReducePower, RuleAction::ReduceMemory]
        );
        let s = status("high", 0.1);
        assert!(s.active_actions(&rules).is_empty());
    }

    #[test]
    fn rule_display() {
        let r = ContextRule::new(
            Condition::parse("<batteryLevel, equal, low>").unwrap(),
            RuleAction::ReducePower,
        );
        assert_eq!(r.to_string(), "when <batteryLevel, equal, low> do reducePower");
    }
}
