//! # Contory
//!
//! A Rust reproduction of **Contory: A Middleware for the Provisioning of
//! Context Information on Smart Phones** (Oriana Riva, MIDDLEWARE 2006).
//!
//! Contory provides context-aware applications with a single, declarative
//! way to obtain context items — *"SELECT temperature FROM
//! adHocNetwork(10,3) WHERE accuracy=0.2 FRESHNESS 30 sec DURATION 1 hour
//! EVENT AVG(temperature)>25"* — while the middleware chooses and manages
//! the underlying provisioning mechanism:
//!
//! - **internal sensor-based** (`intSensor`): sensors on the device or
//!   attached over Bluetooth (e.g. a BT-GPS),
//! - **external infrastructure-based** (`extInfra`): a remote context
//!   service reached over 2G/3G,
//! - **distributed in ad hoc networks** (`adHocNetwork`): one-hop
//!   Bluetooth or multi-hop WiFi via Smart Messages.
//!
//! The architecture follows the paper's Fig. 2: a [`ContextFactory`]
//! fronting per-mechanism `Facade`s (which aggregate similar queries),
//! `CxtProvider`s doing the actual provisioning behind [`refs`]
//! (Reference) traits, a [`QueryManager`], a [`CxtRepository`], a
//! [`CxtPublisher`], a [`ResourcesMonitor`] driving transparent failover
//! between mechanisms, an [`AccessController`], and `contextRule` control
//! policies ([`policy`]).
//!
//! The crate is platform-agnostic above the [`refs`] traits: the
//! simulated smart-phone platform lives in `contory-testbed`, which is
//! also where the paper's testbed experiments run.
//!
//! ## Quick start
//!
//! ```
//! use contory::query::CxtQuery;
//!
//! let q = CxtQuery::parse(
//!     "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 \
//!      FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25",
//! )?;
//! assert_eq!(q.select, "temperature");
//! # Ok::<(), contory::query::ParseQueryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod aggregator;
pub mod backoff;
mod client;
mod error;
mod facade;
mod factory;
pub mod failover;
mod item;
mod manager;
pub mod merge;
mod monitor;
pub mod policy;
mod predicate;
mod providers;
mod publisher;
pub mod query;
pub mod refs;
mod repository;
pub mod vocab;

pub use access::{AccessController, AccessDecision, AuditEntry, AuditVerdict, SecurityMode};
pub use aggregator::{AggregationStrategy, CxtAggregator};
pub use backoff::{BackoffPolicy, BackoffState};
pub use client::{Client, ClientEvent, CollectingClient};
pub use error::ContoryError;
pub use facade::Facade;
pub use factory::{ContextFactory, FactoryConfig, Mechanism, QueryId};
pub use failover::{FailoverConfig, FailoverReport, FailoverTracker, QueryFailover};
pub use item::{CxtItem, CxtValue, Metadata, SourceId, Trust};
pub use manager::QueryManager;
pub use monitor::{ResourceEvent, ResourceLevel, ResourcesMonitor};
pub use predicate::EventWindow;
pub use publisher::CxtPublisher;
pub use repository::CxtRepository;
pub use vocab::{cxt_types, metadata_keys, operators, rule_actions, Interner, Sym};
