//! Query aggregation: clustering, merging and post-extraction (§4.3).
//!
//! "To avoid redundancy and keep the number of active queries minimal,
//! the Facade performs query aggregation": similar queries are merged
//! into one *covering* query handed to a single provider, and the
//! provider's results are *post-extracted* per original query.
//!
//! Clustering follows the paper's simplification of the Crespo et al.
//! algorithm: queries with the same SELECT clause land in the same
//! cluster. Merging then applies clause-specific rules, reproduced from
//! the paper's q1+q2→q3 example:
//!
//! | clause    | rule                                        |
//! |-----------|---------------------------------------------|
//! | FROM      | widest scope (max hops, `all` ⊔ `k` nodes)  |
//! | WHERE     | loosest common predicates                   |
//! | FRESHNESS | loosest (maximum age)                       |
//! | DURATION  | longest                                     |
//! | EVERY     | fastest (minimum period)                    |
//! | EVENT     | disjunction of the member conditions        |
//!
//! The merged query *covers* each member: every item a member should see
//! is produced by the merged query, and [`post_extract`] filters the
//! covering stream back down with the member's own WHERE and FRESHNESS.

use crate::item::CxtItem;
use crate::predicate::matches_where;
use crate::query::{
    CmpOp, CxtQuery, DurationClause, EventExpr, NumNodes, PredValue, QueryMode, Source,
    WherePredicate,
};
use simkit::SimTime;

/// Clustering key: queries sharing it may be merged (the paper puts
/// "queries with the same SELECT clause" in one cluster; the interaction
/// mode must also be compatible, which the paper's example satisfies
/// implicitly since both q1 and q2 are EVERY queries).
pub(crate) fn cluster_key(q: &CxtQuery) -> (String, ModeKind) {
    (q.select.clone(), ModeKind::of(&q.mode))
}

/// Coarse interaction-mode class used for clustering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum ModeKind {
    OnDemand,
    Periodic,
    Event,
}

impl ModeKind {
    pub(crate) fn of(mode: &QueryMode) -> ModeKind {
        match mode {
            QueryMode::OnDemand => ModeKind::OnDemand,
            QueryMode::Periodic(_) => ModeKind::Periodic,
            QueryMode::Event(_) => ModeKind::Event,
        }
    }
}

/// Attempts to merge two queries into a covering query.
///
/// Returns `None` when the queries are not mergeable: different SELECT,
/// incompatible interaction modes, or FROM clauses naming different
/// mechanisms / destinations.
///
/// The merged query *covers* both inputs: every item either member should
/// receive is produced by the merged query (then [`post_extract`] filters
/// it back down per member).
pub fn try_merge(a: &CxtQuery, b: &CxtQuery) -> Option<CxtQuery> {
    if cluster_key(a) != cluster_key(b) {
        return None;
    }
    let from = merge_from(&a.from, &b.from)?;
    let freshness = match (a.freshness, b.freshness) {
        (Some(x), Some(y)) => Some(x.max(y)),
        // One member has no freshness bound: the covering query must not
        // have one either.
        _ => None,
    };
    let duration = merge_duration(a.duration, b.duration);
    let mode = merge_mode(&a.mode, &b.mode)?;
    Some(CxtQuery {
        select: a.select.clone(),
        from,
        where_clause: merge_where(&a.where_clause, &b.where_clause),
        freshness,
        duration,
        mode,
    })
}

fn merge_from(a: &Option<Source>, b: &Option<Source>) -> Option<Option<Source>> {
    match (a, b) {
        (None, None) => Some(None),
        // An unconstrained member dominates: leave mechanism choice free.
        (None, Some(_)) | (Some(_), None) => Some(None),
        (Some(x), Some(y)) => merge_sources(x, y).map(Some),
    }
}

fn merge_sources(a: &Source, b: &Source) -> Option<Source> {
    match (a, b) {
        (Source::IntSensor, Source::IntSensor) => Some(Source::IntSensor),
        (Source::ExtInfra, Source::ExtInfra) => Some(Source::ExtInfra),
        (
            Source::AdHocNetwork {
                num_nodes: n1,
                num_hops: h1,
            },
            Source::AdHocNetwork {
                num_nodes: n2,
                num_hops: h2,
            },
        ) => Some(Source::AdHocNetwork {
            num_nodes: merge_num_nodes(*n1, *n2),
            num_hops: (*h1).max(*h2),
        }),
        (Source::Entity(e1), Source::Entity(e2)) if e1 == e2 => Some(Source::Entity(e1.clone())),
        (
            Source::Region {
                x: x1,
                y: y1,
                radius: r1,
            },
            Source::Region {
                x: x2,
                y: y2,
                radius: r2,
            },
        ) if x1 == x2 && y1 == y2 => Some(Source::Region {
            x: *x1,
            y: *y1,
            radius: r1.max(*r2),
        }),
        _ => None,
    }
}

fn merge_num_nodes(a: NumNodes, b: NumNodes) -> NumNodes {
    match (a, b) {
        (NumNodes::All, _) | (_, NumNodes::All) => NumNodes::All,
        (NumNodes::First(x), NumNodes::First(y)) => NumNodes::First(x.max(y)),
    }
}

fn merge_duration(a: DurationClause, b: DurationClause) -> DurationClause {
    match (a, b) {
        (DurationClause::Time(x), DurationClause::Time(y)) => DurationClause::Time(x.max(y)),
        (DurationClause::Samples(x), DurationClause::Samples(y)) => {
            DurationClause::Samples(x.max(y))
        }
        // Mixed: run on wall time (members with a sample budget are
        // retired individually by post-extraction bookkeeping).
        (DurationClause::Time(t), DurationClause::Samples(_))
        | (DurationClause::Samples(_), DurationClause::Time(t)) => DurationClause::Time(t),
    }
}

fn merge_mode(a: &QueryMode, b: &QueryMode) -> Option<QueryMode> {
    match (a, b) {
        (QueryMode::OnDemand, QueryMode::OnDemand) => Some(QueryMode::OnDemand),
        (QueryMode::Periodic(x), QueryMode::Periodic(y)) => {
            Some(QueryMode::Periodic((*x).min(*y)))
        }
        (QueryMode::Event(x), QueryMode::Event(y)) => Some(QueryMode::Event(EventExpr::Or(
            Box::new(x.clone()),
            Box::new(y.clone()),
        ))),
        _ => None,
    }
}

/// Loosest common WHERE: keep predicates on keys both queries constrain,
/// relaxed to the weaker bound; drop the rest (members re-apply their own
/// predicates in post-extraction).
fn merge_where(a: &[WherePredicate], b: &[WherePredicate]) -> Vec<WherePredicate> {
    let mut out = Vec::new();
    for pa in a {
        for pb in b {
            if pa.key != pb.key || pa.op != pb.op {
                continue;
            }
            match (&pa.value, &pb.value) {
                (PredValue::Number(x), PredValue::Number(y)) => {
                    let loosest = match pa.op {
                        // Quality thresholds / upper bounds: looser = larger.
                        CmpOp::Eq | CmpOp::Lt | CmpOp::Le => x.max(*y),
                        // Lower bounds: looser = smaller.
                        CmpOp::Gt | CmpOp::Ge => x.min(*y),
                        // Identical exclusions can be kept; differing ones
                        // cannot be loosened jointly.
                        CmpOp::Ne if x == y => *x,
                        CmpOp::Ne => continue,
                    };
                    out.push(WherePredicate {
                        key: pa.key.clone(),
                        op: pa.op,
                        value: PredValue::Number(loosest),
                    });
                }
                (PredValue::Text(x), PredValue::Text(y)) if x == y => {
                    out.push(pa.clone());
                }
                _ => {}
            }
        }
    }
    out
}

/// Post-extraction: filters a covering query's results down to what one
/// member asked for (its WHERE predicates and FRESHNESS bound).
pub fn post_extract(member: &CxtQuery, items: &[CxtItem], now: SimTime) -> Vec<CxtItem> {
    items
        .iter()
        .filter(|i| i.cxt_type == member.select)
        .filter(|i| i.is_valid_at(now))
        .filter(|i| match member.freshness {
            Some(f) => i.is_fresh_at(now, f),
            None => true,
        })
        .filter(|i| matches_where(i, &member.where_clause))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::CxtValue;
    use simkit::SimDuration;

    fn q(text: &str) -> CxtQuery {
        CxtQuery::parse(text).unwrap()
    }

    #[test]
    fn reproduces_the_papers_q1_q2_q3_example() {
        let q1 = q("SELECT temperature FROM adHocNetwork(all,3) FRESHNESS 10 sec \
                    DURATION 1 hour EVERY 15 sec");
        let q2 = q("SELECT temperature FROM adHocNetwork(all,1) FRESHNESS 20 sec \
                    DURATION 2 hour EVERY 30 sec");
        let q3 = try_merge(&q1, &q2).expect("q1 and q2 merge");
        assert_eq!(
            q3,
            q("SELECT temperature FROM adHocNetwork(all,3) FRESHNESS 20 sec \
               DURATION 2 hour EVERY 15 sec")
        );
        // merging is symmetric
        assert_eq!(try_merge(&q2, &q1), Some(q3));
    }

    #[test]
    fn different_select_does_not_merge() {
        let a = q("SELECT temperature DURATION 1 hour EVERY 5 sec");
        let b = q("SELECT wind DURATION 1 hour EVERY 5 sec");
        assert_eq!(try_merge(&a, &b), None);
    }

    #[test]
    fn different_modes_do_not_merge() {
        let a = q("SELECT t DURATION 1 hour EVERY 5 sec");
        let b = q("SELECT t DURATION 1 hour");
        assert_eq!(try_merge(&a, &b), None);
        let c = q("SELECT t DURATION 1 hour EVENT AVG(t)>5");
        assert_eq!(try_merge(&a, &c), None);
    }

    #[test]
    fn different_mechanisms_do_not_merge() {
        let a = q("SELECT t FROM intSensor DURATION 1 hour EVERY 5 sec");
        let b = q("SELECT t FROM extInfra DURATION 1 hour EVERY 5 sec");
        assert_eq!(try_merge(&a, &b), None);
    }

    #[test]
    fn unconstrained_from_dominates() {
        let a = q("SELECT t FROM intSensor DURATION 1 hour EVERY 5 sec");
        let b = q("SELECT t DURATION 1 hour EVERY 5 sec");
        let m = try_merge(&a, &b).unwrap();
        assert_eq!(m.from, None);
    }

    #[test]
    fn num_nodes_widen() {
        let a = q("SELECT t FROM adHocNetwork(5,2) DURATION 1 hour EVERY 5 sec");
        let b = q("SELECT t FROM adHocNetwork(10,1) DURATION 1 hour EVERY 5 sec");
        let m = try_merge(&a, &b).unwrap();
        assert_eq!(
            m.from,
            Some(Source::AdHocNetwork {
                num_nodes: NumNodes::First(10),
                num_hops: 2
            })
        );
        let c = q("SELECT t FROM adHocNetwork(all,1) DURATION 1 hour EVERY 5 sec");
        let m = try_merge(&a, &c).unwrap();
        assert!(matches!(
            m.from,
            Some(Source::AdHocNetwork {
                num_nodes: NumNodes::All,
                ..
            })
        ));
    }

    #[test]
    fn entities_merge_only_when_equal() {
        let a = q("SELECT location FROM entity(friend) DURATION 1 hour EVERY 5 sec");
        let b = q("SELECT location FROM entity(friend) DURATION 2 hour EVERY 9 sec");
        assert!(try_merge(&a, &b).is_some());
        let c = q("SELECT location FROM entity(stranger) DURATION 1 hour EVERY 5 sec");
        assert_eq!(try_merge(&a, &c), None);
    }

    #[test]
    fn regions_widen_radius_at_same_center() {
        let a = q("SELECT wind FROM region(10,20,100) DURATION 1 hour EVERY 5 sec");
        let b = q("SELECT wind FROM region(10,20,300) DURATION 1 hour EVERY 5 sec");
        let m = try_merge(&a, &b).unwrap();
        assert_eq!(
            m.from,
            Some(Source::Region {
                x: 10.0,
                y: 20.0,
                radius: 300.0
            })
        );
        let c = q("SELECT wind FROM region(99,20,100) DURATION 1 hour EVERY 5 sec");
        assert_eq!(try_merge(&a, &c), None);
    }

    #[test]
    fn where_keeps_loosest_common_bound() {
        let a = q("SELECT t WHERE accuracy=0.2 AND correctness>0.9 DURATION 1 hour EVERY 5 sec");
        let b = q("SELECT t WHERE accuracy=0.5 DURATION 1 hour EVERY 5 sec");
        let m = try_merge(&a, &b).unwrap();
        assert_eq!(m.where_clause.len(), 1);
        assert_eq!(m.where_clause[0].value, PredValue::Number(0.5));
        // the lower-bound direction
        let c = q("SELECT t WHERE correctness>0.5 DURATION 1 hour EVERY 5 sec");
        let m = try_merge(&a, &c).unwrap();
        assert_eq!(m.where_clause[0].value, PredValue::Number(0.5));
    }

    #[test]
    fn missing_freshness_dominates() {
        let a = q("SELECT t FRESHNESS 10 sec DURATION 1 hour EVERY 5 sec");
        let b = q("SELECT t DURATION 1 hour EVERY 5 sec");
        assert_eq!(try_merge(&a, &b).unwrap().freshness, None);
    }

    #[test]
    fn event_queries_merge_into_disjunction() {
        let a = q("SELECT t DURATION 1 hour EVENT AVG(t)>25");
        let b = q("SELECT t DURATION 2 hour EVENT MIN(t)<5");
        let m = try_merge(&a, &b).unwrap();
        match m.mode {
            QueryMode::Event(EventExpr::Or(_, _)) => {}
            other => panic!("expected OR, got {other:?}"),
        }
    }

    #[test]
    fn mixed_duration_units_prefer_time() {
        let a = q("SELECT t DURATION 50 samples EVERY 5 sec");
        let b = q("SELECT t DURATION 1 hour EVERY 5 sec");
        assert_eq!(
            merge_duration(a.duration, b.duration),
            DurationClause::Time(SimDuration::from_hours(1))
        );
        assert_eq!(
            merge_duration(a.duration, DurationClause::Samples(80)),
            DurationClause::Samples(80)
        );
    }

    #[test]
    fn post_extract_applies_member_filters() {
        let member = q("SELECT temperature WHERE accuracy=0.2 FRESHNESS 10 sec DURATION 1 hour \
                        EVERY 15 sec");
        let now = SimTime::from_secs(100);
        let items = vec![
            // matches everything
            CxtItem::new("temperature", CxtValue::number(20.0), SimTime::from_secs(95))
                .with_accuracy(0.1),
            // too old for the member's 10 s freshness
            CxtItem::new("temperature", CxtValue::number(21.0), SimTime::from_secs(80))
                .with_accuracy(0.1),
            // accuracy too poor
            CxtItem::new("temperature", CxtValue::number(22.0), SimTime::from_secs(99))
                .with_accuracy(0.5),
            // wrong type entirely
            CxtItem::new("wind", CxtValue::number(5.0), SimTime::from_secs(99)).with_accuracy(0.1),
        ];
        let extracted = post_extract(&member, &items, now);
        assert_eq!(extracted.len(), 1);
        assert_eq!(extracted[0].value, CxtValue::number(20.0));
    }

    #[test]
    fn post_extract_respects_item_lifetime() {
        let member = q("SELECT t DURATION 1 hour EVERY 5 sec");
        let expired = CxtItem::new("t", CxtValue::number(1.0), SimTime::ZERO)
            .with_lifetime(SimDuration::from_secs(5));
        let extracted = post_extract(&member, &[expired], SimTime::from_secs(60));
        assert!(extracted.is_empty());
    }
}
