//! The ContextFactory (§4.3): the core of the architecture.
//!
//! One ContextFactory is instantiated per device and shared by all
//! applications. It exposes the paper's `ContextFactory` interface
//! (submit/cancel queries, publish/store items, register publishers),
//! assigns queries to per-mechanism [`Facade`]s based on the FROM clause,
//! sensor availability and the active control policies, and enforces the
//! reconfiguration strategy when the [`ResourcesMonitor`] or a provider
//! reports a failure — e.g. moving location provisioning from a
//! `LocalLocationProvider` to an `AdHocLocationProvider` when the BT-GPS
//! disconnects (the paper's Fig. 5), and back once the sensor recovers.

use crate::access::{AccessController, SecurityMode};
use crate::backoff::BackoffState;
use crate::client::Client;
use crate::error::ContoryError;
use crate::facade::Facade;
use crate::failover::{FailoverConfig, FailoverReport, FailoverTracker};
use crate::item::CxtItem;
use crate::manager::{QueryManager, QueryRecord};
use crate::monitor::{ResourceEvent, ResourcesMonitor};
use crate::policy::{ContextRule, RuleAction, RuleValue};
use crate::providers::adhoc::{AdHocCxtProvider, AdHocFlavor};
use crate::providers::infra::InfraCxtProvider;
use crate::providers::local::LocalCxtProvider;
use crate::publisher::CxtPublisher;
use crate::query::{CxtQuery, DurationClause, QueryMode, Source};
use crate::refs::{RefError, RefKind, References};
use crate::repository::CxtRepository;
use simkit::{DetRng, Sim, SimDuration};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

/// Identifier of a submitted context query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A concrete provisioning mechanism a query can ride.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mechanism {
    /// Internal/attached sensor provisioning.
    IntSensor,
    /// Ad hoc provisioning over Bluetooth (one hop).
    AdHocBt,
    /// Ad hoc provisioning over WiFi (multi-hop Smart Messages).
    AdHocWifi,
    /// External infrastructure over 2G/3G.
    Infra,
}

impl Mechanism {
    /// The communication module this mechanism depends on.
    pub fn kind(self) -> RefKind {
        match self {
            Mechanism::IntSensor => RefKind::Bt, // BT-attached sensors dominate
            Mechanism::AdHocBt => RefKind::Bt,
            Mechanism::AdHocWifi => RefKind::Wifi,
            Mechanism::Infra => RefKind::Cell,
        }
    }

    /// Stable snake_case key for metric names.
    pub fn metric_key(self) -> &'static str {
        match self {
            Mechanism::IntSensor => "int_sensor",
            Mechanism::AdHocBt => "adhoc_bt",
            Mechanism::AdHocWifi => "adhoc_wifi",
            Mechanism::Infra => "infra",
        }
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mechanism::IntSensor => "intSensor",
            Mechanism::AdHocBt => "adHocNetwork/BT",
            Mechanism::AdHocWifi => "adHocNetwork/WiFi",
            Mechanism::Infra => "extInfra",
        })
    }
}

/// Factory configuration.
#[derive(Clone, Debug)]
pub struct FactoryConfig {
    /// Access-control posture.
    pub security: SecurityMode,
    /// Local repository capacity per context type.
    pub repo_capacity: usize,
    /// Access-controller known-source capacity.
    pub access_capacity: usize,
    /// How often to probe a failed preferred mechanism for recovery.
    pub recovery_probe: SimDuration,
    /// Whether publishers must register before publishing (§4.4).
    pub require_registration: bool,
    /// Failure detection, retry and backoff tunables.
    pub failover: FailoverConfig,
}

impl Default for FactoryConfig {
    fn default() -> Self {
        FactoryConfig {
            security: SecurityMode::Low,
            repo_capacity: 32,
            access_capacity: 64,
            recovery_probe: SimDuration::from_secs(30),
            require_registration: true,
            failover: FailoverConfig::default(),
        }
    }
}

struct Inner {
    sim: Sim,
    refs: References,
    config: FactoryConfig,
    monitor: ResourcesMonitor,
    access: AccessController,
    repo: CxtRepository,
    publisher: CxtPublisher,
    manager: QueryManager,
    facades: BTreeMap<Mechanism, Facade>,
    rules: Vec<ContextRule>,
    next_query: u64,
    registered_servers: BTreeSet<String>,
    probes_in_flight: BTreeSet<QueryId>,
    prev_actions: Vec<RuleAction>,
    /// Per-query failover bookkeeping (also attached to the monitor).
    failover: FailoverTracker,
    /// Per-query retry counters driving the backoff schedule.
    backoff: BTreeMap<QueryId, BackoffState>,
    /// Queries with a same-mechanism retry scheduled (watchdog holds off).
    retry_pending: BTreeSet<QueryId>,
    /// Deterministic jitter stream for retry delays.
    rng: DetRng,
    /// Terminal errors recorded while a submit cascade unwound, so
    /// `process_cxt_query` can report them synchronously.
    terminations: BTreeMap<QueryId, ContoryError>,
}

/// The device's context factory. Cloneable handle; create one per device.
#[derive(Clone)]
pub struct ContextFactory {
    inner: Rc<RefCell<Inner>>,
}

impl ContextFactory {
    /// Builds a factory over the device's references.
    pub fn new(sim: &Sim, refs: References, config: FactoryConfig) -> Self {
        let monitor = ResourcesMonitor::new();
        let access = AccessController::new(config.security, config.access_capacity);
        let repo = CxtRepository::new(config.repo_capacity);
        {
            // Lifetime enforcement (§4.3): queries never see expired
            // items, and a periodic sweep evicts them deterministically.
            let clock_sim = sim.clone();
            repo.set_clock(Rc::new(move || clock_sim.now()));
            let sweep_repo = repo.clone();
            let sweep_sim = sim.clone();
            sim.schedule_repeating(config.recovery_probe, move || {
                sweep_repo.sweep_expired(sweep_sim.now());
                true
            });
        }
        if let Some(cell) = &refs.cell {
            repo.set_remote(cell.clone());
        }
        let publisher = CxtPublisher::new(refs.bt.clone(), refs.wifi.clone());
        let failover = FailoverTracker::new();
        monitor.attach_failover(failover.clone());
        let rng = DetRng::new(config.failover.rng_seed);
        let factory = ContextFactory {
            inner: Rc::new(RefCell::new(Inner {
                sim: sim.clone(),
                refs,
                config,
                monitor: monitor.clone(),
                access,
                repo,
                publisher,
                manager: QueryManager::new(),
                facades: BTreeMap::new(),
                rules: Vec::new(),
                next_query: 0,
                registered_servers: BTreeSet::new(),
                probes_in_flight: BTreeSet::new(),
                prev_actions: Vec::new(),
                failover,
                backoff: BTreeMap::new(),
                retry_pending: BTreeSet::new(),
                rng,
                terminations: BTreeMap::new(),
            })),
        };
        factory.build_facades();
        // Monitor events drive policy enforcement and reconfiguration.
        {
            let weak = Rc::downgrade(&factory.inner);
            monitor.on_event(move |event| {
                if let Some(inner) = weak.upgrade() {
                    let f = ContextFactory { inner };
                    f.enforce_policies();
                    if let ResourceEvent::RefFailed { kind, .. } = event {
                        f.reassign_kind(*kind);
                    }
                }
            });
        }
        factory
    }

    fn build_facades(&self) {
        let (sim, refs) = {
            let inner = self.inner.borrow();
            (inner.sim.clone(), inner.refs.clone())
        };
        let mut facades = BTreeMap::new();
        // intSensor facade exists when any sensor path exists.
        if refs.internal.is_some() || refs.bt.is_some() {
            facades.insert(
                Mechanism::IntSensor,
                self.make_facade(Mechanism::IntSensor, {
                    let sim = sim.clone();
                    let internal = refs.internal.clone();
                    let bt = refs.bt.clone();
                    Rc::new(move |query: &CxtQuery, sink, on_failure| {
                        Ok(Box::new(LocalCxtProvider::new(
                            &sim,
                            internal.clone(),
                            bt.clone(),
                            query.clone(),
                            sink,
                            on_failure,
                        )) as Box<dyn crate::providers::CxtProvider>)
                    })
                }),
            );
        }
        if let Some(bt) = refs.bt.clone() {
            facades.insert(
                Mechanism::AdHocBt,
                self.make_facade(Mechanism::AdHocBt, {
                    let sim = sim.clone();
                    Rc::new(move |query: &CxtQuery, sink, on_failure| {
                        Ok(Box::new(AdHocCxtProvider::new(
                            &sim,
                            AdHocFlavor::Bt,
                            Some(bt.clone()),
                            None,
                            query.clone(),
                            sink,
                            on_failure,
                        )) as Box<dyn crate::providers::CxtProvider>)
                    })
                }),
            );
        }
        if let Some(wifi) = refs.wifi.clone() {
            facades.insert(
                Mechanism::AdHocWifi,
                self.make_facade(Mechanism::AdHocWifi, {
                    let sim = sim.clone();
                    Rc::new(move |query: &CxtQuery, sink, on_failure| {
                        Ok(Box::new(AdHocCxtProvider::new(
                            &sim,
                            AdHocFlavor::Wifi,
                            None,
                            Some(wifi.clone()),
                            query.clone(),
                            sink,
                            on_failure,
                        )) as Box<dyn crate::providers::CxtProvider>)
                    })
                }),
            );
        }
        if let Some(cell) = refs.cell.clone() {
            facades.insert(
                Mechanism::Infra,
                self.make_facade(Mechanism::Infra, {
                    let sim = sim.clone();
                    Rc::new(move |query: &CxtQuery, sink, on_failure| {
                        Ok(Box::new(InfraCxtProvider::new(
                            &sim,
                            cell.clone(),
                            query.clone(),
                            sink,
                            on_failure,
                        )) as Box<dyn crate::providers::CxtProvider>)
                    })
                }),
            );
        }
        self.inner.borrow_mut().facades = facades;
    }

    fn make_facade(
        &self,
        mechanism: Mechanism,
        make_provider: crate::facade::ProviderFactory,
    ) -> Facade {
        let weak = Rc::downgrade(&self.inner);
        let sim = self.inner.borrow().sim.clone();
        let deliver = {
            let weak = weak.clone();
            Rc::new(move |id: QueryId, items: Vec<CxtItem>| {
                if let Some(inner) = weak.upgrade() {
                    let (manager, repo, access) = {
                        let i = inner.borrow();
                        (i.manager.clone(), i.repo.clone(), i.access.clone())
                    };
                    // Access control: every external source is vetted; in
                    // high-security mode, unknown sources are granted or
                    // blocked by the owning application's makeDecision.
                    let client = manager.client_of(id);
                    let items: Vec<CxtItem> = items
                        .into_iter()
                        .filter(|item| match (&item.source, &client) {
                            (Some(source), Some(client)) => {
                                let client = client.clone();
                                let ask = move |s: &crate::item::SourceId| {
                                    client.make_decision(&format!(
                                        "allow context source {s}?"
                                    ))
                                };
                                access.check_with(source, Some(&ask))
                                    == crate::access::AccessDecision::Granted
                            }
                            _ => true,
                        })
                        .collect();
                    if items.is_empty() {
                        return;
                    }
                    for item in &items {
                        repo.store_local(item.clone());
                    }
                    let n = items.len() as u64;
                    let delivered = manager.deliver(id, items);
                    if delivered {
                        // Successful delivery: close any provisioning gap
                        // and reset the retry budget for this query.
                        let (tracker, now) = {
                            let mut i = inner.borrow_mut();
                            i.backoff.remove(&id);
                            (i.failover.clone(), i.sim.now())
                        };
                        tracker.delivered(id, n, now);
                    }
                }
            })
        };
        let member_done = {
            let weak = weak.clone();
            Rc::new(move |id: QueryId| {
                if let Some(inner) = weak.upgrade() {
                    ContextFactory { inner }.finish_query(id);
                }
            })
        };
        let provider_failed = {
            let weak = weak.clone();
            Rc::new(move |ids: Vec<QueryId>, err: RefError| {
                if let Some(inner) = weak.upgrade() {
                    ContextFactory { inner }.handle_provider_failure(mechanism, ids, err);
                }
            })
        };
        Facade::new(&sim, make_provider, deliver, member_done, provider_failed)
    }

    /// The resources monitor (the platform feeds battery/memory/reference
    /// events into it).
    pub fn monitor(&self) -> ResourcesMonitor {
        self.inner.borrow().monitor.clone()
    }

    /// The local/remote context repository.
    pub fn repository(&self) -> CxtRepository {
        self.inner.borrow().repo.clone()
    }

    /// The access controller.
    pub fn access_controller(&self) -> AccessController {
        self.inner.borrow().access.clone()
    }

    /// The active-query table.
    pub fn manager(&self) -> QueryManager {
        self.inner.borrow().manager.clone()
    }

    /// The facade serving a mechanism, if the device supports it
    /// (exposed for inspection in tests and benches).
    pub fn facade(&self, mechanism: Mechanism) -> Option<Facade> {
        self.inner.borrow().facades.get(&mechanism).cloned()
    }

    /// Installs a control policy rule.
    pub fn add_rule(&self, rule: ContextRule) {
        self.inner.borrow_mut().rules.push(rule);
        self.enforce_policies();
    }

    /// Parses and submits a query (`processCxtQuery` with query text).
    ///
    /// # Errors
    ///
    /// Returns [`ContoryError::Parse`] for bad query text, plus the
    /// errors of [`ContextFactory::process_cxt_query`].
    pub fn process_cxt_query_text(
        &self,
        text: &str,
        client: Rc<dyn Client>,
    ) -> Result<QueryId, ContoryError> {
        let query = CxtQuery::parse(text)?;
        self.process_cxt_query(query, client)
    }

    /// Submits a query (`processCxtQuery`): assigns it to a suitable
    /// facade and schedules its expiry.
    ///
    /// # Errors
    ///
    /// Returns [`ContoryError::NoMechanism`] when no available mechanism
    /// can serve the query.
    pub fn process_cxt_query(
        &self,
        query: CxtQuery,
        client: Rc<dyn Client>,
    ) -> Result<QueryId, ContoryError> {
        let id = {
            let mut inner = self.inner.borrow_mut();
            inner.next_query += 1;
            QueryId(inner.next_query)
        };
        obskit::count("factory_queries_submitted", 1);
        {
            let inner = self.inner.borrow();
            obskit::event(
                obskit::Phase::Dispatch,
                &format!("submit:{id}:{}", query.select),
                None,
                inner.sim.now(),
            );
        }
        {
            let inner = self.inner.borrow();
            inner.manager.insert(
                id,
                QueryRecord {
                    query: query.clone(),
                    client,
                    mechanism: Mechanism::IntSensor, // placeholder until assigned
                    failed: Vec::new(),
                    suspended: false,
                },
            );
        }
        match self.assign(id) {
            Ok(_mechanism) => {}
            Err(e) => {
                self.inner.borrow().manager.remove(id);
                return Err(e);
            }
        }
        // A provider whose module was already down fails synchronously
        // inside submit; the failure cascade may have exhausted every
        // candidate and terminated the query before assign() returned.
        // Surface that terminal error to the caller.
        let terminal = self.inner.borrow_mut().terminations.remove(&id);
        if let Some(e) = terminal {
            if !self.inner.borrow().manager.contains(id) {
                return Err(e);
            }
        }
        {
            let inner = self.inner.borrow();
            let period = match query.mode {
                QueryMode::Periodic(p) => Some(p),
                _ => None,
            };
            inner.failover.set_period(id, period);
        }
        // Silence watchdog for periodic queries (opt-in via config).
        if let QueryMode::Periodic(p) = query.mode {
            let k = self.inner.borrow().config.failover.silence_periods;
            if k > 0 {
                self.start_watchdog(id, p, k);
            }
        }
        // Wall-time queries expire on schedule.
        if let DurationClause::Time(d) = query.duration {
            let weak = Rc::downgrade(&self.inner);
            let sim = self.inner.borrow().sim.clone();
            sim.schedule_in(d, move || {
                if let Some(inner) = weak.upgrade() {
                    ContextFactory { inner }.finish_query(id);
                }
            });
        }
        self.update_status();
        Ok(id)
    }

    /// Cancels an active query (`cancelCxtQuery`).
    ///
    /// # Errors
    ///
    /// Returns [`ContoryError::UnknownQuery`] if the id is not active.
    pub fn cancel_cxt_query(&self, id: QueryId) -> Result<(), ContoryError> {
        if !self.inner.borrow().manager.contains(id) {
            return Err(ContoryError::UnknownQuery(id.0));
        }
        obskit::count("factory_queries_cancelled", 1);
        self.finish_query(id);
        Ok(())
    }

    /// Publishes a context item in the ad hoc network(s)
    /// (`publishCxtItem`). `key = Some` selects authenticated access.
    ///
    /// # Errors
    ///
    /// Returns [`ContoryError::AccessDenied`] when registration is
    /// required and no context server is registered, or
    /// [`ContoryError::Reference`] when no ad hoc reference accepted the
    /// item.
    pub fn publish_cxt_item(&self, item: CxtItem, key: Option<String>) -> Result<(), ContoryError> {
        {
            let inner = self.inner.borrow();
            if inner.config.require_registration && inner.registered_servers.is_empty() {
                return Err(ContoryError::AccessDenied(
                    "publisher is not a registered context server".into(),
                ));
            }
        }
        let publisher = self.inner.borrow().publisher.clone();
        publisher.publish(item, key, Box::new(|_res| {}));
        Ok(())
    }

    /// Withdraws a published item.
    pub fn unpublish_cxt_item(&self, cxt_type: &str) {
        self.inner.borrow().publisher.unpublish(cxt_type);
    }

    /// Stores an item locally and in the remote repository
    /// (`storeCxtItem`).
    pub fn store_cxt_item(&self, item: CxtItem) {
        let (repo, has_cell) = {
            let inner = self.inner.borrow();
            (inner.repo.clone(), inner.refs.cell.is_some())
        };
        repo.store_local(item.clone());
        if has_cell {
            repo.store_remote(item, Box::new(|_res| {}));
        }
    }

    /// Registers a context server eligible to publish
    /// (`registerCxtServer`).
    pub fn register_cxt_server(&self, name: impl Into<String>) {
        self.inner.borrow_mut().registered_servers.insert(name.into());
    }

    /// Deregisters a context server (`deregisterCxtServer`).
    pub fn deregister_cxt_server(&self, name: &str) {
        self.inner.borrow_mut().registered_servers.remove(name);
    }

    /// Number of active queries.
    pub fn active_queries(&self) -> usize {
        self.inner.borrow().manager.len()
    }

    /// The mechanism currently serving a query.
    pub fn mechanism_of(&self, id: QueryId) -> Option<Mechanism> {
        self.inner.borrow().manager.mechanism_of(id)
    }

    /// Ordered candidate mechanisms for a query, given the FROM clause,
    /// device capabilities and active policies.
    pub fn candidates(&self, query: &CxtQuery) -> Vec<Mechanism> {
        let inner = self.inner.borrow();
        let has = |m: Mechanism| inner.facades.contains_key(&m);
        let internal_provides = inner
            .refs
            .internal
            .as_ref()
            .is_some_and(|i| i.provides(&query.select));
        let mut order: Vec<Mechanism> = match &query.from {
            Some(Source::IntSensor) => vec![
                Mechanism::IntSensor,
                Mechanism::AdHocBt,
                Mechanism::AdHocWifi,
                Mechanism::Infra,
            ],
            Some(Source::ExtInfra) => vec![
                Mechanism::Infra,
                Mechanism::AdHocWifi,
                Mechanism::AdHocBt,
            ],
            Some(Source::AdHocNetwork { num_hops, .. }) => {
                if *num_hops > 1 {
                    vec![Mechanism::AdHocWifi, Mechanism::AdHocBt, Mechanism::Infra]
                } else {
                    vec![Mechanism::AdHocBt, Mechanism::AdHocWifi, Mechanism::Infra]
                }
            }
            Some(Source::Entity(_)) => {
                vec![Mechanism::AdHocWifi, Mechanism::AdHocBt, Mechanism::Infra]
            }
            Some(Source::Region { .. }) => vec![Mechanism::AdHocWifi, Mechanism::Infra],
            None => {
                let mut v = Vec::new();
                if internal_provides {
                    v.push(Mechanism::IntSensor);
                }
                v.extend([Mechanism::AdHocBt, Mechanism::AdHocWifi, Mechanism::Infra]);
                v
            }
        };
        // intSensor needs either an integrated sensor or BT for an
        // attached one.
        order.retain(|&m| match m {
            Mechanism::IntSensor => internal_provides || inner.refs.bt.is_some(),
            _ => true,
        });
        order.retain(|&m| has(m));
        // Active reducePower: prefer BT one-hop over WiFi multi-hop and
        // demote the UMTS infrastructure to last resort.
        let actions = inner.monitor.status().active_actions(&inner.rules);
        if actions.contains(&RuleAction::ReducePower) {
            order.sort_by_key(|&m| match m {
                Mechanism::IntSensor => 0,
                Mechanism::AdHocBt => 1,
                Mechanism::AdHocWifi => 2,
                Mechanism::Infra => 3,
            });
        }
        order
    }

    /// Assigns (or reassigns) a query to the best non-failed candidate.
    fn assign(&self, id: QueryId) -> Result<Mechanism, ContoryError> {
        let (query, failed, manager) = {
            let inner = self.inner.borrow();
            let Some(query) = inner.manager.query_of(id) else {
                return Err(ContoryError::UnknownQuery(id.0));
            };
            (query, inner.manager.failed_of(id), inner.manager.clone())
        };
        let candidates = self.candidates(&query);
        let pick = candidates.iter().copied().find(|m| !failed.contains(m));
        let Some(mechanism) = pick else {
            if candidates.is_empty() {
                return Err(ContoryError::NoMechanism {
                    cxt_type: query.select.clone(),
                    reason: "device has no mechanism for this FROM clause".into(),
                });
            }
            let tried: Vec<String> = candidates.iter().map(|m| m.to_string()).collect();
            return Err(ContoryError::AllMechanismsFailed {
                cxt_type: query.select.clone(),
                tried: tried.join(", "),
            });
        };
        // `candidates()` only returns mechanisms with a registered facade,
        // but propagate instead of panicking if that invariant ever slips.
        let Some(facade) = self.inner.borrow().facades.get(&mechanism).cloned() else {
            return Err(ContoryError::NoMechanism {
                cxt_type: query.select.clone(),
                reason: format!("no facade registered for {mechanism}"),
            });
        };
        // Record the mechanism *before* submitting: a provider whose
        // radio is already down fails synchronously inside submit(),
        // re-entering assign() — which must not be overwritten afterwards.
        manager.set_mechanism(id, mechanism);
        manager.set_suspended(id, false);
        {
            let inner = self.inner.borrow();
            inner.failover.assigned(id, mechanism, inner.sim.now());
        }
        obskit::count("factory_assignments", 1);
        obskit::count(&format!("factory_assigned_{}", mechanism.metric_key()), 1);
        facade.submit(id, query)?;
        Ok(mechanism)
    }

    /// Ends a query silently (duration expiry, sample budget, or explicit
    /// cancel).
    fn finish_query(&self, id: QueryId) {
        let facades: Vec<Facade> = self.inner.borrow().facades.values().cloned().collect();
        for f in facades {
            if f.cancel(id) {
                break;
            }
        }
        {
            let mut inner = self.inner.borrow_mut();
            inner.backoff.remove(&id);
            inner.retry_pending.remove(&id);
            let now = inner.sim.now();
            inner.failover.finished(id, now);
        }
        self.inner.borrow().manager.remove(id);
        self.update_status();
    }

    /// A provider died: either retry the same mechanism after a backoff
    /// delay (while the per-query retry budget lasts), or mark the
    /// mechanism failed, move the query to the next candidate and start
    /// recovery probes. With every candidate failed, long-running queries
    /// are suspended (revived by the probe) and on-demand queries are
    /// terminated with [`ContoryError::AllMechanismsFailed`].
    fn handle_provider_failure(&self, mechanism: Mechanism, ids: Vec<QueryId>, err: RefError) {
        let (manager, tracker, now) = {
            let inner = self.inner.borrow();
            (inner.manager.clone(), inner.failover.clone(), inner.sim.now())
        };
        for id in ids {
            if !manager.contains(id) {
                continue;
            }
            tracker.failure(id, mechanism, now);
            obskit::count("factory_provider_failures", 1);
            obskit::event(
                obskit::Phase::Failover,
                &format!("fail:{id}:{mechanism}"),
                None,
                now,
            );
            // Same-mechanism retry with capped exponential backoff.
            let retry_delay = {
                let mut guard = self.inner.borrow_mut();
                let inner = &mut *guard;
                let max_retries = inner.config.failover.max_retries;
                let policy = inner.config.failover.backoff.clone();
                let state = inner.backoff.entry(id).or_default();
                if state.attempts() < max_retries {
                    let delay = state.next_delay(&policy, &mut inner.rng);
                    inner.retry_pending.insert(id);
                    Some(delay)
                } else {
                    inner.backoff.remove(&id);
                    None
                }
            };
            if let Some(delay) = retry_delay {
                tracker.retried(id);
                obskit::count("factory_retries", 1);
                obskit::observe("factory_retry_delay_us", delay.as_micros());
                obskit::event(obskit::Phase::Retry, &format!("retry:{id}:{mechanism}"), None, now);
                manager.inform_error(
                    id,
                    &format!(
                        "{mechanism} failed: {err}; retrying in {:.1}s",
                        delay.as_secs_f64()
                    ),
                );
                let weak = Rc::downgrade(&self.inner);
                let sim = self.inner.borrow().sim.clone();
                sim.schedule_in(delay, move || {
                    if let Some(inner) = weak.upgrade() {
                        ContextFactory { inner }.retry_mechanism(id);
                    }
                });
                continue;
            }
            // Retry budget exhausted: fail over to the next candidate.
            manager.mark_failed(id, mechanism);
            manager.inform_error(id, &format!("{mechanism} failed: {err}"));
            match self.assign(id) {
                Ok(new_mechanism) => {
                    obskit::count("factory_mechanism_switches", 1);
                    obskit::event(
                        obskit::Phase::Switch,
                        &format!("switch:{id}:{mechanism}->{new_mechanism}"),
                        None,
                        now,
                    );
                    manager.inform_error(
                        id,
                        &format!("switched provisioning to {new_mechanism}"),
                    );
                    self.schedule_recovery_probe(id);
                }
                Err(e) => self.on_assign_failed(id, e),
            }
        }
        self.update_status();
    }

    /// Fires a scheduled same-mechanism retry.
    fn retry_mechanism(&self, id: QueryId) {
        self.inner.borrow_mut().retry_pending.remove(&id);
        let manager = self.inner.borrow().manager.clone();
        if !manager.contains(id) || manager.is_suspended(id) {
            return;
        }
        match self.assign(id) {
            Ok(_) => {}
            Err(e) => self.on_assign_failed(id, e),
        }
    }

    /// Every candidate mechanism failed for a query: suspend long-running
    /// queries (the recovery probe revives them) and terminate on-demand
    /// ones.
    fn on_assign_failed(&self, id: QueryId, e: ContoryError) {
        let (manager, tracker, now, long_running) = {
            let inner = self.inner.borrow();
            let long_running = inner
                .manager
                .query_of(id)
                .is_some_and(|q| q.mode.is_long_running());
            (
                inner.manager.clone(),
                inner.failover.clone(),
                inner.sim.now(),
                long_running,
            )
        };
        if long_running && matches!(e, ContoryError::AllMechanismsFailed { .. }) {
            manager.set_suspended(id, true);
            tracker.suspended(id, now);
            obskit::count("factory_suspensions", 1);
            obskit::event(obskit::Phase::Suspend, &format!("suspend:{id}"), None, now);
            manager.inform_error(id, &format!("query suspended: {e}"));
            self.schedule_recovery_probe(id);
        } else {
            obskit::count("factory_terminations", 1);
            manager.inform_error(id, &format!("query terminated: {e}"));
            tracker.finished(id, now);
            self.inner.borrow_mut().terminations.insert(id, e);
            manager.remove(id);
        }
        self.update_status();
    }

    /// A whole communication module failed (reported via the monitor):
    /// reassign every query riding it.
    fn reassign_kind(&self, kind: RefKind) {
        let (manager, ids): (QueryManager, Vec<QueryId>) = {
            let inner = self.inner.borrow();
            let ids = inner
                .facades
                .keys()
                .filter(|m| m.kind() == kind)
                .flat_map(|m| inner.manager.queries_on(*m))
                .collect();
            (inner.manager.clone(), ids)
        };
        for id in ids {
            let Some(current) = manager.mechanism_of(id) else {
                continue;
            };
            // Pull the query out of its current facade before reassigning.
            if let Some(f) = self.facade(current) {
                f.cancel(id);
            }
            self.handle_provider_failure(current, vec![id], RefError::Unavailable(
                format!("{kind} reported failed"),
            ));
        }
    }

    /// Periodically checks whether a query's preferred mechanism works
    /// again; if so, moves the query back (Fig. 5's switch-back once the
    /// GPS device is rediscovered).
    fn schedule_recovery_probe(&self, id: QueryId) {
        {
            let mut inner = self.inner.borrow_mut();
            if !inner.probes_in_flight.insert(id) {
                return; // already probing
            }
        }
        let weak = Rc::downgrade(&self.inner);
        let (sim, interval) = {
            let inner = self.inner.borrow();
            (inner.sim.clone(), inner.config.recovery_probe)
        };
        sim.schedule_repeating(interval, move || {
            let Some(inner_rc) = weak.upgrade() else {
                return false;
            };
            let factory = ContextFactory { inner: inner_rc };
            factory.probe_step(id)
        });
    }

    /// One probe round; returns whether probing should continue.
    fn probe_step(&self, id: QueryId) -> bool {
        let (manager, query, failed) = {
            let inner = self.inner.borrow();
            let m = inner.manager.clone();
            let Some(q) = m.query_of(id) else {
                drop(inner);
                self.inner.borrow_mut().probes_in_flight.remove(&id);
                return false;
            };
            (m, q, inner.manager.failed_of(id))
        };
        if failed.is_empty() {
            self.inner.borrow_mut().probes_in_flight.remove(&id);
            return false;
        }
        let preferred = match self.candidates(&query).first().copied() {
            Some(m) => m,
            None => return true,
        };
        if !failed.contains(&preferred) {
            // Preferred already serves (or is untested): stop probing.
            self.inner.borrow_mut().probes_in_flight.remove(&id);
            return false;
        }
        // Probe the preferred mechanism's availability.
        let weak = Rc::downgrade(&self.inner);
        let select = query.select.clone();
        let on_result: Box<dyn FnOnce(bool)> = Box::new(move |ok| {
            if !ok {
                return;
            }
            let Some(inner_rc) = weak.upgrade() else {
                return;
            };
            let factory = ContextFactory { inner: inner_rc };
            let manager = factory.inner.borrow().manager.clone();
            if !manager.contains(id) {
                return;
            }
            let Some(current) = manager.mechanism_of(id) else {
                return;
            };
            if let Some(f) = factory.facade(current) {
                f.cancel(id);
            }
            manager.clear_failed(id);
            match factory.assign(id) {
                Ok(m) => {
                    // The assign may have cascaded into a re-suspension if
                    // the probed module flapped straight back down.
                    if !manager.is_suspended(id) {
                        let now = factory.inner.borrow().sim.now();
                        obskit::count("factory_recoveries", 1);
                        obskit::event(
                            obskit::Phase::Revive,
                            &format!("revive:{id}:{m}"),
                            None,
                            now,
                        );
                        manager.inform_error(id, &format!("recovered: back on {m}"));
                    }
                }
                Err(e) => factory.on_assign_failed(id, e),
            }
        });
        let refs = self.inner.borrow().refs.clone();
        match preferred {
            Mechanism::IntSensor => {
                let internal_ok = refs
                    .internal
                    .as_ref()
                    .is_some_and(|i| i.provides(&select));
                if internal_ok {
                    on_result(true);
                } else if let Some(bt) = refs.bt {
                    // Real discovery: this is the BT inquiry visible as the
                    // power spikes in Fig. 5.
                    bt.discover_sensor(&select, Box::new(move |res| on_result(res.is_ok())));
                } else {
                    on_result(false);
                }
            }
            Mechanism::AdHocBt => {
                on_result(refs.bt.is_some_and(|b| b.is_available()));
            }
            Mechanism::AdHocWifi => {
                on_result(refs.wifi.is_some_and(|w| w.is_available()));
            }
            Mechanism::Infra => {
                on_result(refs.cell.is_some_and(|c| c.is_available()));
            }
        }
        let _ = manager;
        true
    }

    /// Starts the per-query silence watchdog: a periodic query that
    /// delivers nothing for `k` consecutive periods is declared failed on
    /// its current mechanism (the paper's transparent failover, but
    /// driven by *absence* of data rather than an explicit provider
    /// error).
    fn start_watchdog(&self, id: QueryId, period: SimDuration, k: u32) {
        let weak = Rc::downgrade(&self.inner);
        let sim = self.inner.borrow().sim.clone();
        sim.schedule_repeating(period, move || {
            let Some(inner) = weak.upgrade() else {
                return false;
            };
            ContextFactory { inner }.watchdog_step(id, period, k)
        });
    }

    /// One watchdog tick; returns whether the watchdog should keep
    /// running.
    fn watchdog_step(&self, id: QueryId, period: SimDuration, k: u32) -> bool {
        let (manager, tracker, now, retry_pending) = {
            let inner = self.inner.borrow();
            (
                inner.manager.clone(),
                inner.failover.clone(),
                inner.sim.now(),
                inner.retry_pending.contains(&id),
            )
        };
        if !manager.contains(id) {
            return false;
        }
        // Suspended queries are revived by the recovery probe; queries
        // with a retry in flight are waiting out their backoff delay.
        if manager.is_suspended(id) || retry_pending {
            return true;
        }
        let Some(last) = tracker.last_activity(id) else {
            return false;
        };
        if now.since(last) >= period * u64::from(k) {
            let Some(current) = manager.mechanism_of(id) else {
                return true;
            };
            obskit::count("factory_watchdog_fires", 1);
            manager.inform_error(
                id,
                &format!("watchdog: no items for {k} periods on {current}"),
            );
            // Pull the silent provider out before declaring the failure.
            if let Some(f) = self.facade(current) {
                f.cancel(id);
            }
            self.handle_provider_failure(current, vec![id], RefError::Timeout);
        }
        true
    }

    /// Snapshot of the per-query failover history (also available from
    /// the monitor via [`ResourcesMonitor::failover_report`]).
    pub fn failover_report(&self) -> FailoverReport {
        let inner = self.inner.borrow();
        inner.failover.report_at(inner.sim.now())
    }

    /// Evaluates the control policies against the current status and
    /// enforces actions on rising edges.
    pub fn enforce_policies(&self) {
        let (actions, prev) = {
            let inner = self.inner.borrow();
            let actions = inner.monitor.status().active_actions(&inner.rules);
            (actions, inner.prev_actions.clone())
        };
        for action in &actions {
            if prev.contains(action) {
                continue; // already enforced
            }
            match action {
                RuleAction::ReduceMemory => {
                    self.inner.borrow().repo.trim();
                }
                RuleAction::ReduceLoad => {
                    let facades: Vec<Facade> =
                        self.inner.borrow().facades.values().cloned().collect();
                    for f in facades {
                        f.slow_down(2);
                    }
                }
                RuleAction::ReducePower => {
                    self.apply_reduce_power();
                }
            }
        }
        self.inner.borrow_mut().prev_actions = actions;
    }

    /// Moves queries off the most power-hungry mechanisms: UMTS-based
    /// queries are suspended or moved, WiFi multi-hop falls back to BT
    /// one-hop (§4.3's example enforcement).
    fn apply_reduce_power(&self) {
        let manager = self.inner.borrow().manager.clone();
        for victim in [Mechanism::Infra, Mechanism::AdHocWifi] {
            for id in manager.queries_on(victim) {
                if let Some(f) = self.facade(victim) {
                    f.cancel(id);
                }
                manager.mark_failed(id, victim);
                match self.assign(id) {
                    Ok(m) => manager.inform_error(
                        id,
                        &format!("reducePower: moved from {victim} to {m}"),
                    ),
                    Err(_) => {
                        manager
                            .inform_error(id, "reducePower: query suspended (no alternative)");
                        manager.remove(id);
                    }
                }
            }
        }
        self.update_status();
    }

    fn update_status(&self) {
        let inner = self.inner.borrow();
        inner
            .monitor
            .set_status("activeQueries", RuleValue::Number(inner.manager.len() as f64));
        inner.monitor.set_status(
            "suspendedQueries",
            RuleValue::Number(inner.manager.suspended_count() as f64),
        );
    }
}

impl fmt::Debug for ContextFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ContextFactory")
            .field("active_queries", &inner.manager.len())
            .field("facades", &inner.facades.len())
            .finish()
    }
}
