//! The three vocabularies exposed to application developers (§4.4):
//! `CxtVocabulary` (context and metadata types), `QueryVocabulary`
//! (query clause keywords) and `CxtRulesVocabulary` (control-policy
//! operators and actions).

/// Context type names (`CxtVocabulary`). Spatial, temporal, user-status,
/// environmental and resource categories per §4.1.
pub mod cxt_types {
    /// Geographic position.
    pub const LOCATION: &str = "location";
    /// Movement speed.
    pub const SPEED: &str = "speed";
    /// User activity (walking, sailing…).
    pub const ACTIVITY: &str = "activity";
    /// Air temperature.
    pub const TEMPERATURE: &str = "temperature";
    /// Ambient light.
    pub const LIGHT: &str = "light";
    /// Ambient noise.
    pub const NOISE: &str = "noise";
    /// Wind speed.
    pub const WIND: &str = "wind";
    /// Relative humidity.
    pub const HUMIDITY: &str = "humidity";
    /// Atmospheric pressure.
    pub const PRESSURE: &str = "pressure";
    /// Nearby devices count.
    pub const NEARBY_DEVICES: &str = "nearbyDevices";
    /// Remaining battery of the device.
    pub const DEVICE_POWER: &str = "devicePower";
}

/// Metadata keys usable in WHERE clauses (`CxtVocabulary`).
pub mod metadata_keys {
    /// Closeness to the true state.
    pub const CORRECTNESS: &str = "correctness";
    /// Measurement precision.
    pub const PRECISION: &str = "precision";
    /// Measurement accuracy.
    pub const ACCURACY: &str = "accuracy";
    /// Fraction of information known.
    pub const COMPLETENESS: &str = "completeness";
    /// Privacy label.
    pub const PRIVACY: &str = "privacy";
    /// Source trust level.
    pub const TRUST: &str = "trust";
}

/// Condition operators of the `CxtRulesVocabulary` (§4.3: "the operators
/// currently supported are equal, notEqual, moreThan, and lessThan").
pub mod operators {
    /// Equality.
    pub const EQUAL: &str = "equal";
    /// Inequality.
    pub const NOT_EQUAL: &str = "notEqual";
    /// Strictly greater.
    pub const MORE_THAN: &str = "moreThan";
    /// Strictly smaller.
    pub const LESS_THAN: &str = "lessThan";
}

/// Control-policy actions of the `CxtRulesVocabulary` (§4.3: "Actions
/// currently supported are reducePower, reduceMemory, and reduceLoad").
pub mod rule_actions {
    /// Suspend or downgrade energy-hungry provisioning.
    pub const REDUCE_POWER: &str = "reducePower";
    /// Trim local context storage.
    pub const REDUCE_MEMORY: &str = "reduceMemory";
    /// Lower provisioning rates.
    pub const REDUCE_LOAD: &str = "reduceLoad";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_values_are_paper_spelling() {
        assert_eq!(cxt_types::NEARBY_DEVICES, "nearbyDevices");
        assert_eq!(operators::NOT_EQUAL, "notEqual");
        assert_eq!(rule_actions::REDUCE_POWER, "reducePower");
        assert_eq!(metadata_keys::ACCURACY, "accuracy");
    }
}
