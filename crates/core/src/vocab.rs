//! The three vocabularies exposed to application developers (§4.4):
//! `CxtVocabulary` (context and metadata types), `QueryVocabulary`
//! (query clause keywords) and `CxtRulesVocabulary` (control-policy
//! operators and actions) — plus the [`Interner`] that maps vocabulary
//! strings to dense [`Sym`] ids for hot-path matching (ROADMAP item 3;
//! the brokerd subscription tables shard on these ids).

use std::collections::BTreeMap;
use std::fmt;

/// A dense interned symbol for a context type or source name.
///
/// Comparing two `Sym`s is a single `u16` compare — the broker hot path
/// uses this instead of string equality, and subscription tables index
/// directly by the id.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u16);

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// A small symbol table interning vocabulary strings as [`Sym`] ids.
///
/// Interning is `O(log n)` (a `BTreeMap` probe, done once per distinct
/// string at admission time); every later lookup, comparison and table
/// index on the hot path is `O(1)` on the dense id. Iteration and id
/// assignment are insertion-ordered and therefore deterministic for a
/// deterministic input sequence.
///
/// ```
/// use contory::vocab::Interner;
///
/// let mut tab = Interner::new();
/// let wind = tab.intern("wind");
/// assert_eq!(tab.intern("wind"), wind);        // stable
/// assert_eq!(tab.resolve(wind), Some("wind")); // reversible
/// ```
#[derive(Clone, Debug, Default)]
pub struct Interner {
    names: Vec<String>,
    ids: BTreeMap<String, Sym>,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `name`, returning its stable id. Ids are assigned densely
    /// in first-seen order.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` distinct names are interned — the
    /// context-type and source vocabularies are small by design (§4.4),
    /// so overflow indicates a caller interning unbounded data.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.ids.get(name) {
            return sym;
        }
        let id = self.names.len();
        assert!(id <= usize::from(u16::MAX), "interner overflow (>65536 symbols)");
        let sym = Sym(id as u16);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), sym);
        sym
    }

    /// The id of an already-interned name, if any (no insertion).
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.ids.get(name).copied()
    }

    /// The name behind an id.
    pub fn resolve(&self, sym: Sym) -> Option<&str> {
        self.names.get(usize::from(sym.0)).map(String::as_str)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Context type names (`CxtVocabulary`). Spatial, temporal, user-status,
/// environmental and resource categories per §4.1.
pub mod cxt_types {
    /// Geographic position.
    pub const LOCATION: &str = "location";
    /// Movement speed.
    pub const SPEED: &str = "speed";
    /// User activity (walking, sailing…).
    pub const ACTIVITY: &str = "activity";
    /// Air temperature.
    pub const TEMPERATURE: &str = "temperature";
    /// Ambient light.
    pub const LIGHT: &str = "light";
    /// Ambient noise.
    pub const NOISE: &str = "noise";
    /// Wind speed.
    pub const WIND: &str = "wind";
    /// Relative humidity.
    pub const HUMIDITY: &str = "humidity";
    /// Atmospheric pressure.
    pub const PRESSURE: &str = "pressure";
    /// Nearby devices count.
    pub const NEARBY_DEVICES: &str = "nearbyDevices";
    /// Remaining battery of the device.
    pub const DEVICE_POWER: &str = "devicePower";
}

/// Metadata keys usable in WHERE clauses (`CxtVocabulary`).
pub mod metadata_keys {
    /// Closeness to the true state.
    pub const CORRECTNESS: &str = "correctness";
    /// Measurement precision.
    pub const PRECISION: &str = "precision";
    /// Measurement accuracy.
    pub const ACCURACY: &str = "accuracy";
    /// Fraction of information known.
    pub const COMPLETENESS: &str = "completeness";
    /// Privacy label.
    pub const PRIVACY: &str = "privacy";
    /// Source trust level.
    pub const TRUST: &str = "trust";
}

/// Condition operators of the `CxtRulesVocabulary` (§4.3: "the operators
/// currently supported are equal, notEqual, moreThan, and lessThan").
pub mod operators {
    /// Equality.
    pub const EQUAL: &str = "equal";
    /// Inequality.
    pub const NOT_EQUAL: &str = "notEqual";
    /// Strictly greater.
    pub const MORE_THAN: &str = "moreThan";
    /// Strictly smaller.
    pub const LESS_THAN: &str = "lessThan";
}

/// Control-policy actions of the `CxtRulesVocabulary` (§4.3: "Actions
/// currently supported are reducePower, reduceMemory, and reduceLoad").
pub mod rule_actions {
    /// Suspend or downgrade energy-hungry provisioning.
    pub const REDUCE_POWER: &str = "reducePower";
    /// Trim local context storage.
    pub const REDUCE_MEMORY: &str = "reduceMemory";
    /// Lower provisioning rates.
    pub const REDUCE_LOAD: &str = "reduceLoad";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_values_are_paper_spelling() {
        assert_eq!(cxt_types::NEARBY_DEVICES, "nearbyDevices");
        assert_eq!(operators::NOT_EQUAL, "notEqual");
        assert_eq!(rule_actions::REDUCE_POWER, "reducePower");
        assert_eq!(metadata_keys::ACCURACY, "accuracy");
    }

    #[test]
    fn interner_ids_are_dense_stable_and_reversible() {
        let mut tab = Interner::new();
        assert!(tab.is_empty());
        let a = tab.intern("wind");
        let b = tab.intern("location");
        assert_eq!(a, Sym(0));
        assert_eq!(b, Sym(1));
        assert_eq!(tab.intern("wind"), a);
        assert_eq!(tab.len(), 2);
        assert_eq!(tab.resolve(a), Some("wind"));
        assert_eq!(tab.resolve(Sym(9)), None);
        assert_eq!(tab.get("location"), Some(b));
        assert_eq!(tab.get("nope"), None);
    }
}
