//! The QueryManager (§4.3): "responsible for maintaining an updated list
//! of all active queries and for assigning queries to suitable Facade
//! components" (the assignment policy itself lives in the
//! `ContextFactory`, which owns mechanism selection).

use crate::client::Client;
use crate::factory::{Mechanism, QueryId};
use crate::item::CxtItem;
use crate::query::CxtQuery;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

pub(crate) struct QueryRecord {
    pub query: CxtQuery,
    pub client: Rc<dyn Client>,
    /// Mechanism currently serving the query.
    pub mechanism: Mechanism,
    /// Mechanisms that failed for this query (skipped until recovery).
    pub failed: Vec<Mechanism>,
    /// Parked because every candidate mechanism failed; revived by the
    /// recovery probe instead of being terminated.
    pub suspended: bool,
}

struct Inner {
    records: BTreeMap<QueryId, QueryRecord>,
}

/// Shared handle to the active-query table.
#[derive(Clone)]
pub struct QueryManager {
    inner: Rc<RefCell<Inner>>,
}

impl Default for QueryManager {
    fn default() -> Self {
        QueryManager::new()
    }
}

impl QueryManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        QueryManager {
            inner: Rc::new(RefCell::new(Inner {
                records: BTreeMap::new(),
            })),
        }
    }

    pub(crate) fn insert(&self, id: QueryId, record: QueryRecord) {
        self.inner.borrow_mut().records.insert(id, record);
    }

    pub(crate) fn remove(&self, id: QueryId) -> Option<QueryRecord> {
        self.inner.borrow_mut().records.remove(&id)
    }

    /// Whether a query is active.
    pub fn contains(&self, id: QueryId) -> bool {
        self.inner.borrow().records.contains_key(&id)
    }

    /// Number of active queries.
    pub fn len(&self) -> usize {
        self.inner.borrow().records.len()
    }

    /// True when no queries are active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mechanism currently serving a query.
    pub fn mechanism_of(&self, id: QueryId) -> Option<Mechanism> {
        self.inner.borrow().records.get(&id).map(|r| r.mechanism)
    }

    /// Active query ids currently served by `mechanism` (suspended
    /// queries ride no mechanism and are excluded).
    pub fn queries_on(&self, mechanism: Mechanism) -> Vec<QueryId> {
        self.inner
            .borrow()
            .records
            .iter()
            .filter(|(_, r)| r.mechanism == mechanism && !r.suspended)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Whether a query is currently suspended (all mechanisms failed,
    /// waiting for a recovery probe).
    pub fn is_suspended(&self, id: QueryId) -> bool {
        self.inner
            .borrow()
            .records
            .get(&id)
            .is_some_and(|r| r.suspended)
    }

    /// Number of suspended queries.
    pub fn suspended_count(&self) -> usize {
        self.inner
            .borrow()
            .records
            .values()
            .filter(|r| r.suspended)
            .count()
    }

    pub(crate) fn set_suspended(&self, id: QueryId, suspended: bool) {
        if let Some(r) = self.inner.borrow_mut().records.get_mut(&id) {
            r.suspended = suspended;
        }
    }

    /// The original query text of an active query.
    pub fn query_of(&self, id: QueryId) -> Option<CxtQuery> {
        self.inner.borrow().records.get(&id).map(|r| r.query.clone())
    }

    pub(crate) fn client_of(&self, id: QueryId) -> Option<Rc<dyn Client>> {
        self.inner.borrow().records.get(&id).map(|r| r.client.clone())
    }

    pub(crate) fn set_mechanism(&self, id: QueryId, mechanism: Mechanism) {
        if let Some(r) = self.inner.borrow_mut().records.get_mut(&id) {
            r.mechanism = mechanism;
        }
    }

    pub(crate) fn mark_failed(&self, id: QueryId, mechanism: Mechanism) {
        if let Some(r) = self.inner.borrow_mut().records.get_mut(&id) {
            if !r.failed.contains(&mechanism) {
                r.failed.push(mechanism);
            }
        }
    }

    pub(crate) fn clear_failed(&self, id: QueryId) {
        if let Some(r) = self.inner.borrow_mut().records.get_mut(&id) {
            r.failed.clear();
        }
    }

    pub(crate) fn failed_of(&self, id: QueryId) -> Vec<Mechanism> {
        self.inner
            .borrow()
            .records
            .get(&id)
            .map(|r| r.failed.clone())
            .unwrap_or_default()
    }

    /// Delivers items to the owning client (and returns whether the query
    /// was still active).
    pub(crate) fn deliver(&self, id: QueryId, items: Vec<CxtItem>) -> bool {
        let client = {
            let inner = self.inner.borrow();
            match inner.records.get(&id) {
                Some(r) => r.client.clone(),
                None => return false,
            }
        };
        obskit::count("manager_deliveries", 1);
        obskit::count("manager_items_delivered", items.len() as u64);
        for item in items {
            client.receive_cxt_item(id, item);
        }
        true
    }

    /// Reports an error to the owning client.
    pub(crate) fn inform_error(&self, id: QueryId, message: &str) {
        let client = {
            let inner = self.inner.borrow();
            inner.records.get(&id).map(|r| r.client.clone())
        };
        if let Some(c) = client {
            c.inform_error(message);
        }
    }
}

impl fmt::Debug for QueryManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryManager")
            .field("active", &self.len())
            .finish()
    }
}
