//! Context items and their metadata (paper §4.1).
//!
//! A situation is a set of context items — `<noise=medium, light=natural,
//! activity=walking>`. Each [`CxtItem`] has a type, value(s), timestamp
//! and optionally a lifetime, a source identifier and quality metadata
//! (correctness, precision, accuracy, completeness, privacy, trust).

use simkit::{SimDuration, SimTime};
use std::fmt;

/// Identifier of the source an item came from: a sensor, a neighboring
/// device, or an infrastructure ("sensor, infrastructure, and device
/// addresses" in the paper).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub String);

impl SourceId {
    /// Creates a source id.
    pub fn new(id: impl Into<String>) -> Self {
        SourceId(id.into())
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SourceId {
    fn from(s: &str) -> Self {
        SourceId(s.to_owned())
    }
}

impl From<String> for SourceId {
    fn from(s: String) -> Self {
        SourceId(s)
    }
}

/// Trust level attached to an item.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Trust {
    /// From an unknown entity.
    #[default]
    Unknown,
    /// From a community member (e.g. another regatta participant).
    Community,
    /// From an authenticated, known source.
    Trusted,
}

impl fmt::Display for Trust {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trust::Unknown => f.write_str("unknown"),
            Trust::Community => f.write_str("community"),
            Trust::Trusted => f.write_str("trusted"),
        }
    }
}

/// Quality metadata of a context item (§4.1): "correctness (closeness to
/// the true state), precision, accuracy, completeness, and level of
/// privacy and trust".
#[derive(Clone, Debug, PartialEq)]
pub struct Metadata {
    /// Estimated closeness to the true state, `0.0..=1.0`.
    pub correctness: Option<f64>,
    /// Measurement precision (repeatability), in the value's unit.
    pub precision: Option<f64>,
    /// Measurement accuracy (1-σ error bound), in the value's unit.
    pub accuracy: Option<f64>,
    /// Fraction of the described information that is known, `0.0..=1.0`.
    pub completeness: Option<f64>,
    /// Privacy label controlling redistribution.
    pub privacy: Option<String>,
    /// Trust in the source.
    pub trust: Trust,
}

impl Metadata {
    /// Metadata with nothing known.
    pub fn none() -> Self {
        Metadata {
            correctness: None,
            precision: None,
            accuracy: None,
            completeness: None,
            privacy: None,
            trust: Trust::Unknown,
        }
    }

    /// Numeric metadata field by vocabulary name, if set.
    pub fn numeric(&self, key: &str) -> Option<f64> {
        match key {
            crate::vocab::metadata_keys::CORRECTNESS => self.correctness,
            crate::vocab::metadata_keys::PRECISION => self.precision,
            crate::vocab::metadata_keys::ACCURACY => self.accuracy,
            crate::vocab::metadata_keys::COMPLETENESS => self.completeness,
            _ => None,
        }
    }
}

impl Default for Metadata {
    fn default() -> Self {
        Metadata::none()
    }
}

/// The value(s) of a context item.
#[derive(Clone, Debug, PartialEq)]
pub enum CxtValue {
    /// A numeric quantity with a unit, e.g. `14.0 °C`.
    Number {
        /// Magnitude.
        value: f64,
        /// Unit suffix (empty for dimensionless).
        unit: String,
    },
    /// A categorical/text value, e.g. `activity=walking`.
    Text(String),
    /// A geographic position in world metres (location items).
    Position {
        /// Easting in metres.
        x: f64,
        /// Northing in metres.
        y: f64,
    },
    /// Several named components, e.g. a weather observation.
    Composite(Vec<(String, f64)>),
}

impl CxtValue {
    /// Creates a unit-less number.
    pub fn number(value: f64) -> Self {
        CxtValue::Number {
            value,
            unit: String::new(),
        }
    }

    /// Creates a number with a unit.
    pub fn quantity(value: f64, unit: impl Into<String>) -> Self {
        CxtValue::Number {
            value,
            unit: unit.into(),
        }
    }

    /// The primary numeric magnitude, if this value has one (a number,
    /// a position's first component, or a composite's first component).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            CxtValue::Number { value, .. } => Some(*value),
            CxtValue::Position { x, .. } => Some(*x),
            CxtValue::Composite(parts) => parts.first().map(|(_, v)| *v),
            CxtValue::Text(_) => None,
        }
    }

    /// Approximate serialized size in bytes (the paper: a wind item is
    /// 53 bytes, a location item 136 bytes).
    fn wire_size(&self) -> usize {
        match self {
            CxtValue::Number { unit, .. } => 10 + unit.len(),
            CxtValue::Text(t) => t.len() + 2,
            // lat/lon as doubles plus geodetic datum fields — the big one.
            CxtValue::Position { .. } => 72,
            CxtValue::Composite(parts) => {
                parts.iter().map(|(k, _)| k.len() + 10).sum::<usize>() + 4
            }
        }
    }
}

impl fmt::Display for CxtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CxtValue::Number { value, unit } => write!(f, "{value:.1}{unit}"),
            CxtValue::Text(t) => f.write_str(t),
            CxtValue::Position { x, y } => write!(f, "({x:.1}, {y:.1})"),
            CxtValue::Composite(parts) => {
                let mut first = true;
                for (k, v) in parts {
                    if !first {
                        f.write_str(",")?;
                    }
                    write!(f, "{k}={v:.1}")?;
                    first = false;
                }
                Ok(())
            }
        }
    }
}

/// A context item (§4.1): type, value, timestamp, and optional lifetime,
/// source and metadata.
///
/// ```
/// use contory::{CxtItem, CxtValue, Trust};
/// use simkit::{SimDuration, SimTime};
///
/// let item = CxtItem::new("temperature", CxtValue::quantity(14.0, "C"), SimTime::ZERO)
///     .with_lifetime(SimDuration::from_secs(30))
///     .with_accuracy(0.2)
///     .with_trust(Trust::Trusted);
/// assert!(item.is_valid_at(SimTime::from_secs(30)));
/// assert!(!item.is_valid_at(SimTime::from_secs(31)));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CxtItem {
    /// Context category (the SELECT clause name).
    pub cxt_type: String,
    /// Current value(s).
    pub value: CxtValue,
    /// When the item had this value.
    pub timestamp: SimTime,
    /// Validity duration, if bounded.
    pub lifetime: Option<SimDuration>,
    /// Where the item came from.
    pub source: Option<SourceId>,
    /// Quality metadata.
    pub metadata: Metadata,
}

impl CxtItem {
    /// Creates an item with no lifetime, source or metadata.
    pub fn new(cxt_type: impl Into<String>, value: CxtValue, timestamp: SimTime) -> Self {
        CxtItem {
            cxt_type: cxt_type.into(),
            value,
            timestamp,
            lifetime: None,
            source: None,
            metadata: Metadata::none(),
        }
    }

    /// Sets the validity duration, builder style.
    pub fn with_lifetime(mut self, lifetime: SimDuration) -> Self {
        self.lifetime = Some(lifetime);
        self
    }

    /// Sets the source, builder style.
    pub fn with_source(mut self, source: impl Into<SourceId>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Sets the accuracy metadata, builder style.
    pub fn with_accuracy(mut self, accuracy: f64) -> Self {
        self.metadata.accuracy = Some(accuracy);
        self
    }

    /// Sets the correctness metadata, builder style.
    pub fn with_correctness(mut self, correctness: f64) -> Self {
        self.metadata.correctness = Some(correctness);
        self
    }

    /// Sets the trust metadata, builder style.
    pub fn with_trust(mut self, trust: Trust) -> Self {
        self.metadata.trust = trust;
        self
    }

    /// Replaces all metadata, builder style.
    pub fn with_metadata(mut self, metadata: Metadata) -> Self {
        self.metadata = metadata;
        self
    }

    /// Age of the item at `now`.
    pub fn age(&self, now: SimTime) -> SimDuration {
        now - self.timestamp
    }

    /// Whether the item is within its lifetime at `now` (items without a
    /// lifetime never expire).
    pub fn is_valid_at(&self, now: SimTime) -> bool {
        match self.lifetime {
            Some(l) => now <= self.timestamp + l,
            None => true,
        }
    }

    /// Whether the item is no older than `freshness` at `now`.
    pub fn is_fresh_at(&self, now: SimTime, freshness: SimDuration) -> bool {
        self.age(now) <= freshness
    }

    /// Approximate serialized size in bytes. A wind item is ~53 bytes and
    /// a location item ~136 bytes, matching the paper's §6.1.
    pub fn wire_size(&self) -> usize {
        let mut size = 24 // header: type tag, timestamp, flags
            + self.cxt_type.len()
            + self.value.wire_size();
        if self.lifetime.is_some() {
            size += 8;
        }
        if let Some(s) = &self.source {
            size += s.0.len() + 2;
        }
        let m = &self.metadata;
        for field in [m.correctness, m.precision, m.accuracy, m.completeness] {
            if field.is_some() {
                size += 9;
            }
        }
        if let Some(p) = &m.privacy {
            size += p.len() + 2;
        }
        if m.trust != Trust::Unknown {
            size += 8;
        }
        size
    }

    /// Printable value text (what goes in a tag, e.g. `"14.0C,0.2,trusted"`).
    pub fn value_text(&self) -> String {
        let mut s = self.value.to_string();
        if let Some(a) = self.metadata.accuracy {
            s.push_str(&format!(",{a}"));
        }
        if self.metadata.trust != Trust::Unknown {
            s.push_str(&format!(",{}", self.metadata.trust));
        }
        s
    }
}

impl fmt::Display for CxtItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={} @ {}", self.cxt_type, self.value, self.timestamp)?;
        if let Some(s) = &self.source {
            write!(f, " from {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn lifetime_validity() {
        let item = CxtItem::new("temperature", CxtValue::number(14.0), t(10))
            .with_lifetime(SimDuration::from_secs(5));
        assert!(item.is_valid_at(t(10)));
        assert!(item.is_valid_at(t(15)));
        assert!(!item.is_valid_at(t(16)));
        let eternal = CxtItem::new("temperature", CxtValue::number(14.0), t(10));
        assert!(eternal.is_valid_at(t(10_000)));
    }

    #[test]
    fn freshness() {
        let item = CxtItem::new("wind", CxtValue::quantity(5.0, "kn"), t(100));
        assert!(item.is_fresh_at(t(130), SimDuration::from_secs(30)));
        assert!(!item.is_fresh_at(t(131), SimDuration::from_secs(30)));
        assert_eq!(item.age(t(160)), SimDuration::from_secs(60));
    }

    #[test]
    fn wire_sizes_match_paper_ranges() {
        // "the size of a context item varies from 53 bytes (e.g., a wind
        //  item) to 136 bytes (e.g., a location item)"
        let wind = CxtItem::new("wind", CxtValue::quantity(5.2, "kn"), t(0))
            .with_accuracy(0.5);
        assert!(
            (45..=65).contains(&wind.wire_size()),
            "wind item {} bytes",
            wind.wire_size()
        );
        let location = CxtItem::new(
            "location",
            CxtValue::Position { x: 1_234.5, y: -987.6 },
            t(0),
        )
        .with_source("btgps://inssirf-iii/0")
        .with_accuracy(5.0)
        .with_trust(Trust::Trusted);
        assert!(
            (120..=150).contains(&location.wire_size()),
            "location item {} bytes",
            location.wire_size()
        );
    }

    #[test]
    fn metadata_numeric_lookup() {
        let mut m = Metadata::none();
        m.accuracy = Some(0.2);
        m.correctness = Some(0.9);
        assert_eq!(m.numeric("accuracy"), Some(0.2));
        assert_eq!(m.numeric("correctness"), Some(0.9));
        assert_eq!(m.numeric("precision"), None);
        assert_eq!(m.numeric("bogus"), None);
    }

    #[test]
    fn value_accessors_and_display() {
        assert_eq!(CxtValue::number(3.5).as_f64(), Some(3.5));
        assert_eq!(CxtValue::Text("walking".into()).as_f64(), None);
        assert_eq!(
            CxtValue::Position { x: 1.0, y: 2.0 }.to_string(),
            "(1.0, 2.0)"
        );
        let comp = CxtValue::Composite(vec![("speed".into(), 6.1), ("course".into(), 82.0)]);
        assert_eq!(comp.as_f64(), Some(6.1));
        assert_eq!(comp.to_string(), "speed=6.1,course=82.0");
        assert_eq!(CxtValue::quantity(14.02, "C").to_string(), "14.0C");
    }

    #[test]
    fn value_text_carries_metadata() {
        let item = CxtItem::new("temperature", CxtValue::quantity(14.0, "C"), t(0))
            .with_accuracy(1.0)
            .with_trust(Trust::Trusted);
        assert_eq!(item.value_text(), "14.0C,1,trusted");
    }

    #[test]
    fn display_mentions_source() {
        let item = CxtItem::new("location", CxtValue::Position { x: 0.0, y: 0.0 }, t(1))
            .with_source("node7");
        assert!(item.to_string().contains("from node7"));
    }
}
