//! Per-mechanism Facades (§4.3).
//!
//! "For each of the three types of context provisioning mechanisms
//! supported, a corresponding Facade module offers a unified interface
//! for managing CxtProviders of that specific type." The Facade performs
//! *query aggregation*: a new query is merged with a compatible active
//! query where possible (query merging), and provider results are
//! filtered back per original query (post-extraction). "CxtProviders of
//! different Facades can be assigned to the same query, but each
//! CxtProvider is assigned only to one (single or merged) query at
//! a time."

use crate::error::ContoryError;
use crate::factory::QueryId;
use crate::item::CxtItem;
use crate::merge::{post_extract, try_merge};
use crate::providers::{CxtProvider, ProviderFailure, ProviderSink};
use crate::query::{CxtQuery, DurationClause, QueryMode};
use simkit::Sim;
use std::cell::RefCell;
use std::fmt;
use std::rc::{Rc, Weak};

/// Builds a provider for this facade's mechanism, given the (merged)
/// query, the result sink and the failure callback.
pub(crate) type ProviderFactory =
    Rc<dyn Fn(&CxtQuery, ProviderSink, ProviderFailure) -> Result<Box<dyn CxtProvider>, ContoryError>>;

/// Receives post-extracted items for one member query.
pub(crate) type DeliverFn = Rc<dyn Fn(QueryId, Vec<CxtItem>)>;

/// Told when a member query exhausted its sample budget.
pub(crate) type MemberDoneFn = Rc<dyn Fn(QueryId)>;

/// Told when a provider's mechanism failed, with the member queries that
/// were riding it.
pub(crate) type ProviderFailedFn = Rc<dyn Fn(Vec<QueryId>, crate::refs::RefError)>;

struct Member {
    id: QueryId,
    query: CxtQuery,
    samples_left: Option<u32>,
}

struct Entry {
    id: u64,
    merged: CxtQuery,
    members: Vec<Member>,
    provider: Rc<dyn CxtProvider>,
}

struct Inner {
    sim: Sim,
    entries: Vec<Entry>,
    next_entry: u64,
    make_provider: ProviderFactory,
    deliver: DeliverFn,
    member_done: MemberDoneFn,
    provider_failed: ProviderFailedFn,
}

/// A per-mechanism facade. Cloneable handle.
#[derive(Clone)]
pub struct Facade {
    inner: Rc<RefCell<Inner>>,
}

impl Facade {
    pub(crate) fn new(
        sim: &Sim,
        make_provider: ProviderFactory,
        deliver: DeliverFn,
        member_done: MemberDoneFn,
        provider_failed: ProviderFailedFn,
    ) -> Self {
        Facade {
            inner: Rc::new(RefCell::new(Inner {
                sim: sim.clone(),
                entries: Vec::new(),
                next_entry: 0,
                make_provider,
                deliver,
                member_done,
                provider_failed,
            })),
        }
    }

    /// Submits a member query: merged into an existing compatible entry
    /// (the provider's parameters are updated) or served by a fresh
    /// provider.
    pub(crate) fn submit(&self, id: QueryId, query: CxtQuery) -> Result<(), ContoryError> {
        let samples_left = match (&query.mode, query.duration) {
            (QueryMode::OnDemand, _) => Some(1),
            (_, DurationClause::Samples(n)) => Some(n),
            _ => None,
        };
        // Try merging into an existing entry.
        {
            let mut inner = self.inner.borrow_mut();
            for entry in &mut inner.entries {
                if let Some(merged) = try_merge(&entry.merged, &query) {
                    entry.merged = merged.clone();
                    entry.members.push(Member {
                        id,
                        query,
                        samples_left,
                    });
                    entry.provider.update_query(&merged);
                    obskit::count("facade_merges", 1);
                    return Ok(());
                }
            }
        }
        // No merge possible: new provider.
        let entry_id = {
            let mut inner = self.inner.borrow_mut();
            inner.next_entry += 1;
            inner.next_entry
        };
        let weak = Rc::downgrade(&self.inner);
        let sink: ProviderSink = {
            let weak = weak.clone();
            Rc::new(move |items| Facade::route(&weak, entry_id, items))
        };
        let on_failure: ProviderFailure = Rc::new(move |err| {
            Facade::entry_failed(&weak, entry_id, err);
        });
        let provider: Rc<dyn CxtProvider> = {
            let make = self.inner.borrow().make_provider.clone();
            Rc::from(make(&query, sink, on_failure)?)
        };
        {
            let mut inner = self.inner.borrow_mut();
            inner.entries.push(Entry {
                id: entry_id,
                merged: query.clone(),
                members: vec![Member {
                    id,
                    query,
                    samples_left,
                }],
                provider: provider.clone(),
            });
        }
        // Start outside the borrow: a provider whose radio is already
        // down reports failure synchronously, which re-enters the facade.
        obskit::count("facade_providers_started", 1);
        provider.start();
        Ok(())
    }

    /// Routes provider output: post-extract per member, deliver, retire
    /// exhausted members.
    fn route(weak: &Weak<RefCell<Inner>>, entry_id: u64, items: Vec<CxtItem>) {
        let Some(inner_rc) = weak.upgrade() else {
            return;
        };
        let now = inner_rc.borrow().sim.now();
        let mut deliveries: Vec<(QueryId, Vec<CxtItem>)> = Vec::new();
        let mut retired: Vec<QueryId> = Vec::new();
        let mut entry_emptied = false;
        {
            let mut inner = inner_rc.borrow_mut();
            let Some(entry) = inner.entries.iter_mut().find(|e| e.id == entry_id) else {
                return;
            };
            for member in &mut entry.members {
                let extracted = post_extract(&member.query, &items, now);
                if extracted.is_empty() {
                    continue;
                }
                let take = match member.samples_left {
                    Some(left) => extracted.len().min(left as usize),
                    None => extracted.len(),
                };
                let batch: Vec<CxtItem> = extracted.into_iter().take(take).collect();
                if let Some(left) = &mut member.samples_left {
                    *left -= batch.len() as u32;
                    if *left == 0 {
                        retired.push(member.id);
                    }
                }
                deliveries.push((member.id, batch));
            }
            entry.members.retain(|m| !retired.contains(&m.id));
            if entry.members.is_empty() {
                entry.provider.stop();
                inner.entries.retain(|e| e.id != entry_id);
                entry_emptied = true;
            } else if !retired.is_empty() {
                // Shrink the merged query to the remaining members.
                Self::remerge_locked(entry_id, &mut inner);
            }
        }
        let _ = entry_emptied;
        let (deliver, member_done) = {
            let inner = inner_rc.borrow();
            (inner.deliver.clone(), inner.member_done.clone())
        };
        for (id, batch) in deliveries {
            obskit::count("facade_batches_routed", 1);
            obskit::count("facade_items_routed", batch.len() as u64);
            deliver(id, batch);
        }
        for id in retired {
            member_done(id);
        }
    }

    fn entry_failed(weak: &Weak<RefCell<Inner>>, entry_id: u64, err: crate::refs::RefError) {
        let Some(inner_rc) = weak.upgrade() else {
            return;
        };
        let (ids, cb) = {
            let mut inner = inner_rc.borrow_mut();
            let Some(pos) = inner.entries.iter().position(|e| e.id == entry_id) else {
                return;
            };
            let entry = inner.entries.remove(pos);
            entry.provider.stop();
            let ids: Vec<QueryId> = entry.members.iter().map(|m| m.id).collect();
            (ids, inner.provider_failed.clone())
        };
        cb(ids, err);
    }

    /// Recomputes an entry's merged query from its remaining members and
    /// pushes the update to the provider. Caller holds the borrow.
    fn remerge_locked(entry_id: u64, inner: &mut Inner) {
        if let Some(entry) = inner.entries.iter_mut().find(|e| e.id == entry_id) {
            let mut merged = entry.members[0].query.clone();
            for m in &entry.members[1..] {
                if let Some(next) = try_merge(&merged, &m.query) {
                    merged = next;
                }
            }
            entry.merged = merged.clone();
            entry.provider.update_query(&merged);
        }
    }

    /// Removes a member; stops the provider when the entry empties.
    /// Returns true if the member was found here.
    pub(crate) fn cancel(&self, id: QueryId) -> bool {
        let mut inner = self.inner.borrow_mut();
        let Some(entry_pos) = inner
            .entries
            .iter()
            .position(|e| e.members.iter().any(|m| m.id == id))
        else {
            return false;
        };
        let entry_id = inner.entries[entry_pos].id;
        {
            let entry = &mut inner.entries[entry_pos];
            entry.members.retain(|m| m.id != id);
        }
        if inner.entries[entry_pos].members.is_empty() {
            let entry = inner.entries.remove(entry_pos);
            entry.provider.stop();
        } else {
            Self::remerge_locked(entry_id, &mut inner);
        }
        true
    }

    /// Whether a member query is served here.
    pub fn has_query(&self, id: QueryId) -> bool {
        self.inner
            .borrow()
            .entries
            .iter()
            .any(|e| e.members.iter().any(|m| m.id == id))
    }

    /// All member queries currently served, with their texts.
    pub fn members(&self) -> Vec<(QueryId, CxtQuery)> {
        self.inner
            .borrow()
            .entries
            .iter()
            .flat_map(|e| e.members.iter().map(|m| (m.id, m.query.clone())))
            .collect()
    }

    /// Number of active providers (merged queries) — what query merging
    /// keeps minimal.
    pub fn provider_count(&self) -> usize {
        self.inner.borrow().entries.len()
    }

    /// Doubles the EVERY period of all merged queries (`reduceLoad`).
    pub(crate) fn slow_down(&self, factor: u64) {
        let mut inner = self.inner.borrow_mut();
        for entry in &mut inner.entries {
            if let QueryMode::Periodic(p) = entry.merged.mode {
                entry.merged.mode = QueryMode::Periodic(p * factor);
                entry.provider.update_query(&entry.merged.clone());
            }
        }
    }

    /// Stops every provider and clears all entries (used when a device
    /// shuts the middleware down).
    pub fn stop_all(&self) {
        let mut inner = self.inner.borrow_mut();
        for entry in &inner.entries {
            entry.provider.stop();
        }
        inner.entries.clear();
    }
}

impl fmt::Debug for Facade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Facade")
            .field("providers", &inner.entries.len())
            .field(
                "members",
                &inner.entries.iter().map(|e| e.members.len()).sum::<usize>(),
            )
            .finish()
    }
}
