//! Evaluation of WHERE predicates and EVENT expressions.
//!
//! ## WHERE semantics
//!
//! WHERE filters compare against item *metadata*. For quality metadata,
//! `=` is interpreted as a quality threshold rather than strict equality
//! (the paper's example query "WHERE accuracy=0.2" asks for data with
//! accuracy *of* 0.2 °C — a sensor that is *better* than 0.2 °C clearly
//! qualifies):
//!
//! - `accuracy` / `precision` (lower is better): `=v` accepts values ≤ v.
//! - `correctness` / `completeness` (higher is better): `=v` accepts ≥ v.
//! - `trust`: `=level` accepts at least that level
//!   (unknown < community < trusted).
//! - Everything else (`privacy`, unknown keys): literal comparison.
//!
//! Explicit `<`, `<=`, `>`, `>=`, `!=` always compare literally. An item
//! missing the referenced metadata fails the predicate — quality that
//! cannot be verified is not assumed.
//!
//! ## EVENT semantics
//!
//! EVENT expressions are evaluated over the items collected in the
//! current round ([`EventWindow`]): aggregates (`AVG`, `MIN`, `MAX`,
//! `SUM`, `COUNT`) and latest-value references, combined with `AND`/`OR`.

use crate::item::{CxtItem, Trust};
use crate::query::{AggFunc, CmpOp, EventExpr, EventTerm, PredValue, WherePredicate};
use crate::vocab::metadata_keys;
use simkit::{SimDuration, SimTime};

/// Whether `item` satisfies every predicate in `preds`.
pub(crate) fn matches_where(item: &CxtItem, preds: &[WherePredicate]) -> bool {
    preds.iter().all(|p| matches_one(item, p))
}

fn matches_one(item: &CxtItem, pred: &WherePredicate) -> bool {
    match (&pred.value, pred.key.as_str()) {
        (PredValue::Number(target), key) => {
            let Some(actual) = item.metadata.numeric(key) else {
                return false;
            };
            match pred.op {
                CmpOp::Eq => quality_eq(key, actual, *target),
                op => op.eval_f64(actual, *target),
            }
        }
        (PredValue::Text(target), metadata_keys::TRUST) => {
            let Some(target_level) = parse_trust(target) else {
                return false;
            };
            let actual = item.metadata.trust;
            match pred.op {
                CmpOp::Eq | CmpOp::Ge => actual >= target_level,
                CmpOp::Ne => actual != target_level,
                CmpOp::Gt => actual > target_level,
                CmpOp::Lt => actual < target_level,
                CmpOp::Le => actual <= target_level,
            }
        }
        (PredValue::Text(target), metadata_keys::PRIVACY) => {
            let actual = item.metadata.privacy.as_deref();
            match pred.op {
                CmpOp::Eq => actual == Some(target.as_str()),
                CmpOp::Ne => actual != Some(target.as_str()),
                _ => false,
            }
        }
        // Text comparison against the item's value itself (categorical
        // context, e.g. activity=walking).
        (PredValue::Text(target), "value") => {
            let text = item.value.to_string();
            match pred.op {
                CmpOp::Eq => text == *target,
                CmpOp::Ne => text != *target,
                _ => false,
            }
        }
        _ => false,
    }
}

/// Quality-threshold reading of `=` (see module docs).
fn quality_eq(key: &str, actual: f64, target: f64) -> bool {
    const EPS: f64 = 1e-9;
    match key {
        metadata_keys::ACCURACY | metadata_keys::PRECISION => actual <= target + EPS,
        metadata_keys::CORRECTNESS | metadata_keys::COMPLETENESS => actual >= target - EPS,
        _ => (actual - target).abs() <= EPS,
    }
}

fn parse_trust(s: &str) -> Option<Trust> {
    match s {
        "unknown" => Some(Trust::Unknown),
        "community" => Some(Trust::Community),
        "trusted" => Some(Trust::Trusted),
        _ => None,
    }
}

/// The set of items collected in the current round, against which EVENT
/// conditions are evaluated.
///
/// ```
/// use contory::{CxtItem, CxtValue, EventWindow};
/// use contory::query::CxtQuery;
/// use simkit::SimTime;
///
/// let q = CxtQuery::parse("SELECT t DURATION 1 hour EVENT AVG(t)>25")?;
/// let mut w = EventWindow::new();
/// w.push(CxtItem::new("t", CxtValue::number(24.0), SimTime::ZERO));
/// w.push(CxtItem::new("t", CxtValue::number(28.0), SimTime::ZERO));
/// if let contory::query::QueryMode::Event(expr) = &q.mode {
///     assert!(w.eval(expr)); // AVG = 26 > 25
/// }
/// # Ok::<(), contory::query::ParseQueryError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct EventWindow {
    items: Vec<CxtItem>,
}

impl EventWindow {
    /// Creates an empty window.
    pub fn new() -> Self {
        EventWindow::default()
    }

    /// Adds a collected item.
    pub fn push(&mut self, item: CxtItem) {
        self.items.push(item);
    }

    /// Items currently in the window.
    pub fn items(&self) -> &[CxtItem] {
        &self.items
    }

    /// Number of items in the window.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items have been collected.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Empties the window (start of a new round).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Drops items older than `max_age` at `now` (sliding windows).
    pub fn retain_fresh(&mut self, now: SimTime, max_age: SimDuration) {
        self.items.retain(|i| i.is_fresh_at(now, max_age));
    }

    /// Evaluates an EVENT expression against the window. Comparisons
    /// whose terms cannot be computed (no data for the field) are false.
    pub fn eval(&self, expr: &EventExpr) -> bool {
        match expr {
            EventExpr::Cmp { left, op, right } => {
                match (self.term(left), self.term(right)) {
                    (Some(l), Some(r)) => op.eval_f64(l, r),
                    _ => false,
                }
            }
            EventExpr::And(a, b) => self.eval(a) && self.eval(b),
            EventExpr::Or(a, b) => self.eval(a) || self.eval(b),
        }
    }

    fn term(&self, term: &EventTerm) -> Option<f64> {
        match term {
            EventTerm::Number(n) => Some(*n),
            EventTerm::Field(name) => self
                .items
                .iter()
                .rev()
                .find(|i| &i.cxt_type == name)
                .and_then(|i| i.value.as_f64()),
            EventTerm::Agg { func, field } => {
                // Single explicit-order pass: float addition is not
                // associative, so the accumulation order is pinned to
                // the window's (deterministic) item order rather than
                // left to an iterator adapter's grouping.
                let mut count = 0usize;
                let mut sum = 0.0f64;
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for item in self.items.iter().filter(|i| &i.cxt_type == field) {
                    let Some(v) = item.value.as_f64() else {
                        continue;
                    };
                    count += 1;
                    sum += v;
                    min = min.min(v);
                    max = max.max(v);
                }
                if count == 0 && *func != AggFunc::Count {
                    return None;
                }
                Some(match func {
                    AggFunc::Count => count as f64,
                    AggFunc::Avg => sum / count as f64,
                    AggFunc::Min => min,
                    AggFunc::Max => max,
                    AggFunc::Sum => sum,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::CxtValue;
    use crate::query::CxtQuery;

    fn item_with_accuracy(acc: f64) -> CxtItem {
        CxtItem::new("temperature", CxtValue::number(20.0), SimTime::ZERO).with_accuracy(acc)
    }

    fn preds(text: &str) -> Vec<WherePredicate> {
        CxtQuery::parse(&format!("SELECT t WHERE {text} DURATION 1 min"))
            .unwrap()
            .where_clause
    }

    #[test]
    fn accuracy_eq_is_a_quality_threshold() {
        let ps = preds("accuracy=0.2");
        assert!(matches_where(&item_with_accuracy(0.2), &ps));
        assert!(matches_where(&item_with_accuracy(0.1), &ps), "better passes");
        assert!(!matches_where(&item_with_accuracy(0.5), &ps), "worse fails");
    }

    #[test]
    fn correctness_eq_is_a_floor() {
        let ps = preds("correctness=0.8");
        let good = CxtItem::new("t", CxtValue::number(1.0), SimTime::ZERO).with_correctness(0.9);
        let bad = CxtItem::new("t", CxtValue::number(1.0), SimTime::ZERO).with_correctness(0.5);
        assert!(matches_where(&good, &ps));
        assert!(!matches_where(&bad, &ps));
    }

    #[test]
    fn explicit_operators_compare_literally() {
        let ps = preds("accuracy>0.3");
        assert!(matches_where(&item_with_accuracy(0.5), &ps));
        assert!(!matches_where(&item_with_accuracy(0.2), &ps));
        let ps = preds("accuracy!=0.2");
        assert!(!matches_where(&item_with_accuracy(0.2), &ps));
    }

    #[test]
    fn missing_metadata_fails() {
        let bare = CxtItem::new("t", CxtValue::number(1.0), SimTime::ZERO);
        assert!(!matches_where(&bare, &preds("accuracy=0.2")));
        assert!(matches_where(&bare, &[]));
    }

    #[test]
    fn trust_is_ordered() {
        let community = CxtItem::new("t", CxtValue::number(1.0), SimTime::ZERO)
            .with_trust(Trust::Community);
        let trusted =
            CxtItem::new("t", CxtValue::number(1.0), SimTime::ZERO).with_trust(Trust::Trusted);
        let ps = preds("trust=community");
        assert!(matches_where(&community, &ps));
        assert!(matches_where(&trusted, &ps), "more trusted passes");
        let ps = preds("trust=trusted");
        assert!(!matches_where(&community, &ps));
        let ps = preds("trust!=trusted");
        assert!(matches_where(&community, &ps));
    }

    #[test]
    fn privacy_is_literal() {
        let mut item = CxtItem::new("t", CxtValue::number(1.0), SimTime::ZERO);
        item.metadata.privacy = Some("community".into());
        assert!(matches_where(&item, &preds("privacy=community")));
        assert!(!matches_where(&item, &preds("privacy=public")));
        assert!(matches_where(&item, &preds("privacy!=public")));
    }

    #[test]
    fn all_predicates_must_hold() {
        let item = item_with_accuracy(0.1);
        let ps = preds("accuracy=0.2 AND correctness=0.5");
        assert!(!matches_where(&item, &ps), "correctness missing");
    }

    #[test]
    fn event_window_aggregates() {
        let mut w = EventWindow::new();
        for v in [10.0, 20.0, 30.0] {
            w.push(CxtItem::new("temperature", CxtValue::number(v), SimTime::ZERO));
        }
        w.push(CxtItem::new("wind", CxtValue::number(99.0), SimTime::ZERO));
        let q = |s: &str| match CxtQuery::parse(&format!("SELECT t DURATION 1 min EVENT {s}"))
            .unwrap()
            .mode
        {
            crate::query::QueryMode::Event(e) => e,
            _ => unreachable!(),
        };
        assert!(w.eval(&q("AVG(temperature)=20")));
        assert!(w.eval(&q("MIN(temperature)<15")));
        assert!(w.eval(&q("MAX(temperature)>=30")));
        assert!(w.eval(&q("SUM(temperature)=60")));
        assert!(w.eval(&q("COUNT(temperature)=3")));
        assert!(!w.eval(&q("AVG(wind)>100")));
        // boolean structure
        assert!(w.eval(&q("AVG(temperature)>15 AND COUNT(temperature)>=3")));
        assert!(w.eval(&q("AVG(temperature)>100 OR MIN(wind)=99")));
    }

    #[test]
    fn event_on_empty_window_is_false_except_count() {
        let w = EventWindow::new();
        let q = |s: &str| match CxtQuery::parse(&format!("SELECT t DURATION 1 min EVENT {s}"))
            .unwrap()
            .mode
        {
            crate::query::QueryMode::Event(e) => e,
            _ => unreachable!(),
        };
        assert!(!w.eval(&q("AVG(temperature)>0")));
        assert!(w.eval(&q("COUNT(temperature)=0")));
    }

    #[test]
    fn field_term_uses_latest_value() {
        let mut w = EventWindow::new();
        w.push(CxtItem::new("t", CxtValue::number(5.0), SimTime::ZERO));
        w.push(CxtItem::new("t", CxtValue::number(9.0), SimTime::from_secs(1)));
        let e = EventExpr::Cmp {
            left: EventTerm::Field("t".into()),
            op: CmpOp::Eq,
            right: EventTerm::Number(9.0),
        };
        assert!(w.eval(&e));
    }

    #[test]
    fn window_housekeeping() {
        let mut w = EventWindow::new();
        w.push(CxtItem::new("t", CxtValue::number(1.0), SimTime::ZERO));
        w.push(CxtItem::new("t", CxtValue::number(2.0), SimTime::from_secs(100)));
        assert_eq!(w.len(), 2);
        w.retain_fresh(SimTime::from_secs(110), SimDuration::from_secs(30));
        assert_eq!(w.len(), 1);
        w.clear();
        assert!(w.is_empty());
    }
}
