//! CxtProviders: the components that accomplish context provisioning
//! (§4.3). One family per mechanism:
//!
//! - [`local::LocalCxtProvider`] — sensors on the device or attached over
//!   Bluetooth ("These providers periodically pull sensor devices and
//!   report values that match WHERE and FRESHNESS requirements").
//! - [`adhoc::AdHocCxtProvider`] — distributed provisioning in ad hoc
//!   networks, BT one-hop or WiFi multi-hop.
//! - [`infra::InfraCxtProvider`] — retrieval from remote context
//!   infrastructures.
//!
//! Each provider serves exactly one (possibly merged) query at a time and
//! supports the three interaction modes: on-demand, periodic (EVERY) and
//! event-based (EVENT).

pub(crate) mod adhoc;
pub(crate) mod infra;
pub(crate) mod local;

use crate::item::CxtItem;
use crate::query::CxtQuery;
use crate::refs::RefError;
use std::rc::Rc;

/// Where collected items go (the owning Facade wraps this to perform
/// post-extraction per member query).
pub(crate) type ProviderSink = Rc<dyn Fn(Vec<CxtItem>)>;

/// How a provider reports that its mechanism stopped working (triggers
/// the factory's reconfiguration strategy).
pub(crate) type ProviderFailure = Rc<dyn Fn(RefError)>;

/// A running context provider.
pub(crate) trait CxtProvider {
    /// Begins provisioning.
    fn start(&self);

    /// Stops provisioning and releases resources. Idempotent.
    fn stop(&self);

    /// Updates the (merged) query this provider serves — called when the
    /// Facade merges a new member in or drops one.
    fn update_query(&self, query: &CxtQuery);
}

/// Shared helper: evaluates the merged query's WHERE and FRESHNESS
/// against an item at delivery time.
pub(crate) fn provider_filter(
    query: &CxtQuery,
    items: Vec<CxtItem>,
    now: simkit::SimTime,
) -> Vec<CxtItem> {
    crate::merge::post_extract(query, &items, now)
}
