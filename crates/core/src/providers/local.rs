//! LocalCxtProvider: internal sensors and BT-attached sensors.

use super::{provider_filter, CxtProvider, ProviderFailure, ProviderSink};
use crate::item::CxtItem;
use crate::predicate::EventWindow;
use crate::query::{CxtQuery, QueryMode};
use crate::item::SourceId;
use crate::refs::{BtReference, InternalReference, RefError, StreamHandle};
use simkit::{Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

/// How the provider reaches its sensor.
enum Binding {
    /// Sensor integrated in the device.
    Internal,
    /// Sensor reachable over Bluetooth; populated after discovery.
    Bt {
        source: Option<SourceId>,
        stream: Option<StreamHandle>,
    },
}

struct Inner {
    query: CxtQuery,
    binding: Binding,
    window: EventWindow,
    running: bool,
    event_armed: bool,
}

/// Provider for `intSensor` provisioning.
pub(crate) struct LocalCxtProvider {
    sim: Sim,
    internal: Option<Rc<dyn InternalReference>>,
    bt: Option<Rc<dyn BtReference>>,
    sink: ProviderSink,
    on_failure: ProviderFailure,
    inner: Rc<RefCell<Inner>>,
}

impl LocalCxtProvider {
    /// Creates a provider. The sensor binding is decided at start time:
    /// an integrated sensor if the device has one for the query's type,
    /// otherwise a Bluetooth sensor (discovered on demand).
    pub(crate) fn new(
        sim: &Sim,
        internal: Option<Rc<dyn InternalReference>>,
        bt: Option<Rc<dyn BtReference>>,
        query: CxtQuery,
        sink: ProviderSink,
        on_failure: ProviderFailure,
    ) -> Self {
        let use_internal = internal
            .as_ref()
            .is_some_and(|i| i.provides(&query.select));
        LocalCxtProvider {
            sim: sim.clone(),
            internal,
            bt,
            sink,
            on_failure,
            inner: Rc::new(RefCell::new(Inner {
                query,
                binding: if use_internal {
                    Binding::Internal
                } else {
                    Binding::Bt {
                        source: None,
                        stream: None,
                    }
                },
                window: EventWindow::new(),
                running: false,
                event_armed: true,
            })),
        }
    }

    /// Periodic poll period: the EVERY interval, or a default poll used
    /// to feed EVENT windows.
    fn poll_period(&self) -> SimDuration {
        match &self.inner.borrow().query.mode {
            QueryMode::Periodic(p) => *p,
            _ => SimDuration::from_secs(5),
        }
    }

    fn deliver(&self, items: Vec<CxtItem>) {
        let now = self.sim.now();
        let (filtered, trigger) = {
            let mut inner = self.inner.borrow_mut();
            if !inner.running {
                return;
            }
            let filtered = provider_filter(&inner.query, items, now);
            match inner.query.mode.clone() {
                QueryMode::Event(expr) => {
                    for i in &filtered {
                        inner.window.push(i.clone());
                    }
                    if let Some(f) = inner.query.freshness {
                        inner.window.retain_fresh(now, f);
                    }
                    let holds = inner.window.eval(&expr);
                    // Edge-triggered: fire once per condition episode.
                    let fire = holds && inner.event_armed;
                    inner.event_armed = !holds;
                    if fire {
                        (filtered, true)
                    } else {
                        (Vec::new(), false)
                    }
                }
                _ => (filtered, false),
            }
        };
        let _ = trigger;
        if !filtered.is_empty() {
            obskit::count("provider_local_deliveries", 1);
            obskit::count("provider_local_items", filtered.len() as u64);
            (self.sink)(filtered);
        }
    }

    fn start_internal(&self) {
        let Some(internal) = self.internal.clone() else {
            (self.on_failure)(RefError::Unavailable("no internal sensor reference".into()));
            return;
        };
        let mode = self.inner.borrow().query.mode.clone();
        let cxt_type = self.inner.borrow().query.select.clone();
        match mode {
            QueryMode::OnDemand => {
                let me = self.clone_handle();
                internal.sample(
                    &cxt_type,
                    Box::new(move |res| match res {
                        Ok(item) => me.deliver(vec![item]),
                        Err(e) => (me.on_failure)(e),
                    }),
                );
            }
            QueryMode::Periodic(_) | QueryMode::Event(_) => {
                self.schedule_poll(self.poll_period());
            }
        }
    }

    fn start_bt(&self) {
        let Some(bt) = self.bt.clone() else {
            (self.on_failure)(RefError::Unavailable("no BT reference".into()));
            return;
        };
        if !bt.is_available() {
            (self.on_failure)(RefError::Unavailable("BT radio off".into()));
            return;
        }
        let cxt_type = self.inner.borrow().query.select.clone();
        let me = self.clone_handle();
        bt.discover_sensor(
            &cxt_type,
            Box::new(move |res| {
                if !me.inner.borrow().running {
                    return;
                }
                match res {
                    Err(e) => (me.on_failure)(e),
                    Ok(source) => me.open_stream(source),
                }
            }),
        );
    }

    fn open_stream(&self, source: SourceId) {
        let Some(bt) = self.bt.clone() else {
            (self.on_failure)(RefError::Unavailable("no BT reference".into()));
            return;
        };
        let cxt_type = self.inner.borrow().query.select.clone();
        {
            let mut inner = self.inner.borrow_mut();
            if let Binding::Bt { source: s, .. } = &mut inner.binding {
                *s = Some(source.clone());
            }
        }
        let me = self.clone_handle();
        let me_err = self.clone_handle();
        let me_done = self.clone_handle();
        bt.open_sensor_stream(
            &source,
            &cxt_type,
            Rc::new(move |items| me.deliver(items)),
            Rc::new(move |err| {
                // Sensor stream died (e.g. the BT-GPS was switched off):
                // this is the Fig. 5 trigger.
                if me_err.inner.borrow().running {
                    (me_err.on_failure)(err);
                }
            }),
            Box::new(move |res| match res {
                Ok(handle) => {
                    let mut inner = me_done.inner.borrow_mut();
                    if let Binding::Bt { stream, .. } = &mut inner.binding {
                        *stream = Some(handle);
                    }
                    let still_running = inner.running;
                    drop(inner);
                    if !still_running {
                        bt_close(&me_done);
                    }
                }
                Err(e) => {
                    if me_done.inner.borrow().running {
                        (me_done.on_failure)(e)
                    }
                }
            }),
        );
    }

    /// (Re)arms the periodic sampling timer; re-arms itself when the
    /// merged query's period changes (e.g. under `reduceLoad`).
    fn schedule_poll(&self, period: SimDuration) {
        let me = self.clone_handle();
        self.sim.schedule_repeating(period, move || {
            if !me.inner.borrow().running {
                return false;
            }
            let want = me.poll_period();
            if want != period {
                me.schedule_poll(want);
                return false;
            }
            let Some(internal) = me.internal.clone() else {
                (me.on_failure)(RefError::Unavailable("no internal sensor reference".into()));
                return false;
            };
            let me2 = me.clone_handle();
            let cxt_type = me.inner.borrow().query.select.clone();
            internal.sample(
                &cxt_type,
                Box::new(move |res| match res {
                    Ok(item) => me2.deliver(vec![item]),
                    Err(e) => (me2.on_failure)(e),
                }),
            );
            true
        });
    }

    fn clone_handle(&self) -> LocalCxtProvider {
        LocalCxtProvider {
            sim: self.sim.clone(),
            internal: self.internal.clone(),
            bt: self.bt.clone(),
            sink: self.sink.clone(),
            on_failure: self.on_failure.clone(),
            inner: self.inner.clone(),
        }
    }
}

fn bt_close(p: &LocalCxtProvider) {
    let handle = {
        let mut inner = p.inner.borrow_mut();
        match &mut inner.binding {
            Binding::Bt { stream, .. } => stream.take(),
            Binding::Internal => None,
        }
    };
    if let (Some(h), Some(bt)) = (handle, p.bt.clone()) {
        bt.close_sensor_stream(h);
    }
}

impl CxtProvider for LocalCxtProvider {
    fn start(&self) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.running {
                return;
            }
            inner.running = true;
        }
        let is_internal = matches!(self.inner.borrow().binding, Binding::Internal);
        obskit::count("provider_local_starts", 1);
        if is_internal {
            self.start_internal();
        } else {
            self.start_bt();
        }
    }

    fn stop(&self) {
        {
            let mut inner = self.inner.borrow_mut();
            if !inner.running {
                return;
            }
            inner.running = false;
        }
        bt_close(self);
    }

    fn update_query(&self, query: &CxtQuery) {
        self.inner.borrow_mut().query = query.clone();
    }
}
