//! InfraCxtProvider: retrieval from remote context infrastructures over
//! the `2G/3GReference` (§4.3).

use super::{provider_filter, CxtProvider, ProviderFailure, ProviderSink};
use crate::predicate::EventWindow;
use crate::query::{CxtQuery, QueryMode, Source};
use crate::refs::{CellReference, InfraPushMode, InfraSpec, InfraSubHandle, RefError};
use simkit::Sim;
use std::cell::RefCell;
use std::rc::Rc;

struct Inner {
    query: CxtQuery,
    window: EventWindow,
    running: bool,
    event_armed: bool,
    sub: Option<InfraSubHandle>,
}

/// Provider for `extInfra` provisioning.
pub(crate) struct InfraCxtProvider {
    sim: Sim,
    cell: Rc<dyn CellReference>,
    sink: ProviderSink,
    on_failure: ProviderFailure,
    inner: Rc<RefCell<Inner>>,
}

/// Derives the infrastructure query from a context query.
pub(crate) fn spec_from_query(query: &CxtQuery) -> InfraSpec {
    let entity = match &query.from {
        Some(Source::Entity(e)) => Some(e.clone()),
        _ => None,
    };
    let region = match &query.from {
        Some(Source::Region { x, y, radius }) => Some((*x, *y, *radius)),
        _ => None,
    };
    InfraSpec {
        cxt_type: query.select.clone(),
        entity,
        region,
        freshness: query.freshness,
        max_items: 0,
    }
}

impl InfraCxtProvider {
    /// Creates a provider over the cellular reference.
    pub(crate) fn new(
        sim: &Sim,
        cell: Rc<dyn CellReference>,
        query: CxtQuery,
        sink: ProviderSink,
        on_failure: ProviderFailure,
    ) -> Self {
        InfraCxtProvider {
            sim: sim.clone(),
            cell,
            sink,
            on_failure,
            inner: Rc::new(RefCell::new(Inner {
                query,
                window: EventWindow::new(),
                running: false,
                event_armed: true,
                sub: None,
            })),
        }
    }

    fn clone_handle(&self) -> InfraCxtProvider {
        InfraCxtProvider {
            sim: self.sim.clone(),
            cell: self.cell.clone(),
            sink: self.sink.clone(),
            on_failure: self.on_failure.clone(),
            inner: self.inner.clone(),
        }
    }

    fn handle_items(&self, items: Vec<crate::item::CxtItem>) {
        let now = self.sim.now();
        let to_deliver = {
            let mut inner = self.inner.borrow_mut();
            if !inner.running {
                return;
            }
            let filtered = provider_filter(&inner.query, items, now);
            match inner.query.mode.clone() {
                QueryMode::Event(expr) => {
                    for i in &filtered {
                        inner.window.push(i.clone());
                    }
                    if let Some(f) = inner.query.freshness {
                        inner.window.retain_fresh(now, f);
                    }
                    let holds = inner.window.eval(&expr);
                    let fire = holds && inner.event_armed;
                    inner.event_armed = !holds;
                    if fire {
                        filtered
                    } else {
                        Vec::new()
                    }
                }
                _ => filtered,
            }
        };
        if !to_deliver.is_empty() {
            obskit::count("provider_infra_deliveries", 1);
            obskit::count("provider_infra_items", to_deliver.len() as u64);
            (self.sink)(to_deliver);
        }
    }
}

impl CxtProvider for InfraCxtProvider {
    fn start(&self) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.running {
                return;
            }
            inner.running = true;
        }
        if !self.cell.is_available() {
            (self.on_failure)(RefError::Unavailable("cellular radio off".into()));
            return;
        }
        let (mode, spec) = {
            let inner = self.inner.borrow();
            (inner.query.mode.clone(), spec_from_query(&inner.query))
        };
        match mode {
            QueryMode::OnDemand => {
                obskit::count("provider_infra_fetches", 1);
                let me = self.clone_handle();
                self.cell.fetch(
                    &spec,
                    Box::new(move |res| match res {
                        Ok(items) => me.handle_items(items),
                        Err(e) => {
                            if me.inner.borrow().running {
                                (me.on_failure)(e)
                            }
                        }
                    }),
                );
            }
            QueryMode::Periodic(period) => {
                obskit::count("provider_infra_subscribes", 1);
                let me = self.clone_handle();
                let handle = self.cell.subscribe(
                    &spec,
                    InfraPushMode::Periodic(period),
                    Rc::new(move |items| me.handle_items(items)),
                );
                self.inner.borrow_mut().sub = Some(handle);
            }
            QueryMode::Event(_) => {
                obskit::count("provider_infra_subscribes", 1);
                let me = self.clone_handle();
                let handle = self.cell.subscribe(
                    &spec,
                    InfraPushMode::OnArrival,
                    Rc::new(move |items| me.handle_items(items)),
                );
                self.inner.borrow_mut().sub = Some(handle);
            }
        }
    }

    fn stop(&self) {
        let sub = {
            let mut inner = self.inner.borrow_mut();
            if !inner.running {
                return;
            }
            inner.running = false;
            inner.sub.take()
        };
        if let Some(handle) = sub {
            self.cell.unsubscribe(handle);
        }
    }

    fn update_query(&self, query: &CxtQuery) {
        // Re-subscribe when the merged spec changed materially.
        let need_resub = {
            let inner = self.inner.borrow();
            inner.running
                && inner.sub.is_some()
                && (inner.query.mode != query.mode
                    || inner.query.freshness != query.freshness
                    || inner.query.from != query.from)
        };
        if need_resub {
            self.stop();
            self.inner.borrow_mut().query = query.clone();
            self.start();
        } else {
            self.inner.borrow_mut().query = query.clone();
        }
    }
}
