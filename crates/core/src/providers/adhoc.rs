//! AdHocCxtProvider: distributed provisioning in ad hoc networks.
//!
//! Uses the `BTReference` for one-hop provisioning or the `WiFiReference`
//! for multi-hop provisioning (§4.3). Each round, the query (with its
//! WHERE/FRESHNESS requirements) travels to candidate provider nodes;
//! matching items come back. EVENT queries accumulate rounds into an
//! [`EventWindow`] and fire on the rising edge of the condition.

use super::{provider_filter, CxtProvider, ProviderFailure, ProviderSink};
use crate::predicate::EventWindow;
use crate::query::{CxtQuery, NumNodes, QueryMode, Source};
use crate::refs::{AdHocSpec, BtReference, RefError, StreamHandle, WifiReference};
use simkit::{Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

/// Which radio flavour this provider rides on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AdHocFlavor {
    /// One-hop over Bluetooth (SDP context services).
    Bt,
    /// Multi-hop over WiFi (SM-FINDER).
    Wifi,
}

/// Consecutive failed rounds before the provider declares its mechanism
/// broken.
const MAX_CONSECUTIVE_FAILURES: u32 = 2;

struct Inner {
    query: CxtQuery,
    window: EventWindow,
    running: bool,
    event_armed: bool,
    consecutive_failures: u32,
    round_in_flight: bool,
    /// BT push subscription, when the query is long-running over BT.
    sub: Option<StreamHandle>,
}

/// Provider for `adHocNetwork` provisioning.
pub(crate) struct AdHocCxtProvider {
    sim: Sim,
    flavor: AdHocFlavor,
    bt: Option<Rc<dyn BtReference>>,
    wifi: Option<Rc<dyn WifiReference>>,
    sink: ProviderSink,
    on_failure: ProviderFailure,
    inner: Rc<RefCell<Inner>>,
}

/// Derives the round spec from a query (the predicates travel with it so
/// they are evaluated at the provider's node).
pub(crate) fn spec_from_query(query: &CxtQuery, flavor: AdHocFlavor) -> AdHocSpec {
    let (num_nodes, num_hops) = match &query.from {
        Some(Source::AdHocNetwork {
            num_nodes,
            num_hops,
        }) => (*num_nodes, *num_hops),
        // Entity/region destinations and unconstrained queries default to
        // a wide one-round search.
        _ => (NumNodes::All, 3),
    };
    // BT reaches one hop only, whatever the query asked.
    let num_hops = match flavor {
        AdHocFlavor::Bt => 1,
        AdHocFlavor::Wifi => num_hops,
    };
    let entity = match &query.from {
        Some(Source::Entity(e)) => Some(crate::item::SourceId::new(e.clone())),
        _ => None,
    };
    let region = match &query.from {
        Some(Source::Region { x, y, radius }) => Some((*x, *y, *radius)),
        _ => None,
    };
    AdHocSpec {
        cxt_type: query.select.clone(),
        num_nodes,
        num_hops,
        freshness: query.freshness,
        where_clause: query.where_clause.clone(),
        key: None,
        entity,
        region,
    }
}

impl AdHocCxtProvider {
    /// Creates a provider riding the given flavour.
    pub(crate) fn new(
        sim: &Sim,
        flavor: AdHocFlavor,
        bt: Option<Rc<dyn BtReference>>,
        wifi: Option<Rc<dyn WifiReference>>,
        query: CxtQuery,
        sink: ProviderSink,
        on_failure: ProviderFailure,
    ) -> Self {
        AdHocCxtProvider {
            sim: sim.clone(),
            flavor,
            bt,
            wifi,
            sink,
            on_failure,
            inner: Rc::new(RefCell::new(Inner {
                query,
                window: EventWindow::new(),
                running: false,
                event_armed: true,
                consecutive_failures: 0,
                round_in_flight: false,
                sub: None,
            })),
        }
    }

    fn clone_handle(&self) -> AdHocCxtProvider {
        AdHocCxtProvider {
            sim: self.sim.clone(),
            flavor: self.flavor,
            bt: self.bt.clone(),
            wifi: self.wifi.clone(),
            sink: self.sink.clone(),
            on_failure: self.on_failure.clone(),
            inner: self.inner.clone(),
        }
    }

    fn round_period(&self) -> SimDuration {
        match &self.inner.borrow().query.mode {
            QueryMode::Periodic(p) => *p,
            // EVENT queries poll the neighbourhood at a default cadence.
            QueryMode::Event(_) => SimDuration::from_secs(15),
            QueryMode::OnDemand => SimDuration::from_secs(1),
        }
    }

    /// Launches one provisioning round.
    fn round(&self) {
        {
            let mut inner = self.inner.borrow_mut();
            if !inner.running || inner.round_in_flight {
                return;
            }
            inner.round_in_flight = true;
        }
        obskit::count("provider_adhoc_rounds", 1);
        let spec = spec_from_query(&self.inner.borrow().query, self.flavor);
        let me = self.clone_handle();
        let cb = Box::new(move |result: Result<Vec<crate::item::CxtItem>, RefError>| {
            me.inner.borrow_mut().round_in_flight = false;
            if !me.inner.borrow().running {
                return;
            }
            match result {
                Ok(items) => {
                    me.inner.borrow_mut().consecutive_failures = 0;
                    me.handle_items(items);
                }
                Err(e) => {
                    obskit::count("provider_adhoc_round_failures", 1);
                    let failures = {
                        let mut inner = me.inner.borrow_mut();
                        inner.consecutive_failures += 1;
                        inner.consecutive_failures
                    };
                    if failures >= MAX_CONSECUTIVE_FAILURES {
                        (me.on_failure)(e);
                    }
                }
            }
        });
        match self.flavor {
            AdHocFlavor::Bt => match &self.bt {
                Some(bt) if bt.is_available() => bt.adhoc_round(&spec, cb),
                _ => {
                    self.inner.borrow_mut().round_in_flight = false;
                    (self.on_failure)(RefError::Unavailable("BT radio off".into()));
                }
            },
            AdHocFlavor::Wifi => match &self.wifi {
                Some(wifi) if wifi.is_available() => wifi.adhoc_round(&spec, cb),
                _ => {
                    self.inner.borrow_mut().round_in_flight = false;
                    (self.on_failure)(RefError::Unavailable("WiFi not joined".into()));
                }
            },
        }
    }

    fn handle_items(&self, items: Vec<crate::item::CxtItem>) {
        let now = self.sim.now();
        let to_deliver = {
            let mut inner = self.inner.borrow_mut();
            let filtered = provider_filter(&inner.query, items, now);
            match inner.query.mode.clone() {
                QueryMode::Event(expr) => {
                    for i in &filtered {
                        inner.window.push(i.clone());
                    }
                    if let Some(f) = inner.query.freshness {
                        inner.window.retain_fresh(now, f);
                    }
                    let holds = inner.window.eval(&expr);
                    let fire = holds && inner.event_armed;
                    inner.event_armed = !holds;
                    if fire {
                        filtered
                    } else {
                        Vec::new()
                    }
                }
                _ => filtered,
            }
        };
        if !to_deliver.is_empty() {
            obskit::count("provider_adhoc_deliveries", 1);
            obskit::count("provider_adhoc_items", to_deliver.len() as u64);
            (self.sink)(to_deliver);
        }
    }
}

impl CxtProvider for AdHocCxtProvider {
    fn start(&self) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.running {
                return;
            }
            inner.running = true;
        }
        let long_running = self.inner.borrow().query.mode.is_long_running();
        // Long-running BT queries ride a push subscription: the query
        // travels to the providers once, items come back every period.
        if long_running && self.flavor == AdHocFlavor::Bt {
            self.start_bt_subscription();
            return;
        }
        if long_running {
            self.schedule_rounds(self.round_period());
        }
        // Every polled mode starts with an immediate round.
        self.round();
    }

    fn stop(&self) {
        let sub = {
            let mut inner = self.inner.borrow_mut();
            inner.running = false;
            inner.sub.take()
        };
        if let (Some(handle), Some(bt)) = (sub, self.bt.clone()) {
            bt.adhoc_unsubscribe(handle);
        }
    }

    fn update_query(&self, query: &CxtQuery) {
        let need_resub = {
            let inner = self.inner.borrow();
            inner.running
                && inner.sub.is_some()
                && (inner.query.mode != query.mode || inner.query.from != query.from)
        };
        if need_resub {
            self.stop();
            self.inner.borrow_mut().query = query.clone();
            self.start();
        } else {
            self.inner.borrow_mut().query = query.clone();
        }
    }
}

impl AdHocCxtProvider {
    /// (Re)arms the round timer; re-arms itself when the merged query's
    /// period changes (e.g. under `reduceLoad`).
    fn schedule_rounds(&self, period: SimDuration) {
        let me = self.clone_handle();
        self.sim.schedule_repeating(period, move || {
            if !me.inner.borrow().running {
                return false;
            }
            let want = me.round_period();
            if want != period {
                me.schedule_rounds(want);
                return false;
            }
            me.round();
            true
        });
    }

    fn start_bt_subscription(&self) {
        let Some(bt) = self.bt.clone() else {
            (self.on_failure)(RefError::Unavailable("no BT reference".into()));
            return;
        };
        if !bt.is_available() {
            (self.on_failure)(RefError::Unavailable("BT radio off".into()));
            return;
        }
        let spec = spec_from_query(&self.inner.borrow().query, self.flavor);
        let period = self.round_period();
        let me = self.clone_handle();
        let me_err = self.clone_handle();
        let handle = bt.adhoc_subscribe(
            &spec,
            period,
            Rc::new(move |items| me.handle_items(items)),
            Rc::new(move |err| {
                if me_err.inner.borrow().running {
                    (me_err.on_failure)(err);
                }
            }),
        );
        self.inner.borrow_mut().sub = Some(handle);
    }
}
