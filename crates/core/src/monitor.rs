//! The ResourcesMonitor (§4.3).
//!
//! "The ResourcesMonitor component is in charge of maintaining an updated
//! view on the status of several hardware items, on the device's overall
//! power state, and on the available memory space. Each time network,
//! sensors, or device failures affect the functioning of a communication
//! module, the corresponding Reference notifies the ResourcesMonitor.
//! This, in turn, will inform the ContextFactory which will enforce a
//! reconfiguration strategy."

use crate::failover::{FailoverReport, FailoverTracker};
use crate::policy::{RuleValue, SystemStatus};
use crate::refs::RefKind;
use simkit::{Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Coarse resource level (the rules vocabulary speaks of
/// `batteryLevel = low`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ResourceLevel {
    /// Nearly exhausted.
    Low,
    /// Usable.
    Medium,
    /// Plentiful.
    High,
}

impl fmt::Display for ResourceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResourceLevel::Low => "low",
            ResourceLevel::Medium => "medium",
            ResourceLevel::High => "high",
        })
    }
}

/// Events flowing from references and the platform into the monitor.
#[derive(Clone, Debug, PartialEq)]
pub enum ResourceEvent {
    /// A communication module failed (disconnection, hardware fault…).
    RefFailed {
        /// Which module.
        kind: RefKind,
        /// Human-readable cause.
        reason: String,
    },
    /// A previously failed module works again.
    RefRecovered {
        /// Which module.
        kind: RefKind,
    },
    /// The battery level changed.
    Battery(ResourceLevel),
    /// Memory utilization changed (fraction of budget in use).
    Memory(f64),
}

type Listener = Rc<dyn Fn(&ResourceEvent)>;

struct Inner {
    status: SystemStatus,
    ref_health: BTreeMap<RefKind, bool>,
    listeners: Vec<Listener>,
    failover: Option<FailoverTracker>,
}

/// Shared handle to the device's resource view.
///
/// ```
/// use contory::{ResourceEvent, ResourceLevel, ResourcesMonitor};
///
/// let monitor = ResourcesMonitor::new();
/// monitor.report(ResourceEvent::Battery(ResourceLevel::Low));
/// let status = monitor.status();
/// assert_eq!(
///     status.get("batteryLevel"),
///     Some(&contory::policy::RuleValue::Text("low".into()))
/// );
/// ```
#[derive(Clone)]
pub struct ResourcesMonitor {
    inner: Rc<RefCell<Inner>>,
}

impl Default for ResourcesMonitor {
    fn default() -> Self {
        ResourcesMonitor::new()
    }
}

impl ResourcesMonitor {
    /// Creates a monitor with every module assumed healthy, battery high
    /// and memory empty.
    pub fn new() -> Self {
        let mut status = SystemStatus::new();
        status.set("batteryLevel", RuleValue::Text("high".into()));
        status.set("memoryUtilization", RuleValue::Number(0.0));
        ResourcesMonitor {
            inner: Rc::new(RefCell::new(Inner {
                status,
                ref_health: BTreeMap::new(),
                listeners: Vec::new(),
                failover: None,
            })),
        }
    }

    /// Feeds an event into the monitor: updates the status view, then
    /// notifies listeners (the `ContextFactory`'s reconfiguration hook).
    pub fn report(&self, event: ResourceEvent) {
        {
            let mut inner = self.inner.borrow_mut();
            match &event {
                ResourceEvent::RefFailed { kind, .. } => {
                    inner.ref_health.insert(*kind, false);
                }
                ResourceEvent::RefRecovered { kind } => {
                    inner.ref_health.insert(*kind, true);
                }
                ResourceEvent::Battery(level) => {
                    inner
                        .status
                        .set("batteryLevel", RuleValue::Text(level.to_string()));
                }
                ResourceEvent::Memory(util) => {
                    inner
                        .status
                        .set("memoryUtilization", RuleValue::Number(*util));
                }
            }
        }
        obskit::count("monitor_events", 1);
        if let ResourceEvent::RefFailed { .. } = &event {
            obskit::count("monitor_ref_failures", 1);
        }
        self.export_gauges();
        let listeners: Vec<Listener> = self.inner.borrow().listeners.clone();
        for l in listeners {
            l(&event);
        }
    }

    /// Publishes the monitor's resource view as obskit gauges (battery
    /// level, memory utilization, per-module health and the query-load
    /// status variables). No-op when no collector is installed.
    pub fn export_gauges(&self) {
        if !obskit::enabled() {
            return;
        }
        let inner = self.inner.borrow();
        if let Some(RuleValue::Text(level)) = inner.status.get("batteryLevel") {
            let v = match level.as_str() {
                "low" => 0.0,
                "medium" => 1.0,
                _ => 2.0,
            };
            obskit::gauge("monitor_battery_level", v);
        }
        for var in ["memoryUtilization", "activeQueries", "suspendedQueries"] {
            if let Some(RuleValue::Number(n)) = inner.status.get(var) {
                obskit::gauge(&format!("monitor_{var}"), *n);
            }
        }
        for (kind, healthy) in &inner.ref_health {
            let key = match kind {
                RefKind::Internal => "internal",
                RefKind::Bt => "bt",
                RefKind::Wifi => "wifi",
                RefKind::Cell => "cell",
            };
            obskit::gauge(
                &format!("monitor_ref_healthy_{key}"),
                if *healthy { 1.0 } else { 0.0 },
            );
        }
    }

    /// Samples the resource view into obskit gauges on every sim tick of
    /// `period`, until the monitor is dropped. Also counts the ticks so
    /// sampling cadence shows up in metrics snapshots.
    pub fn start_sampling(&self, sim: &Sim, period: SimDuration) {
        self.export_gauges();
        let weak = Rc::downgrade(&self.inner);
        sim.schedule_repeating(period, move || {
            let Some(inner) = weak.upgrade() else {
                return false;
            };
            let monitor = ResourcesMonitor { inner };
            obskit::count("monitor_sample_ticks", 1);
            monitor.export_gauges();
            true
        });
    }

    /// Registers a listener for every reported event.
    pub fn on_event(&self, f: impl Fn(&ResourceEvent) + 'static) {
        self.inner.borrow_mut().listeners.push(Rc::new(f));
    }

    /// Whether a module is currently healthy (unknown modules are
    /// presumed healthy until a failure is reported).
    pub fn is_healthy(&self, kind: RefKind) -> bool {
        *self.inner.borrow().ref_health.get(&kind).unwrap_or(&true)
    }

    /// Snapshot of the status view rules are evaluated against.
    pub fn status(&self) -> SystemStatus {
        self.inner.borrow().status.clone()
    }

    /// Sets an arbitrary status variable (e.g. `activeQueries`). Numeric
    /// variables are mirrored to obskit gauges immediately.
    pub fn set_status(&self, variable: impl Into<String>, value: RuleValue) {
        let variable = variable.into();
        if let RuleValue::Number(n) = &value {
            obskit::gauge(&format!("monitor_{variable}"), *n);
        }
        self.inner.borrow_mut().status.set(variable, value);
    }

    /// Attaches the factory's failover tracker so failure-scenario tests
    /// and benches can pull a [`FailoverReport`] from the monitor.
    pub fn attach_failover(&self, tracker: FailoverTracker) {
        self.inner.borrow_mut().failover = Some(tracker);
    }

    /// Snapshot of the per-query failover history (empty when no factory
    /// is attached). Open provisioning gaps accrue up to `now`.
    pub fn failover_report(&self, now: SimTime) -> FailoverReport {
        self.inner
            .borrow()
            .failover
            .as_ref()
            .map(|t| t.report_at(now))
            .unwrap_or_default()
    }
}

impl fmt::Debug for ResourcesMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ResourcesMonitor")
            .field("ref_health", &inner.ref_health)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn failures_flip_health_and_notify() {
        let m = ResourcesMonitor::new();
        assert!(m.is_healthy(RefKind::Bt));
        let seen = Rc::new(Cell::new(0));
        let s = seen.clone();
        m.on_event(move |_e| s.set(s.get() + 1));
        m.report(ResourceEvent::RefFailed {
            kind: RefKind::Bt,
            reason: "gps link lost".into(),
        });
        assert!(!m.is_healthy(RefKind::Bt));
        m.report(ResourceEvent::RefRecovered { kind: RefKind::Bt });
        assert!(m.is_healthy(RefKind::Bt));
        assert_eq!(seen.get(), 2);
    }

    #[test]
    fn battery_and_memory_feed_the_status_view() {
        let m = ResourcesMonitor::new();
        m.report(ResourceEvent::Battery(ResourceLevel::Low));
        m.report(ResourceEvent::Memory(0.85));
        let s = m.status();
        assert_eq!(s.get("batteryLevel"), Some(&RuleValue::Text("low".into())));
        assert_eq!(s.get("memoryUtilization"), Some(&RuleValue::Number(0.85)));
    }

    #[test]
    fn custom_status_variables() {
        let m = ResourcesMonitor::new();
        m.set_status("activeQueries", RuleValue::Number(3.0));
        assert_eq!(m.status().get("activeQueries"), Some(&RuleValue::Number(3.0)));
    }

    #[test]
    fn defaults_are_optimistic() {
        let m = ResourcesMonitor::new();
        assert_eq!(
            m.status().get("batteryLevel"),
            Some(&RuleValue::Text("high".into()))
        );
        assert!(m.is_healthy(RefKind::Cell));
    }
}
