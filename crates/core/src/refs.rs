//! Reference traits: Contory's portability boundary.
//!
//! A *Reference* "mediates the access to a certain communication module
//! by offering useful programming abstractions" (§4.3). The middleware
//! core is written entirely against these traits; `contory-testbed`
//! implements them over the simulated radios, the Smart Messages
//! platform and the Fuego event middleware — a real port would implement
//! them over JSR-82, an 802.11 stack and an operator bearer instead.
//!
//! All operations are asynchronous: results arrive through callbacks
//! scheduled on the simulator, mirroring the event-driven J2ME original.

use crate::item::{CxtItem, SourceId};
use crate::query::{NumNodes, WherePredicate};
use simkit::SimDuration;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Which communication module a reference drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RefKind {
    /// Sensors integrated in the device.
    Internal,
    /// Bluetooth (sensor links and one-hop ad hoc).
    Bt,
    /// WiFi ad hoc (multi-hop via Smart Messages).
    Wifi,
    /// 2G/3G cellular (event-based infrastructure access).
    Cell,
}

impl fmt::Display for RefKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RefKind::Internal => "InternalReference",
            RefKind::Bt => "BTReference",
            RefKind::Wifi => "WiFiReference",
            RefKind::Cell => "2G/3GReference",
        })
    }
}

/// Errors reported by references.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefError {
    /// The module is off, failed, or the phone is down.
    Unavailable(String),
    /// No source serving the requested context type was found.
    NotFound(String),
    /// The operation did not complete in time.
    Timeout,
    /// The remote side refused.
    Denied(String),
}

impl fmt::Display for RefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefError::Unavailable(why) => write!(f, "unavailable: {why}"),
            RefError::NotFound(what) => write!(f, "not found: {what}"),
            RefError::Timeout => write!(f, "timed out"),
            RefError::Denied(why) => write!(f, "denied: {why}"),
        }
    }
}

impl Error for RefError {}

/// Result of a provisioning round.
pub type ItemsResult = Result<Vec<CxtItem>, RefError>;

/// One-shot completion callback.
pub type Done<T> = Box<dyn FnOnce(T)>;

/// Repeated-delivery handler.
pub type OnItems = Rc<dyn Fn(Vec<CxtItem>)>;

/// Stream-error handler (e.g. a BT-GPS disconnection).
pub type OnRefError = Rc<dyn Fn(RefError)>;

/// What an ad hoc provisioning round should collect — derived from the
/// query's SELECT / FROM / WHERE / FRESHNESS clauses. Predicates travel
/// with the query so they are evaluated *at the provider's node* (§4.2).
#[derive(Clone, Debug)]
pub struct AdHocSpec {
    /// Context type searched for.
    pub cxt_type: String,
    /// How many provider nodes to involve.
    pub num_nodes: NumNodes,
    /// Maximum provider distance in hops.
    pub num_hops: u32,
    /// Maximum item age.
    pub freshness: Option<SimDuration>,
    /// Metadata predicates evaluated at the provider.
    pub where_clause: Vec<WherePredicate>,
    /// Key for authenticated items.
    pub key: Option<String>,
    /// Restrict to one entity (queries sent "to the identifier of an
    /// entity").
    pub entity: Option<SourceId>,
    /// Restrict to providers inside a region `(x, y, radius)`.
    pub region: Option<(f64, f64, f64)>,
}

impl AdHocSpec {
    /// A spec collecting `cxt_type` from the first node within one hop.
    pub fn one_hop(cxt_type: impl Into<String>) -> Self {
        AdHocSpec {
            cxt_type: cxt_type.into(),
            num_nodes: NumNodes::First(1),
            num_hops: 1,
            freshness: None,
            where_clause: Vec::new(),
            key: None,
            entity: None,
            region: None,
        }
    }

    /// Evaluates the spec's type, WHERE and FRESHNESS requirements
    /// against a candidate item — this is what runs *at the provider's
    /// node* (carried there by the SM-FINDER or the BT query message).
    pub fn matches(&self, item: &CxtItem, now: simkit::SimTime) -> bool {
        if item.cxt_type != self.cxt_type || !item.is_valid_at(now) {
            return false;
        }
        if let Some(f) = self.freshness {
            if !item.is_fresh_at(now, f) {
                return false;
            }
        }
        crate::predicate::matches_where(item, &self.where_clause)
    }
}

/// What to fetch from the external context infrastructure.
#[derive(Clone, Debug, Default)]
pub struct InfraSpec {
    /// Context type requested.
    pub cxt_type: String,
    /// Restrict to records about one entity.
    pub entity: Option<String>,
    /// Restrict to records observed in a region `(x, y, radius)`.
    pub region: Option<(f64, f64, f64)>,
    /// Maximum record age.
    pub freshness: Option<SimDuration>,
    /// Cap on returned items (0 = unlimited).
    pub max_items: usize,
}

/// Push cadence of an infrastructure subscription.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InfraPushMode {
    /// Evaluate and push every interval (EVERY queries).
    Periodic(SimDuration),
    /// Push matching records as they arrive (EVENT queries; the EVENT
    /// predicate itself is refined on the phone).
    OnArrival,
}

/// Handle to an open sensor stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StreamHandle(pub u64);

/// Handle to an infrastructure subscription.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InfraSubHandle(pub u64);

/// Access to sensors integrated in the device.
pub trait InternalReference {
    /// Whether the device integrates a sensor for this context type.
    fn provides(&self, cxt_type: &str) -> bool;

    /// Samples the integrated sensor once.
    fn sample(&self, cxt_type: &str, cb: Done<Result<CxtItem, RefError>>);
}

/// Bluetooth: external sensors (e.g. a BT-GPS) and one-hop ad hoc
/// provisioning via SDP service records.
pub trait BtReference {
    /// True if the radio is usable right now.
    fn is_available(&self) -> bool;

    /// Discovers a BT sensor serving `cxt_type` (device inquiry + SDP;
    /// expect ~14 s).
    fn discover_sensor(&self, cxt_type: &str, cb: Done<Result<SourceId, RefError>>);

    /// Connects to a discovered sensor and streams its readings;
    /// `on_error` fires on disconnection (the Fig. 5 trigger).
    fn open_sensor_stream(
        &self,
        source: &SourceId,
        cxt_type: &str,
        on_items: OnItems,
        on_error: OnRefError,
        cb: Done<Result<StreamHandle, RefError>>,
    );

    /// Closes a sensor stream.
    fn close_sensor_stream(&self, handle: StreamHandle);

    /// One round of one-hop ad hoc provisioning (discovery included when
    /// no provider is cached).
    fn adhoc_round(&self, spec: &AdHocSpec, cb: Done<ItemsResult>);

    /// Long-running one-hop provisioning: the query travels to the
    /// provider(s) once; matching items are then *pushed* back every
    /// `period` without re-sending the query — the paper's cheap periodic
    /// case ("being periodically notified with context data is fast and
    /// the energy cost is definitely low"). `on_error` fires if the
    /// provisioning breaks (e.g. all provider links drop).
    fn adhoc_subscribe(
        &self,
        spec: &AdHocSpec,
        period: SimDuration,
        on_items: OnItems,
        on_error: OnRefError,
    ) -> StreamHandle;

    /// Cancels an ad hoc subscription.
    fn adhoc_unsubscribe(&self, handle: StreamHandle);

    /// Publishes an item as an SDP context service (≈ 140 ms).
    fn publish(&self, item: &CxtItem, key: Option<String>, cb: Done<Result<(), RefError>>);

    /// Withdraws a published context service.
    fn unpublish(&self, cxt_type: &str);
}

/// WiFi ad hoc: multi-hop provisioning through Smart Messages.
pub trait WifiReference {
    /// True if the radio is joined to the ad hoc network.
    fn is_available(&self) -> bool;

    /// One SM-FINDER round.
    fn adhoc_round(&self, spec: &AdHocSpec, cb: Done<ItemsResult>);

    /// Publishes an item as a tag in the local tag space (≈ 0.13 ms).
    fn publish(&self, item: &CxtItem, key: Option<String>, cb: Done<Result<(), RefError>>);

    /// Removes a published tag.
    fn unpublish(&self, cxt_type: &str);
}

/// 2G/3G: event-based access to the external context infrastructure.
pub trait CellReference {
    /// True if the cellular radio is on.
    fn is_available(&self) -> bool;

    /// Stores an item in the remote repository.
    fn store(&self, item: &CxtItem, cb: Done<Result<(), RefError>>);

    /// On-demand fetch from the infrastructure.
    fn fetch(&self, spec: &InfraSpec, cb: Done<ItemsResult>);

    /// Long-running subscription; batches arrive via `on_items`.
    fn subscribe(&self, spec: &InfraSpec, mode: InfraPushMode, on_items: OnItems)
        -> InfraSubHandle;

    /// Cancels a subscription.
    fn unsubscribe(&self, handle: InfraSubHandle);
}

/// The set of references available on a device. Absent references mean
/// the hardware lacks that module (the Nokia 6630 has no WiFi; the 9500
/// has no UMTS).
#[derive(Clone, Default)]
pub struct References {
    /// Integrated sensors.
    pub internal: Option<Rc<dyn InternalReference>>,
    /// Bluetooth.
    pub bt: Option<Rc<dyn BtReference>>,
    /// WiFi ad hoc.
    pub wifi: Option<Rc<dyn WifiReference>>,
    /// Cellular.
    pub cell: Option<Rc<dyn CellReference>>,
}

impl References {
    /// No references at all (useful as a starting point in tests).
    pub fn none() -> Self {
        References::default()
    }
}

impl fmt::Debug for References {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("References")
            .field("internal", &self.internal.is_some())
            .field("bt", &self.bt.is_some())
            .field("wifi", &self.wifi.is_some())
            .field("cell", &self.cell.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_kind_displays_paper_names() {
        assert_eq!(RefKind::Bt.to_string(), "BTReference");
        assert_eq!(RefKind::Cell.to_string(), "2G/3GReference");
    }

    #[test]
    fn ref_error_displays() {
        assert!(RefError::NotFound("gps".into()).to_string().contains("gps"));
        assert_eq!(RefError::Timeout.to_string(), "timed out");
    }

    #[test]
    fn adhoc_spec_one_hop_defaults() {
        let s = AdHocSpec::one_hop("temperature");
        assert_eq!(s.num_hops, 1);
        assert_eq!(s.num_nodes, NumNodes::First(1));
        assert!(s.where_clause.is_empty());
    }

    #[test]
    fn references_debug_shows_presence() {
        let refs = References::none();
        let s = format!("{refs:?}");
        assert!(s.contains("internal: false"));
    }
}
