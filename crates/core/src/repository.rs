//! The CxtRepository (§4.3): "responsible for storing gathered context
//! information, locally or remotely. Only a few recent context data are
//! stored locally, while complete logs can be stored in remote
//! repositories of context infrastructures."

use crate::item::CxtItem;
use crate::refs::{CellReference, RefError};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

struct Inner {
    per_type: BTreeMap<String, VecDeque<CxtItem>>,
    cap_per_type: usize,
    remote: Option<Rc<dyn CellReference>>,
}

/// Shared handle to the context repository.
///
/// ```
/// use contory::{CxtItem, CxtRepository, CxtValue};
/// use simkit::SimTime;
///
/// let repo = CxtRepository::new(4);
/// repo.store_local(CxtItem::new("wind", CxtValue::number(5.0), SimTime::ZERO));
/// assert_eq!(repo.recent("wind", 10).len(), 1);
/// assert!(repo.latest("temperature").is_none());
/// ```
#[derive(Clone)]
pub struct CxtRepository {
    inner: Rc<RefCell<Inner>>,
}

impl CxtRepository {
    /// Creates a repository keeping at most `cap_per_type` recent items
    /// of each context type.
    ///
    /// # Panics
    ///
    /// Panics if `cap_per_type` is zero.
    pub fn new(cap_per_type: usize) -> Self {
        assert!(cap_per_type > 0, "capacity must be non-zero");
        CxtRepository {
            inner: Rc::new(RefCell::new(Inner {
                per_type: BTreeMap::new(),
                cap_per_type,
                remote: None,
            })),
        }
    }

    /// Wires the remote repository (the context infrastructure reached
    /// through the `2G/3GReference`).
    pub fn set_remote(&self, cell: Rc<dyn CellReference>) {
        self.inner.borrow_mut().remote = Some(cell);
    }

    /// Stores an item in the local ring for its type.
    pub fn store_local(&self, item: CxtItem) {
        let mut inner = self.inner.borrow_mut();
        let cap = inner.cap_per_type;
        let ring = inner.per_type.entry(item.cxt_type.clone()).or_default();
        if ring.len() >= cap {
            ring.pop_front();
        }
        ring.push_back(item);
    }

    /// Stores an item in the remote repository (`storeCxtItem`). The
    /// callback observes the transfer outcome.
    ///
    /// # Errors
    ///
    /// The callback receives [`RefError::Unavailable`] if no remote
    /// repository is configured or the cellular link is down.
    pub fn store_remote(&self, item: CxtItem, cb: Box<dyn FnOnce(Result<(), RefError>)>) {
        let remote = self.inner.borrow().remote.clone();
        match remote {
            Some(cell) => cell.store(&item, cb),
            None => cb(Err(RefError::Unavailable(
                "no remote repository configured".into(),
            ))),
        }
    }

    /// The `n` most recent locally stored items of a type, oldest first.
    pub fn recent(&self, cxt_type: &str, n: usize) -> Vec<CxtItem> {
        let inner = self.inner.borrow();
        match inner.per_type.get(cxt_type) {
            Some(ring) => ring.iter().rev().take(n).rev().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// The most recent locally stored item of a type.
    pub fn latest(&self, cxt_type: &str) -> Option<CxtItem> {
        self.inner
            .borrow()
            .per_type
            .get(cxt_type)
            .and_then(|r| r.back().cloned())
    }

    /// Total items stored locally.
    pub fn len(&self) -> usize {
        self.inner.borrow().per_type.values().map(VecDeque::len).sum()
    }

    /// True if nothing is stored locally.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops the oldest half of every ring (the `reduceMemory` action).
    pub fn trim(&self) {
        let mut inner = self.inner.borrow_mut();
        for ring in inner.per_type.values_mut() {
            let keep = ring.len().div_ceil(2);
            while ring.len() > keep {
                ring.pop_front();
            }
        }
    }
}

impl fmt::Debug for CxtRepository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CxtRepository")
            .field("items", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::CxtValue;
    use simkit::SimTime;

    fn item(t: &str, v: f64, at: u64) -> CxtItem {
        CxtItem::new(t, CxtValue::number(v), SimTime::from_secs(at))
    }

    #[test]
    fn ring_keeps_only_recent() {
        let repo = CxtRepository::new(3);
        for i in 0..5 {
            repo.store_local(item("wind", i as f64, i));
        }
        let recent = repo.recent("wind", 10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].value.as_f64(), Some(2.0));
        assert_eq!(repo.latest("wind").unwrap().value.as_f64(), Some(4.0));
    }

    #[test]
    fn recent_n_limits_from_the_newest_side() {
        let repo = CxtRepository::new(10);
        for i in 0..5 {
            repo.store_local(item("t", i as f64, i));
        }
        let two = repo.recent("t", 2);
        assert_eq!(two.len(), 2);
        assert_eq!(two[0].value.as_f64(), Some(3.0));
        assert_eq!(two[1].value.as_f64(), Some(4.0));
    }

    #[test]
    fn types_are_independent() {
        let repo = CxtRepository::new(2);
        repo.store_local(item("a", 1.0, 1));
        repo.store_local(item("b", 2.0, 1));
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.recent("a", 10).len(), 1);
    }

    #[test]
    fn trim_halves_rings() {
        let repo = CxtRepository::new(8);
        for i in 0..8 {
            repo.store_local(item("t", i as f64, i));
        }
        repo.trim();
        assert_eq!(repo.len(), 4);
        assert_eq!(repo.latest("t").unwrap().value.as_f64(), Some(7.0));
    }

    #[test]
    fn store_remote_without_remote_fails() {
        use std::cell::Cell;
        use std::rc::Rc;
        let repo = CxtRepository::new(2);
        let observed = Rc::new(Cell::new(false));
        let o = observed.clone();
        repo.store_remote(
            item("t", 1.0, 1),
            Box::new(move |res| {
                assert!(matches!(res, Err(RefError::Unavailable(_))));
                o.set(true);
            }),
        );
        assert!(observed.get(), "callback ran synchronously");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = CxtRepository::new(0);
    }
}
