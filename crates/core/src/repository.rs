//! The CxtRepository (§4.3): "responsible for storing gathered context
//! information, locally or remotely. Only a few recent context data are
//! stored locally, while complete logs can be stored in remote
//! repositories of context infrastructures."
//!
//! Lifetimes are **enforced**, not decorative: once a clock is wired
//! (the factory installs the simulation clock), items past
//! `timestamp + lifetime` are never returned by [`CxtRepository::recent`]
//! or [`CxtRepository::latest`], and [`CxtRepository::sweep_expired`]
//! evicts them deterministically (oldest first, types in `BTreeMap`
//! order) — the same lifetime-bound contract brokerd's context packets
//! carry on the wire.

use crate::item::CxtItem;
use crate::refs::{CellReference, RefError};
use simkit::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

struct Inner {
    per_type: BTreeMap<String, VecDeque<CxtItem>>,
    cap_per_type: usize,
    remote: Option<Rc<dyn CellReference>>,
    clock: Option<Rc<dyn Fn() -> SimTime>>,
    expired_evicted: u64,
}

/// Shared handle to the context repository.
///
/// ```
/// use contory::{CxtItem, CxtRepository, CxtValue};
/// use simkit::SimTime;
///
/// let repo = CxtRepository::new(4);
/// repo.store_local(CxtItem::new("wind", CxtValue::number(5.0), SimTime::ZERO));
/// assert_eq!(repo.recent("wind", 10).len(), 1);
/// assert!(repo.latest("temperature").is_none());
/// ```
#[derive(Clone)]
pub struct CxtRepository {
    inner: Rc<RefCell<Inner>>,
}

impl CxtRepository {
    /// Creates a repository keeping at most `cap_per_type` recent items
    /// of each context type.
    ///
    /// # Panics
    ///
    /// Panics if `cap_per_type` is zero.
    pub fn new(cap_per_type: usize) -> Self {
        assert!(cap_per_type > 0, "capacity must be non-zero");
        CxtRepository {
            inner: Rc::new(RefCell::new(Inner {
                per_type: BTreeMap::new(),
                cap_per_type,
                remote: None,
                clock: None,
                expired_evicted: 0,
            })),
        }
    }

    /// Wires the remote repository (the context infrastructure reached
    /// through the `2G/3GReference`).
    pub fn set_remote(&self, cell: Rc<dyn CellReference>) {
        self.inner.borrow_mut().remote = Some(cell);
    }

    /// Wires the clock lifetime enforcement reads `now` from (the
    /// factory installs the simulation clock). Without a clock the
    /// repository cannot know the current instant, so expiry filtering
    /// is inert — exactly the pre-enforcement behaviour.
    pub fn set_clock(&self, clock: Rc<dyn Fn() -> SimTime>) {
        self.inner.borrow_mut().clock = Some(clock);
    }

    /// Stores an item in the local ring for its type.
    pub fn store_local(&self, item: CxtItem) {
        let mut inner = self.inner.borrow_mut();
        let cap = inner.cap_per_type;
        let ring = inner.per_type.entry(item.cxt_type.clone()).or_default();
        if ring.len() >= cap {
            ring.pop_front();
        }
        ring.push_back(item);
    }

    /// Stores an item in the remote repository (`storeCxtItem`). The
    /// callback observes the transfer outcome.
    ///
    /// # Errors
    ///
    /// The callback receives [`RefError::Unavailable`] if no remote
    /// repository is configured or the cellular link is down.
    pub fn store_remote(&self, item: CxtItem, cb: Box<dyn FnOnce(Result<(), RefError>)>) {
        let remote = self.inner.borrow().remote.clone();
        match remote {
            Some(cell) => cell.store(&item, cb),
            None => cb(Err(RefError::Unavailable(
                "no remote repository configured".into(),
            ))),
        }
    }

    /// The `n` most recent locally stored items of a type, oldest first.
    /// Items past their lifetime at the wired clock's `now` are never
    /// returned.
    pub fn recent(&self, cxt_type: &str, n: usize) -> Vec<CxtItem> {
        let inner = self.inner.borrow();
        let now = inner.clock.as_ref().map(|c| c());
        match inner.per_type.get(cxt_type) {
            Some(ring) => {
                let mut out: Vec<CxtItem> = ring
                    .iter()
                    .rev()
                    .filter(|i| now.is_none_or(|t| i.is_valid_at(t)))
                    .take(n)
                    .cloned()
                    .collect();
                out.reverse();
                out
            }
            None => Vec::new(),
        }
    }

    /// The most recent locally stored item of a type that is still
    /// within its lifetime at the wired clock's `now`.
    pub fn latest(&self, cxt_type: &str) -> Option<CxtItem> {
        let inner = self.inner.borrow();
        let now = inner.clock.as_ref().map(|c| c());
        inner.per_type.get(cxt_type).and_then(|r| {
            r.iter()
                .rev()
                .find(|i| now.is_none_or(|t| i.is_valid_at(t)))
                .cloned()
        })
    }

    /// Evicts every item past its lifetime at `now`, deterministically
    /// (types in `BTreeMap` order, items oldest-first within a ring).
    /// Returns how many items were evicted.
    pub fn sweep_expired(&self, now: SimTime) -> usize {
        let mut inner = self.inner.borrow_mut();
        let mut evicted = 0usize;
        for ring in inner.per_type.values_mut() {
            let before = ring.len();
            ring.retain(|i| i.is_valid_at(now));
            evicted += before - ring.len();
        }
        inner.expired_evicted += evicted as u64;
        if evicted > 0 {
            obskit::count("repo_expired_evicted", evicted as u64);
        }
        evicted
    }

    /// Total items evicted by expiry sweeps over this repository's life.
    pub fn expired_evicted(&self) -> u64 {
        self.inner.borrow().expired_evicted
    }

    /// Total items stored locally.
    pub fn len(&self) -> usize {
        self.inner.borrow().per_type.values().map(VecDeque::len).sum()
    }

    /// True if nothing is stored locally.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops the oldest half of every ring (the `reduceMemory` action).
    pub fn trim(&self) {
        let mut inner = self.inner.borrow_mut();
        for ring in inner.per_type.values_mut() {
            let keep = ring.len().div_ceil(2);
            while ring.len() > keep {
                ring.pop_front();
            }
        }
    }
}

impl fmt::Debug for CxtRepository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CxtRepository")
            .field("items", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::CxtValue;
    use simkit::SimTime;

    fn item(t: &str, v: f64, at: u64) -> CxtItem {
        CxtItem::new(t, CxtValue::number(v), SimTime::from_secs(at))
    }

    #[test]
    fn ring_keeps_only_recent() {
        let repo = CxtRepository::new(3);
        for i in 0..5 {
            repo.store_local(item("wind", i as f64, i));
        }
        let recent = repo.recent("wind", 10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].value.as_f64(), Some(2.0));
        assert_eq!(repo.latest("wind").unwrap().value.as_f64(), Some(4.0));
    }

    #[test]
    fn recent_n_limits_from_the_newest_side() {
        let repo = CxtRepository::new(10);
        for i in 0..5 {
            repo.store_local(item("t", i as f64, i));
        }
        let two = repo.recent("t", 2);
        assert_eq!(two.len(), 2);
        assert_eq!(two[0].value.as_f64(), Some(3.0));
        assert_eq!(two[1].value.as_f64(), Some(4.0));
    }

    #[test]
    fn types_are_independent() {
        let repo = CxtRepository::new(2);
        repo.store_local(item("a", 1.0, 1));
        repo.store_local(item("b", 2.0, 1));
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.recent("a", 10).len(), 1);
    }

    #[test]
    fn trim_halves_rings() {
        let repo = CxtRepository::new(8);
        for i in 0..8 {
            repo.store_local(item("t", i as f64, i));
        }
        repo.trim();
        assert_eq!(repo.len(), 4);
        assert_eq!(repo.latest("t").unwrap().value.as_f64(), Some(7.0));
    }

    #[test]
    fn store_remote_without_remote_fails() {
        use std::cell::Cell;
        use std::rc::Rc;
        let repo = CxtRepository::new(2);
        let observed = Rc::new(Cell::new(false));
        let o = observed.clone();
        repo.store_remote(
            item("t", 1.0, 1),
            Box::new(move |res| {
                assert!(matches!(res, Err(RefError::Unavailable(_))));
                o.set(true);
            }),
        );
        assert!(observed.get(), "callback ran synchronously");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = CxtRepository::new(0);
    }

    fn expiring(t: &str, v: f64, at: u64, life: u64) -> CxtItem {
        item(t, v, at).with_lifetime(simkit::SimDuration::from_secs(life))
    }

    fn clocked(cap: usize, now: Rc<std::cell::Cell<u64>>) -> CxtRepository {
        let repo = CxtRepository::new(cap);
        repo.set_clock(Rc::new(move || SimTime::from_secs(now.get())));
        repo
    }

    #[test]
    fn expired_items_are_never_returned_by_queries() {
        let now = Rc::new(std::cell::Cell::new(0u64));
        let repo = clocked(8, now.clone());
        repo.store_local(expiring("wind", 1.0, 0, 10));
        repo.store_local(expiring("wind", 2.0, 5, 10));
        repo.store_local(item("wind", 3.0, 6)); // eternal
        now.set(8);
        assert_eq!(repo.recent("wind", 10).len(), 3);
        now.set(12);
        // First item (valid through t=10) is out; the rest remain.
        let live = repo.recent("wind", 10);
        assert_eq!(live.len(), 2);
        assert_eq!(live[0].value.as_f64(), Some(2.0));
        now.set(20);
        // Only the eternal item survives; `latest` skips the expired
        // newer-but-dead entries transparently.
        assert_eq!(repo.recent("wind", 10).len(), 1);
        assert_eq!(repo.latest("wind").unwrap().value.as_f64(), Some(3.0));
    }

    #[test]
    fn latest_skips_expired_head() {
        let now = Rc::new(std::cell::Cell::new(0u64));
        let repo = clocked(8, now.clone());
        repo.store_local(item("t", 1.0, 0)); // eternal, older
        repo.store_local(expiring("t", 2.0, 1, 3)); // newest, dies at t=4
        now.set(3);
        assert_eq!(repo.latest("t").unwrap().value.as_f64(), Some(2.0));
        now.set(5);
        assert_eq!(repo.latest("t").unwrap().value.as_f64(), Some(1.0));
    }

    #[test]
    fn sweep_evicts_deterministically_and_counts() {
        let repo = CxtRepository::new(8);
        repo.store_local(expiring("a", 1.0, 0, 5));
        repo.store_local(expiring("a", 2.0, 0, 50));
        repo.store_local(expiring("b", 3.0, 0, 5));
        assert_eq!(repo.len(), 3);
        assert_eq!(repo.sweep_expired(SimTime::from_secs(10)), 2);
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.expired_evicted(), 2);
        // Idempotent once clean.
        assert_eq!(repo.sweep_expired(SimTime::from_secs(10)), 0);
        assert_eq!(repo.expired_evicted(), 2);
    }

    #[test]
    fn without_a_clock_queries_do_not_filter() {
        let repo = CxtRepository::new(4);
        repo.store_local(expiring("t", 1.0, 0, 1));
        // No clock wired: the repository cannot know `now`, so the item
        // is still visible (storage-only behaviour).
        assert_eq!(repo.recent("t", 10).len(), 1);
        assert!(repo.latest("t").is_some());
    }
}
