//! The application-facing Client interface (§4.4).
//!
//! "To interact with Contory, an application needs to implement a Client
//! interface": item delivery, error signalling, and the access-control
//! decision hook.

use crate::factory::QueryId;
use crate::item::CxtItem;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

/// Callbacks every Contory application implements.
pub trait Client {
    /// Handles a collected context item for one of the client's queries
    /// (`receiveCxtItem`).
    fn receive_cxt_item(&self, query: QueryId, item: CxtItem);

    /// Called by Contory modules on malfunction or failure
    /// (`informError`).
    fn inform_error(&self, message: &str);

    /// Invoked by the AccessController to grant or block interaction with
    /// a new external entity (`makeDecision`). Defaults to blocking.
    fn make_decision(&self, message: &str) -> bool {
        let _ = message;
        false
    }
}

/// Everything a [`CollectingClient`] has observed.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientEvent {
    /// An item arrived for a query.
    Item(QueryId, CxtItem),
    /// Contory reported an error.
    Error(String),
    /// The access controller asked for a decision (with the answer given).
    Decision(String, bool),
}

/// A [`Client`] that records everything — the workhorse of the examples
/// and tests.
///
/// ```
/// use contory::{Client, CollectingClient, CxtItem, CxtValue, QueryId};
/// use simkit::SimTime;
///
/// let client = CollectingClient::new();
/// client.receive_cxt_item(
///     QueryId(1),
///     CxtItem::new("temperature", CxtValue::number(14.0), SimTime::ZERO),
/// );
/// assert_eq!(client.items_for(QueryId(1)).len(), 1);
/// ```
#[derive(Clone, Default)]
pub struct CollectingClient {
    events: Rc<RefCell<Vec<ClientEvent>>>,
    decision: Rc<Cell<bool>>,
}

impl CollectingClient {
    /// Creates a client that answers `false` to decisions.
    pub fn new() -> Self {
        CollectingClient::default()
    }

    /// Sets the answer [`Client::make_decision`] will give.
    pub fn set_decision(&self, allow: bool) {
        self.decision.set(allow);
    }

    /// Everything observed so far, in order.
    pub fn events(&self) -> Vec<ClientEvent> {
        self.events.borrow().clone()
    }

    /// Items received for one query, in order.
    pub fn items_for(&self, query: QueryId) -> Vec<CxtItem> {
        self.events
            .borrow()
            .iter()
            .filter_map(|e| match e {
                ClientEvent::Item(q, item) if *q == query => Some(item.clone()),
                _ => None,
            })
            .collect()
    }

    /// All items received, regardless of query.
    pub fn all_items(&self) -> Vec<CxtItem> {
        self.events
            .borrow()
            .iter()
            .filter_map(|e| match e {
                ClientEvent::Item(_, item) => Some(item.clone()),
                _ => None,
            })
            .collect()
    }

    /// Errors reported so far.
    pub fn errors(&self) -> Vec<String> {
        self.events
            .borrow()
            .iter()
            .filter_map(|e| match e {
                ClientEvent::Error(m) => Some(m.clone()),
                _ => None,
            })
            .collect()
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events.borrow_mut().clear();
    }
}

impl Client for CollectingClient {
    fn receive_cxt_item(&self, query: QueryId, item: CxtItem) {
        self.events.borrow_mut().push(ClientEvent::Item(query, item));
    }

    fn inform_error(&self, message: &str) {
        self.events
            .borrow_mut()
            .push(ClientEvent::Error(message.to_owned()));
    }

    fn make_decision(&self, message: &str) -> bool {
        let answer = self.decision.get();
        self.events
            .borrow_mut()
            .push(ClientEvent::Decision(message.to_owned(), answer));
        answer
    }
}

impl fmt::Debug for CollectingClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollectingClient")
            .field("events", &self.events.borrow().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::CxtValue;
    use simkit::SimTime;

    #[test]
    fn records_items_per_query() {
        let c = CollectingClient::new();
        let item = CxtItem::new("t", CxtValue::number(1.0), SimTime::ZERO);
        c.receive_cxt_item(QueryId(1), item.clone());
        c.receive_cxt_item(QueryId(2), item.clone());
        assert_eq!(c.items_for(QueryId(1)).len(), 1);
        assert_eq!(c.items_for(QueryId(9)).len(), 0);
        assert_eq!(c.all_items().len(), 2);
    }

    #[test]
    fn records_errors_and_decisions() {
        let c = CollectingClient::new();
        c.inform_error("gps lost");
        assert_eq!(c.errors(), vec!["gps lost".to_owned()]);
        assert!(!c.make_decision("allow boat-3?"));
        c.set_decision(true);
        assert!(c.make_decision("allow boat-4?"));
        assert_eq!(c.events().len(), 3);
        c.clear();
        assert!(c.events().is_empty());
    }

    #[test]
    fn default_decision_is_block() {
        struct Minimal;
        impl Client for Minimal {
            fn receive_cxt_item(&self, _q: QueryId, _i: CxtItem) {}
            fn inform_error(&self, _m: &str) {}
        }
        assert!(!Minimal.make_decision("anything"));
    }

    #[test]
    fn clones_share_the_event_log() {
        let c = CollectingClient::new();
        let c2 = c.clone();
        c2.inform_error("x");
        assert_eq!(c.errors().len(), 1);
    }
}
