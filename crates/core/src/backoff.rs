//! Capped exponential backoff with deterministic jitter.
//!
//! When a provisioning mechanism fails, the `ContextFactory` may retry it
//! a configurable number of times before declaring it failed and moving
//! the query to the next candidate mechanism. The delays between retries
//! follow a capped exponential schedule with multiplicative jitter so a
//! fleet of phones hit by the same outage does not thunder back in
//! lock-step — while staying fully deterministic for a given seed (the
//! jitter is drawn from the simulation's [`DetRng`]).

#![deny(warnings)]

use simkit::{DetRng, SimDuration};
use std::fmt;

/// Retry-delay schedule: `initial * multiplier^attempt`, capped at
/// `max`, then jittered by up to `±jitter` (a fraction of the delay).
#[derive(Clone, Debug, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub initial: SimDuration,
    /// Upper bound on any delay (applied before jitter).
    pub max: SimDuration,
    /// Growth factor per attempt (must be >= 1.0).
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1)`: each delay is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter)`.
    pub jitter: f64,
}

impl Default for BackoffPolicy {
    /// 2 s initial, doubling, capped at 60 s, ±20 % jitter.
    fn default() -> Self {
        BackoffPolicy {
            initial: SimDuration::from_secs(2),
            max: SimDuration::from_secs(60),
            multiplier: 2.0,
            jitter: 0.2,
        }
    }
}

impl BackoffPolicy {
    /// The un-jittered delay for retry attempt `attempt` (0-based).
    pub fn base_delay(&self, attempt: u32) -> SimDuration {
        let mult = self.multiplier.max(1.0);
        let secs = self.initial.as_secs_f64() * mult.powi(attempt.min(63) as i32);
        SimDuration::from_secs_f64(secs.min(self.max.as_secs_f64()))
    }

    /// The jittered delay for attempt `attempt`, using `unit` in `[0, 1)`
    /// as the randomness source (pure, for testing).
    pub fn delay_with_unit(&self, attempt: u32, unit: f64) -> SimDuration {
        let base = self.base_delay(attempt);
        let j = self.jitter.clamp(0.0, 0.999);
        // Scale uniformly within [1 - j, 1 + j).
        let factor = 1.0 - j + 2.0 * j * unit.clamp(0.0, 1.0);
        SimDuration::from_secs_f64(base.as_secs_f64() * factor)
    }

    /// The jittered delay for attempt `attempt`, drawing from `rng`.
    pub fn delay(&self, attempt: u32, rng: &mut DetRng) -> SimDuration {
        let u = rng.unit();
        self.delay_with_unit(attempt, u)
    }
}

/// Per-target retry counter driving a [`BackoffPolicy`].
///
/// `next_delay` returns the delay to wait before the next retry and
/// advances the attempt counter; `reset` is called on success so the next
/// failure starts from the initial delay again.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BackoffState {
    attempt: u32,
}

impl BackoffState {
    /// Fresh state: next delay is the policy's initial delay.
    pub fn new() -> Self {
        BackoffState::default()
    }

    /// Retry attempts consumed since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Delay before the next retry; advances the counter.
    pub fn next_delay(&mut self, policy: &BackoffPolicy, rng: &mut DetRng) -> SimDuration {
        let d = policy.delay(self.attempt, rng);
        self.attempt = self.attempt.saturating_add(1);
        d
    }

    /// Success: the next failure restarts from the initial delay.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

impl fmt::Display for BackoffState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "backoff(attempt={})", self.attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BackoffPolicy {
        BackoffPolicy {
            initial: SimDuration::from_secs(2),
            max: SimDuration::from_secs(60),
            multiplier: 2.0,
            jitter: 0.2,
        }
    }

    #[test]
    fn base_delays_grow_exponentially_until_the_cap() {
        let p = policy();
        assert_eq!(p.base_delay(0), SimDuration::from_secs(2));
        assert_eq!(p.base_delay(1), SimDuration::from_secs(4));
        assert_eq!(p.base_delay(2), SimDuration::from_secs(8));
        assert_eq!(p.base_delay(4), SimDuration::from_secs(32));
        // 2 * 2^5 = 64 > cap.
        assert_eq!(p.base_delay(5), SimDuration::from_secs(60));
        assert_eq!(p.base_delay(30), SimDuration::from_secs(60));
        // Huge attempt counts do not overflow.
        assert_eq!(p.base_delay(u32::MAX), SimDuration::from_secs(60));
    }

    #[test]
    fn jitter_stays_within_the_declared_bounds() {
        let p = policy();
        let mut rng = DetRng::new(42);
        for attempt in 0..8 {
            let base = p.base_delay(attempt).as_secs_f64();
            for _ in 0..200 {
                let d = p.delay(attempt, &mut rng).as_secs_f64();
                assert!(
                    d >= base * 0.8 - 1e-9 && d <= base * 1.2 + 1e-9,
                    "attempt {attempt}: {d} outside [{}, {}]",
                    base * 0.8,
                    base * 1.2
                );
            }
        }
    }

    #[test]
    fn zero_jitter_is_exact() {
        let mut p = policy();
        p.jitter = 0.0;
        let mut rng = DetRng::new(7);
        assert_eq!(p.delay(1, &mut rng), SimDuration::from_secs(4));
    }

    #[test]
    fn state_advances_and_resets() {
        let p = {
            let mut p = policy();
            p.jitter = 0.0;
            p
        };
        let mut rng = DetRng::new(1);
        let mut s = BackoffState::new();
        assert_eq!(s.next_delay(&p, &mut rng), SimDuration::from_secs(2));
        assert_eq!(s.next_delay(&p, &mut rng), SimDuration::from_secs(4));
        assert_eq!(s.next_delay(&p, &mut rng), SimDuration::from_secs(8));
        assert_eq!(s.attempts(), 3);
        s.reset();
        assert_eq!(s.attempts(), 0);
        assert_eq!(s.next_delay(&p, &mut rng), SimDuration::from_secs(2));
    }

    #[test]
    fn same_seed_same_delays() {
        let p = policy();
        let mut a = DetRng::new(99);
        let mut b = DetRng::new(99);
        for attempt in 0..10 {
            assert_eq!(p.delay(attempt, &mut a), p.delay(attempt, &mut b));
        }
    }

    #[test]
    fn multiplier_below_one_is_clamped() {
        let mut p = policy();
        p.multiplier = 0.5;
        assert_eq!(p.base_delay(3), SimDuration::from_secs(2));
    }
}
