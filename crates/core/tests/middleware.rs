//! Middleware-level integration tests: the ContextFactory over mock
//! references. These exercise query processing, merging, failover,
//! policies and the public API without the simulated radios (the real
//! platform wiring is tested in `contory-testbed`).

use contory::policy::{Condition, ContextRule, RuleAction};
use contory::query::{CxtQuery, QueryBuilder};
use contory::refs::{
    AdHocSpec, BtReference, CellReference, Done, InfraPushMode, InfraSpec, InfraSubHandle,
    InternalReference, ItemsResult, OnItems, OnRefError, RefError, References, StreamHandle,
};
use contory::{
    CollectingClient, ContextFactory, ContoryError, CxtItem, CxtValue, FactoryConfig, Mechanism,
    QueryId, ResourceEvent, ResourceLevel, SourceId,
};
use simkit::{Sim, SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

// ------------------------------------------------------------------
// Mock references
// ------------------------------------------------------------------

#[derive(Clone)]
struct MockInternal {
    sim: Sim,
    types: Vec<String>,
    value: Rc<Cell<f64>>,
}

impl MockInternal {
    fn new(sim: &Sim, types: &[&str]) -> Self {
        MockInternal {
            sim: sim.clone(),
            types: types.iter().map(|s| s.to_string()).collect(),
            value: Rc::new(Cell::new(20.0)),
        }
    }
}

impl InternalReference for MockInternal {
    fn provides(&self, cxt_type: &str) -> bool {
        self.types.iter().any(|t| t == cxt_type)
    }

    fn sample(&self, cxt_type: &str, cb: Done<Result<CxtItem, RefError>>) {
        let item = CxtItem::new(
            cxt_type,
            CxtValue::number(self.value.get()),
            self.sim.now(),
        )
        .with_accuracy(0.1)
        .with_source("int://mock");
        self.sim
            .schedule_in(SimDuration::from_micros(78), move || cb(Ok(item)));
    }
}

struct MockBtState {
    available: bool,
    sensor_present: bool,
    adhoc_items: Vec<CxtItem>,
    streams: Vec<(StreamHandle, OnItems, OnRefError)>,
    subs: Vec<StreamHandle>,
    next_stream: u64,
    published: Vec<CxtItem>,
    discoveries: u64,
}

#[derive(Clone)]
struct MockBt {
    sim: Sim,
    state: Rc<RefCell<MockBtState>>,
}

impl MockBt {
    fn new(sim: &Sim) -> Self {
        MockBt {
            sim: sim.clone(),
            state: Rc::new(RefCell::new(MockBtState {
                available: true,
                sensor_present: true,
                adhoc_items: Vec::new(),
                streams: Vec::new(),
                subs: Vec::new(),
                next_stream: 0,
                published: Vec::new(),
                discoveries: 0,
            })),
        }
    }

    fn set_adhoc_items(&self, items: Vec<CxtItem>) {
        self.state.borrow_mut().adhoc_items = items;
    }

    /// Kills the attached sensor: every open stream reports an error.
    fn fail_sensor(&self) {
        let streams = {
            let mut st = self.state.borrow_mut();
            st.sensor_present = false;
            std::mem::take(&mut st.streams)
        };
        for (_h, _items, on_error) in streams {
            on_error(RefError::Unavailable("sensor link lost".into()));
        }
    }

    fn restore_sensor(&self) {
        self.state.borrow_mut().sensor_present = true;
    }

    /// Mutes the attached sensor *without* reporting an error: open
    /// streams simply stop carrying items (exercises the silence
    /// watchdog rather than the provider-failure path).
    fn mute_sensor(&self) {
        self.state.borrow_mut().sensor_present = false;
    }

    /// Flips BT availability (ad hoc rounds/subscriptions error while
    /// unavailable).
    fn set_available(&self, up: bool) {
        self.state.borrow_mut().available = up;
    }

    fn discoveries(&self) -> u64 {
        self.state.borrow().discoveries
    }

    fn published(&self) -> Vec<CxtItem> {
        self.state.borrow().published.clone()
    }
}

impl BtReference for MockBt {
    fn is_available(&self) -> bool {
        self.state.borrow().available
    }

    fn discover_sensor(&self, _cxt_type: &str, cb: Done<Result<SourceId, RefError>>) {
        self.state.borrow_mut().discoveries += 1;
        let state = self.state.clone();
        self.sim.schedule_in(SimDuration::from_secs(14), move || {
            if state.borrow().sensor_present {
                cb(Ok(SourceId::new("btgps://mock")))
            } else {
                cb(Err(RefError::NotFound("no gps in range".into())))
            }
        });
    }

    fn open_sensor_stream(
        &self,
        _source: &SourceId,
        cxt_type: &str,
        on_items: OnItems,
        on_error: OnRefError,
        cb: Done<Result<StreamHandle, RefError>>,
    ) {
        let handle = {
            let mut st = self.state.borrow_mut();
            st.next_stream += 1;
            let h = StreamHandle(st.next_stream);
            st.streams.push((h, on_items.clone(), on_error));
            h
        };
        // Stream one location item per second while the stream is open.
        let state = self.state.clone();
        let sim = self.sim.clone();
        let cxt_type = cxt_type.to_owned();
        self.sim.schedule_repeating(SimDuration::from_secs(1), move || {
            let st = state.borrow();
            if !st.streams.iter().any(|(h, _, _)| *h == handle) {
                return false;
            }
            if !st.sensor_present {
                return true; // silent until fail_sensor fires errors
            }
            let item = CxtItem::new(
                cxt_type.clone(),
                CxtValue::Position { x: 1.0, y: 2.0 },
                sim.now(),
            )
            .with_accuracy(5.0)
            .with_source("btgps://mock");
            drop(st);
            on_items(vec![item]);
            true
        });
        self.sim
            .schedule_in(SimDuration::from_millis(640), move || cb(Ok(handle)));
    }

    fn close_sensor_stream(&self, handle: StreamHandle) {
        self.state
            .borrow_mut()
            .streams
            .retain(|(h, _, _)| *h != handle);
    }

    fn adhoc_round(&self, spec: &AdHocSpec, cb: Done<ItemsResult>) {
        let state = self.state.clone();
        let cxt_type = spec.cxt_type.clone();
        self.sim.schedule_in(SimDuration::from_millis(32), move || {
            let st = state.borrow();
            if !st.available {
                cb(Err(RefError::Unavailable("bt off".into())));
                return;
            }
            let items: Vec<CxtItem> = st
                .adhoc_items
                .iter()
                .filter(|i| i.cxt_type == cxt_type)
                .cloned()
                .collect();
            cb(Ok(items));
        });
    }

    fn adhoc_subscribe(
        &self,
        spec: &AdHocSpec,
        period: simkit::SimDuration,
        on_items: OnItems,
        on_error: OnRefError,
    ) -> StreamHandle {
        let handle = {
            let mut st = self.state.borrow_mut();
            st.next_stream += 1;
            let h = StreamHandle(st.next_stream);
            st.subs.push(h);
            h
        };
        let state = self.state.clone();
        let cxt_type = spec.cxt_type.clone();
        self.sim.schedule_repeating(period, move |
| {
            let st = state.borrow();
            if !st.subs.contains(&handle) {
                return false;
            }
            if !st.available {
                drop(st);
                on_error(RefError::Unavailable("bt off".into()));
                return false;
            }
            let items: Vec<CxtItem> = st
                .adhoc_items
                .iter()
                .filter(|i| i.cxt_type == cxt_type)
                .cloned()
                .collect();
            drop(st);
            if !items.is_empty() {
                on_items(items);
            }
            true
        });
        handle
    }

    fn adhoc_unsubscribe(&self, handle: StreamHandle) {
        self.state.borrow_mut().subs.retain(|&h| h != handle);
    }

    fn publish(&self, item: &CxtItem, _key: Option<String>, cb: Done<Result<(), RefError>>) {
        self.state.borrow_mut().published.push(item.clone());
        self.sim
            .schedule_in(SimDuration::from_micros(140_359), move || cb(Ok(())));
    }

    fn unpublish(&self, cxt_type: &str) {
        self.state
            .borrow_mut()
            .published
            .retain(|i| i.cxt_type != cxt_type);
    }
}

#[derive(Clone)]
struct MockCell {
    sim: Sim,
    stored: Rc<RefCell<Vec<CxtItem>>>,
    canned: Rc<RefCell<Vec<CxtItem>>>,
    available: Rc<Cell<bool>>,
    subs: Rc<RefCell<Vec<(InfraSubHandle, OnItems)>>>,
    next_sub: Rc<Cell<u64>>,
}

impl MockCell {
    fn new(sim: &Sim) -> Self {
        MockCell {
            sim: sim.clone(),
            stored: Rc::new(RefCell::new(Vec::new())),
            canned: Rc::new(RefCell::new(Vec::new())),
            available: Rc::new(Cell::new(true)),
            subs: Rc::new(RefCell::new(Vec::new())),
            next_sub: Rc::new(Cell::new(0)),
        }
    }

    fn set_canned(&self, items: Vec<CxtItem>) {
        *self.canned.borrow_mut() = items;
    }
}

impl CellReference for MockCell {
    fn is_available(&self) -> bool {
        self.available.get()
    }

    fn store(&self, item: &CxtItem, cb: Done<Result<(), RefError>>) {
        self.stored.borrow_mut().push(item.clone());
        self.sim
            .schedule_in(SimDuration::from_millis(773), move || cb(Ok(())));
    }

    fn fetch(&self, spec: &InfraSpec, cb: Done<ItemsResult>) {
        let canned = self.canned.clone();
        let cxt_type = spec.cxt_type.clone();
        self.sim.schedule_in(SimDuration::from_millis(1_473), move || {
            let items: Vec<CxtItem> = canned
                .borrow()
                .iter()
                .filter(|i| i.cxt_type == cxt_type)
                .cloned()
                .collect();
            cb(Ok(items));
        });
    }

    fn subscribe(
        &self,
        spec: &InfraSpec,
        mode: InfraPushMode,
        on_items: OnItems,
    ) -> InfraSubHandle {
        self.next_sub.set(self.next_sub.get() + 1);
        let handle = InfraSubHandle(self.next_sub.get());
        self.subs.borrow_mut().push((handle, on_items.clone()));
        if let InfraPushMode::Periodic(every) = mode {
            let subs = self.subs.clone();
            let canned = self.canned.clone();
            let cxt_type = spec.cxt_type.clone();
            self.sim.schedule_repeating(every, move || {
                if !subs.borrow().iter().any(|(h, _)| *h == handle) {
                    return false;
                }
                let items: Vec<CxtItem> = canned
                    .borrow()
                    .iter()
                    .filter(|i| i.cxt_type == cxt_type)
                    .cloned()
                    .collect();
                if !items.is_empty() {
                    on_items(items);
                }
                true
            });
        }
        handle
    }

    fn unsubscribe(&self, handle: InfraSubHandle) {
        self.subs.borrow_mut().retain(|(h, _)| *h != handle);
    }
}

// ------------------------------------------------------------------
// Rig
// ------------------------------------------------------------------

struct Rig {
    sim: Sim,
    factory: ContextFactory,
    internal: MockInternal,
    bt: MockBt,
    cell: MockCell,
    client: Rc<CollectingClient>,
}

fn rig_with_config(types: &[&str], config: FactoryConfig) -> Rig {
    let sim = Sim::new();
    let internal = MockInternal::new(&sim, types);
    let bt = MockBt::new(&sim);
    let cell = MockCell::new(&sim);
    let refs = References {
        internal: Some(Rc::new(internal.clone())),
        bt: Some(Rc::new(bt.clone())),
        wifi: None,
        cell: Some(Rc::new(cell.clone())),
    };
    let factory = ContextFactory::new(&sim, refs, config);
    Rig {
        sim,
        factory,
        internal,
        bt,
        cell,
        client: Rc::new(CollectingClient::new()),
    }
}

fn rig_with(types: &[&str]) -> Rig {
    rig_with_config(types, FactoryConfig::default())
}

fn rig() -> Rig {
    rig_with(&["temperature", "light"])
}

fn temp_item(v: f64, acc: f64, at: SimTime) -> CxtItem {
    CxtItem::new("temperature", CxtValue::quantity(v, "C"), at)
        .with_accuracy(acc)
        .with_source("peer://boat")
}

// ------------------------------------------------------------------
// Tests
// ------------------------------------------------------------------

#[test]
fn periodic_internal_query_delivers_at_rate_and_expires() {
    let r = rig();
    let id = r
        .factory
        .process_cxt_query_text(
            "SELECT temperature FROM intSensor DURATION 1 min EVERY 5 sec",
            r.client.clone(),
        )
        .unwrap();
    assert_eq!(r.factory.mechanism_of(id), Some(Mechanism::IntSensor));
    r.sim.run_for(SimDuration::from_secs(61));
    let items = r.client.items_for(id);
    // Ticks at 5 s..55 s deliver; the 60 s sample is still in flight
    // (78 us sensor latency) when the DURATION expiry fires.
    assert_eq!(items.len(), 11, "one item per 5 s over the 60 s lifetime");
    assert_eq!(r.factory.active_queries(), 0, "expired after DURATION");
    // no further deliveries after expiry
    let settled = items.len();
    r.sim.run_for(SimDuration::from_secs(30));
    assert_eq!(r.client.items_for(id).len(), settled);
}

#[test]
fn sample_budget_retires_the_query() {
    let r = rig();
    let id = r
        .factory
        .process_cxt_query_text(
            "SELECT temperature FROM intSensor DURATION 3 samples EVERY 2 sec",
            r.client.clone(),
        )
        .unwrap();
    r.sim.run_for(SimDuration::from_secs(30));
    assert_eq!(r.client.items_for(id).len(), 3);
    assert_eq!(r.factory.active_queries(), 0);
}

#[test]
fn on_demand_query_delivers_once() {
    let r = rig();
    let id = r
        .factory
        .process_cxt_query_text(
            "SELECT temperature FROM intSensor DURATION 1 samples",
            r.client.clone(),
        )
        .unwrap();
    r.sim.run_for(SimDuration::from_secs(10));
    assert_eq!(r.client.items_for(id).len(), 1);
    assert_eq!(r.factory.active_queries(), 0);
}

#[test]
fn mergeable_queries_share_one_provider_with_post_extraction() {
    let r = rig();
    // Ad hoc items with different accuracies.
    let now = SimTime::ZERO;
    r.bt.set_adhoc_items(vec![
        temp_item(20.0, 0.1, now),
        temp_item(21.0, 0.4, now),
    ]);
    let strict = r
        .factory
        .process_cxt_query_text(
            "SELECT temperature FROM adHocNetwork(all,1) WHERE accuracy=0.2 \
             DURATION 1 hour EVERY 10 sec",
            r.client.clone(),
        )
        .unwrap();
    let loose = r
        .factory
        .process_cxt_query_text(
            "SELECT temperature FROM adHocNetwork(all,1) WHERE accuracy=0.5 \
             DURATION 1 hour EVERY 10 sec",
            r.client.clone(),
        )
        .unwrap();
    // One provider serves both (query merging).
    let facade = r.factory.facade(Mechanism::AdHocBt).unwrap();
    assert_eq!(facade.provider_count(), 1);
    // Refresh item timestamps so FRESHNESS-free queries still match.
    r.sim.run_for(SimDuration::from_secs(25));
    let strict_items = r.client.items_for(strict);
    let loose_items = r.client.items_for(loose);
    assert!(!strict_items.is_empty());
    // Post-extraction: the strict query never sees the 0.4-accuracy item.
    assert!(strict_items
        .iter()
        .all(|i| i.metadata.accuracy.unwrap() <= 0.2));
    assert!(loose_items.len() > strict_items.len());
}

#[test]
fn cancel_returns_error_for_unknown_query() {
    let r = rig();
    assert!(r.factory.cancel_cxt_query(QueryId(99)).is_err());
    let id = r
        .factory
        .process_cxt_query_text(
            "SELECT temperature FROM intSensor DURATION 1 hour EVERY 5 sec",
            r.client.clone(),
        )
        .unwrap();
    r.factory.cancel_cxt_query(id).unwrap();
    assert_eq!(r.factory.active_queries(), 0);
    r.sim.run_for(SimDuration::from_secs(20));
    assert!(r.client.items_for(id).is_empty());
}

#[test]
fn bt_sensor_failure_triggers_failover_and_recovery() {
    // The Fig. 5 scenario at middleware level: a location query served by
    // a BT-GPS stream fails over to BT ad hoc provisioning, then returns
    // once the sensor is rediscovered.
    let r = rig_with(&[]); // no internal sensors: location comes over BT
    r.bt.set_adhoc_items(vec![CxtItem::new(
        "location",
        CxtValue::Position { x: 50.0, y: 60.0 },
        SimTime::ZERO,
    )
    .with_accuracy(30.0)
    .with_source("peer://neighbor")]);
    let id = r
        .factory
        .process_cxt_query_text(
            "SELECT location FROM intSensor DURATION 2 hour EVERY 5 sec",
            r.client.clone(),
        )
        .unwrap();
    // Discovery (~14 s) then streaming.
    r.sim.run_for(SimDuration::from_secs(40));
    assert_eq!(r.factory.mechanism_of(id), Some(Mechanism::IntSensor));
    let before = r.client.items_for(id).len();
    assert!(before > 0, "sensor items should flow");

    // GPS dies.
    r.bt.fail_sensor();
    r.sim.run_for(SimDuration::from_secs(60));
    assert_eq!(
        r.factory.mechanism_of(id),
        Some(Mechanism::AdHocBt),
        "switched to ad hoc provisioning"
    );
    let during = r.client.items_for(id).len();
    assert!(during > before, "ad hoc items keep the query alive");
    assert!(r
        .client
        .errors()
        .iter()
        .any(|e| e.contains("switched provisioning")));

    // GPS comes back; the recovery probe (every 30 s) rediscovers it.
    r.bt.restore_sensor();
    r.sim.run_for(SimDuration::from_secs(120));
    assert_eq!(
        r.factory.mechanism_of(id),
        Some(Mechanism::IntSensor),
        "switched back after recovery"
    );
    assert!(r.bt.discoveries() >= 2, "recovery used BT discovery");
    let after = r.client.items_for(id).len();
    r.sim.run_for(SimDuration::from_secs(20));
    assert!(r.client.items_for(id).len() > after, "items flow again");
}

#[test]
fn no_mechanism_yields_an_error() {
    let sim = Sim::new();
    let factory = ContextFactory::new(&sim, References::none(), FactoryConfig::default());
    let client = Rc::new(CollectingClient::new());
    let err = factory
        .process_cxt_query_text("SELECT temperature DURATION 1 min", client)
        .unwrap_err();
    assert!(err.to_string().contains("no mechanism"), "{err}");
    assert_eq!(factory.active_queries(), 0);
}

#[test]
fn infra_query_uses_cell_reference() {
    let r = rig_with(&[]);
    r.cell
        .set_canned(vec![temp_item(18.0, 0.3, SimTime::ZERO)]);
    let id = r
        .factory
        .process_cxt_query_text(
            "SELECT temperature FROM extInfra DURATION 1 samples",
            r.client.clone(),
        )
        .unwrap();
    assert_eq!(r.factory.mechanism_of(id), Some(Mechanism::Infra));
    r.sim.run_for(SimDuration::from_secs(5));
    assert_eq!(r.client.items_for(id).len(), 1);
}

#[test]
fn event_query_fires_on_rising_edge_only() {
    let r = rig();
    let id = r
        .factory
        .process_cxt_query_text(
            "SELECT temperature FROM intSensor FRESHNESS 20 sec DURATION 1 hour \
             EVENT AVG(temperature)>25",
            r.client.clone(),
        )
        .unwrap();
    // Below threshold: no deliveries.
    r.internal.value.set(20.0);
    r.sim.run_for(SimDuration::from_secs(30));
    assert!(r.client.items_for(id).is_empty());
    // Cross the threshold.
    r.internal.value.set(30.0);
    r.sim.run_for(SimDuration::from_secs(60));
    let fired = r.client.items_for(id).len();
    assert!(fired >= 1, "event should fire after AVG crosses 25");
    // Holding above threshold does not re-fire (edge-triggered).
    r.sim.run_for(SimDuration::from_secs(60));
    assert_eq!(r.client.items_for(id).len(), fired);
    // Drop below, then cross again -> fires once more.
    r.internal.value.set(10.0);
    r.sim.run_for(SimDuration::from_secs(120));
    r.internal.value.set(35.0);
    r.sim.run_for(SimDuration::from_secs(60));
    assert!(r.client.items_for(id).len() > fired);
}

#[test]
fn reduce_power_policy_moves_queries_off_umts() {
    let r = rig_with(&[]);
    r.cell
        .set_canned(vec![temp_item(18.0, 0.3, SimTime::ZERO)]);
    r.bt.set_adhoc_items(vec![temp_item(19.0, 0.3, SimTime::ZERO)]);
    let id = r
        .factory
        .process_cxt_query_text(
            "SELECT temperature FROM extInfra DURATION 2 hour EVERY 10 sec",
            r.client.clone(),
        )
        .unwrap();
    assert_eq!(r.factory.mechanism_of(id), Some(Mechanism::Infra));
    r.factory.add_rule(ContextRule::new(
        Condition::parse("<batteryLevel, equal, low>").unwrap(),
        RuleAction::ReducePower,
    ));
    // Battery drops: the monitor event triggers enforcement.
    r.factory
        .monitor()
        .report(ResourceEvent::Battery(ResourceLevel::Low));
    assert_eq!(
        r.factory.mechanism_of(id),
        Some(Mechanism::AdHocBt),
        "reducePower replaces UMTS provisioning with BT one-hop"
    );
    assert!(r
        .client
        .errors()
        .iter()
        .any(|e| e.contains("reducePower")));
}

#[test]
fn reduce_memory_policy_trims_the_repository() {
    let r = rig();
    let repo = r.factory.repository();
    for i in 0..8 {
        repo.store_local(temp_item(i as f64, 0.1, SimTime::ZERO));
    }
    assert_eq!(repo.len(), 8);
    r.factory.add_rule(ContextRule::new(
        Condition::parse("<memoryUtilization, moreThan, 0.8>").unwrap(),
        RuleAction::ReduceMemory,
    ));
    r.factory.monitor().report(ResourceEvent::Memory(0.9));
    assert_eq!(repo.len(), 4, "reduceMemory halves local storage");
}

#[test]
fn publishing_requires_registration() {
    let r = rig();
    let item = temp_item(14.0, 0.2, SimTime::ZERO);
    let err = r.factory.publish_cxt_item(item.clone(), None).unwrap_err();
    assert!(err.to_string().contains("registered"));
    r.factory.register_cxt_server("sailing-app");
    r.factory.publish_cxt_item(item, None).unwrap();
    r.sim.run_for(SimDuration::from_secs(1));
    assert_eq!(r.bt.published().len(), 1);
    r.factory.unpublish_cxt_item("temperature");
    assert!(r.bt.published().is_empty());
    r.factory.deregister_cxt_server("sailing-app");
    let err = r
        .factory
        .publish_cxt_item(temp_item(15.0, 0.2, SimTime::ZERO), None)
        .unwrap_err();
    assert!(err.to_string().contains("registered"));
}

#[test]
fn store_cxt_item_goes_local_and_remote() {
    let r = rig();
    let item = temp_item(14.0, 0.2, SimTime::ZERO);
    r.factory.store_cxt_item(item.clone());
    r.sim.run_for(SimDuration::from_secs(2));
    assert_eq!(r.factory.repository().latest("temperature"), Some(item));
    assert_eq!(r.cell.stored.borrow().len(), 1);
}

#[test]
fn delivered_items_land_in_the_repository() {
    let r = rig();
    let _id = r
        .factory
        .process_cxt_query_text(
            "SELECT temperature FROM intSensor DURATION 10 samples EVERY 2 sec",
            r.client.clone(),
        )
        .unwrap();
    r.sim.run_for(SimDuration::from_secs(10));
    assert!(r.factory.repository().latest("temperature").is_some());
}

#[test]
fn candidates_respect_from_clause_and_hardware() {
    let r = rig();
    let q = CxtQuery::parse("SELECT temperature FROM extInfra DURATION 1 min").unwrap();
    assert_eq!(r.factory.candidates(&q)[0], Mechanism::Infra);
    let q = CxtQuery::parse("SELECT temperature FROM adHocNetwork(all,3) DURATION 1 min").unwrap();
    // No WiFi on this rig: multi-hop request falls back to BT then infra.
    assert_eq!(
        r.factory.candidates(&q),
        vec![Mechanism::AdHocBt, Mechanism::Infra]
    );
    let q = QueryBuilder::select("temperature").build();
    assert_eq!(r.factory.candidates(&q)[0], Mechanism::IntSensor);
    // Unknown type without internal sensor: intSensor still possible via BT.
    let q = QueryBuilder::select("heartRate").build();
    assert_eq!(r.factory.candidates(&q)[0], Mechanism::AdHocBt);
}

#[test]
fn unparseable_query_reports_parse_error() {
    let r = rig();
    let err = r
        .factory
        .process_cxt_query_text("SELECT", r.client.clone())
        .unwrap_err();
    assert!(matches!(err, contory::ContoryError::Parse(_)));
}

#[test]
fn high_security_mode_gates_unknown_sources_via_make_decision() {
    // §4.3/§4.4: in high-security mode every new context source is
    // "blocked or admitted based on explicit validation by the
    // application" (Client::makeDecision).
    let sim = Sim::new();
    let internal = MockInternal::new(&sim, &[]);
    let bt = MockBt::new(&sim);
    bt.set_adhoc_items(vec![temp_item(20.0, 0.1, SimTime::ZERO)]);
    let refs = References {
        internal: Some(Rc::new(internal)),
        bt: Some(Rc::new(bt)),
        wifi: None,
        cell: None,
    };
    let factory = ContextFactory::new(
        &sim,
        refs,
        FactoryConfig {
            security: contory::SecurityMode::High,
            ..FactoryConfig::default()
        },
    );
    // Client that refuses unknown sources.
    let denier = Rc::new(CollectingClient::new());
    denier.set_decision(false);
    let id = factory
        .process_cxt_query_text(
            "SELECT temperature FROM adHocNetwork(all,1) DURATION 1 hour EVERY 10 sec",
            denier.clone(),
        )
        .unwrap();
    sim.run_for(SimDuration::from_secs(35));
    assert!(denier.items_for(id).is_empty(), "denied source must not leak");
    assert!(denier
        .events()
        .iter()
        .any(|e| matches!(e, contory::ClientEvent::Decision(_, false))));
    factory.cancel_cxt_query(id).unwrap();

    // A client that approves gets the items — but the earlier refusal
    // blocked the source permanently, so unblock it first.
    factory
        .access_controller()
        .unblock(&contory::SourceId::new("peer://boat"));
    let approver = Rc::new(CollectingClient::new());
    approver.set_decision(true);
    let id2 = factory
        .process_cxt_query_text(
            "SELECT temperature FROM adHocNetwork(all,1) DURATION 1 hour EVERY 10 sec",
            approver.clone(),
        )
        .unwrap();
    sim.run_for(SimDuration::from_secs(35));
    assert!(!approver.items_for(id2).is_empty(), "approved source flows");
    // Only one decision was needed: the source is now known.
    let decisions = approver
        .events()
        .iter()
        .filter(|e| matches!(e, contory::ClientEvent::Decision(_, _)))
        .count();
    assert_eq!(decisions, 1);
}

#[test]
fn reduce_load_policy_slows_periodic_queries() {
    let r = rig();
    let id = r
        .factory
        .process_cxt_query_text(
            "SELECT temperature FROM intSensor DURATION 1 hour EVERY 5 sec",
            r.client.clone(),
        )
        .unwrap();
    r.sim.run_for(SimDuration::from_secs(60));
    let before = r.client.items_for(id).len();
    assert!((10..=13).contains(&before), "baseline rate: {before}");
    r.factory.add_rule(ContextRule::new(
        Condition::parse("<batteryLevel, equal, medium>").unwrap(),
        RuleAction::ReduceLoad,
    ));
    r.factory
        .monitor()
        .report(ResourceEvent::Battery(ResourceLevel::Medium));
    r.sim.run_for(SimDuration::from_secs(60));
    let after = r.client.items_for(id).len() - before;
    assert!(
        after <= before / 2 + 2,
        "reduceLoad should halve the rate: {before} then {after}"
    );
}

// ------------------------------------------------------------------
// Failure detection, retry/backoff and the FailoverReport
// ------------------------------------------------------------------

#[test]
fn silence_watchdog_detects_a_stalled_stream_and_fails_over() {
    // The BT-GPS stream stays open but goes silent (no error): only the
    // opt-in silence watchdog can notice. The horizon k × period must
    // exceed the mechanism's startup latency (~15 s of BT discovery +
    // stream open), otherwise the watchdog correctly flags the silent
    // startup itself — so k = 4 periods of 5 s.
    let mut config = FactoryConfig::default();
    config.failover.silence_periods = 4;
    let r = rig_with_config(&[], config);
    r.bt.set_adhoc_items(vec![CxtItem::new(
        "location",
        CxtValue::Position { x: 50.0, y: 60.0 },
        SimTime::ZERO,
    )
    .with_accuracy(30.0)
    .with_source("peer://neighbor")]);
    let id = r
        .factory
        .process_cxt_query_text(
            "SELECT location FROM intSensor DURATION 2 hour EVERY 5 sec",
            r.client.clone(),
        )
        .unwrap();
    r.sim.run_for(SimDuration::from_secs(40));
    assert_eq!(r.factory.mechanism_of(id), Some(Mechanism::IntSensor));
    let before = r.client.items_for(id).len();
    assert!(before > 0, "sensor items flow before the stall");

    let stall_at = r.sim.now();
    r.bt.mute_sensor();
    r.sim.run_for(SimDuration::from_secs(60));
    assert_eq!(
        r.factory.mechanism_of(id),
        Some(Mechanism::AdHocBt),
        "watchdog kicked the stalled stream over to ad hoc"
    );
    assert!(r.client.items_for(id).len() > before, "items resumed");
    assert!(
        r.client.errors().iter().any(|e| e.contains("watchdog")),
        "client told about the watchdog: {:?}",
        r.client.errors()
    );
    let report = r.factory.failover_report();
    let row = report.get(id).expect("query tracked");
    assert!(row.failures >= 1, "silence counted as a failure");
    assert_eq!(
        row.mechanisms_tried,
        vec![Mechanism::IntSensor, Mechanism::AdHocBt],
        "trail records the switch"
    );
    assert!(row.first_failure_at.unwrap() >= stall_at, "detected after the stall");
    // Detection is bounded by the watchdog horizon (k periods) plus one
    // watchdog tick; the gap also covers one period of re-provisioning.
    assert!(
        row.gap_max <= SimDuration::from_secs((4 + 2) * 5),
        "gap {:?} exceeds the detection + re-provisioning bound",
        row.gap_max
    );
}

#[test]
fn transient_failures_are_retried_with_backoff_before_failover() {
    // BT ad hoc drops; with max_retries = 2 the factory retries the same
    // mechanism (with backoff) before failing over to the infrastructure.
    let mut config = FactoryConfig::default();
    config.failover.max_retries = 2;
    let r = rig_with_config(&[], config);
    r.bt
        .set_adhoc_items(vec![temp_item(21.0, 0.2, SimTime::ZERO)]);
    r.cell.set_canned(vec![temp_item(18.0, 0.3, SimTime::ZERO)]);
    let id = r
        .factory
        .process_cxt_query_text(
            "SELECT temperature FROM adHocNetwork(all,1) DURATION 1 hour EVERY 5 sec",
            r.client.clone(),
        )
        .unwrap();
    r.sim.run_for(SimDuration::from_secs(20));
    assert_eq!(r.factory.mechanism_of(id), Some(Mechanism::AdHocBt));
    assert!(!r.client.items_for(id).is_empty());

    r.bt.set_available(false);
    r.sim.run_for(SimDuration::from_secs(120));
    let report = r.factory.failover_report();
    let row = report.get(id).expect("query tracked");
    assert_eq!(row.retries, 2, "both retry budget slots were spent");
    assert!(row.failures >= 3, "initial failure plus failed retries");
    assert_eq!(
        r.factory.mechanism_of(id),
        Some(Mechanism::Infra),
        "failed over to the infrastructure after the retries"
    );
    assert!(
        row.mechanisms_tried.ends_with(&[Mechanism::AdHocBt, Mechanism::Infra]),
        "trail {:?}",
        row.mechanisms_tried
    );
    assert!(
        r.client.errors().iter().any(|e| e.contains("retrying in")),
        "client told about the backoff: {:?}",
        r.client.errors()
    );

    // BT returns; the recovery probe restores the preferred mechanism
    // and the backoff state was reset by successful deliveries.
    r.bt.set_available(true);
    r.sim.run_for(SimDuration::from_secs(120));
    assert_eq!(r.factory.mechanism_of(id), Some(Mechanism::AdHocBt));
}

#[test]
fn blackout_rejects_on_demand_query_with_all_mechanisms_failed() {
    // Every candidate is dead from the start (BT unavailable, no WiFi,
    // no cell): the provider fails synchronously inside submit, the
    // failure cascade exhausts the candidate list, and the terminal
    // AllMechanismsFailed error is surfaced directly from
    // process_cxt_query — not swallowed into a stale Ok.
    let sim = Sim::new();
    let bt = MockBt::new(&sim);
    bt.set_available(false);
    let refs = References {
        internal: None,
        bt: Some(Rc::new(bt.clone())),
        wifi: None,
        cell: None,
    };
    let factory = ContextFactory::new(&sim, refs, FactoryConfig::default());
    let client = Rc::new(CollectingClient::new());
    let err = factory
        .process_cxt_query_text(
            "SELECT temperature FROM adHocNetwork(all,1) DURATION 1 samples",
            client.clone(),
        )
        .unwrap_err();
    assert!(
        matches!(err, ContoryError::AllMechanismsFailed { .. }),
        "unexpected error: {err}"
    );
    assert!(err.to_string().contains("all mechanisms failed"), "{err}");
    assert!(err.to_string().contains("adHocNetwork/BT"), "trail in the error: {err}");
    assert_eq!(factory.active_queries(), 0, "nothing left active");
    // The attempt is still accounted in the failover report.
    let report = factory.failover_report();
    assert!(report.total_failures() >= 1, "failure recorded:\n{report}");
    sim.run_for(SimDuration::from_secs(10));
    assert!(client.all_items().is_empty(), "nothing delivered");
}
