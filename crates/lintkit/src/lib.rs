//! `lintkit` — offline determinism & robustness lints for the Contory
//! workspace.
//!
//! PR 1 made failover simulation deterministic and seed-reproducible;
//! nothing *enforced* the invariants it relies on. A single
//! `Instant::now()`, an ambient `HashMap` iteration or a stray
//! `unwrap()` in `crates/core` silently breaks seed-for-seed
//! reproducibility of `FailoverReport`s and the Fig. 5 SLO bench. This
//! crate is the machine-checked contract: a dependency-free static pass
//! (no `syn`, no `dylint`, nothing from crates.io) built on a small
//! hand-rolled, comment/string-aware Rust lexer.
//!
//! Run it over the whole workspace:
//!
//! ```text
//! cargo run -p lintkit -- --workspace
//! ```
//!
//! or over individual files (`cargo run -p lintkit -- path/to/file.rs`).
//! It also runs as a tier-1 test (`crates/lintkit/tests/workspace_clean.rs`)
//! and as the `==> lintkit gate` step of `scripts/verify.sh`.
//!
//! ## Suppressing a diagnostic
//!
//! Append a pragma to the offending line (or place it alone on the line
//! above) naming the rule(s) to silence — always with a justification:
//!
//! ```text
//! let t0 = Instant::now(); // lint:allow(wallclock-ban) bench harness timing
//! ```
//!
//! ## Fixture files
//!
//! A file whose first lines contain a directive such as
//!
//! ```text
//! // lint-fixture: crate=core kind=lib
//! ```
//!
//! is linted *as if* it lived in that crate/target, which is how the
//! golden-file fixture suite exercises path-scoped rules from
//! `tests/fixtures/`. The workspace walk skips `fixtures/` directories.

#![deny(warnings)]
#![deny(missing_docs)]

pub mod lexer;
pub mod rules;

use rules::{cfg_test_regions, find_matches, Rule, RULES};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// What kind of compilation target a file belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/**` excluding `src/bin`).
    Lib,
    /// Binary target (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Integration test (`tests/**`) or `#[cfg(test)]` region.
    Test,
    /// Bench target (`benches/**`).
    Bench,
    /// Example (`examples/**`).
    Example,
}

impl fmt::Display for FileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FileKind::Lib => "lib",
            FileKind::Bin => "bin",
            FileKind::Test => "test",
            FileKind::Bench => "bench",
            FileKind::Example => "example",
        };
        f.write_str(s)
    }
}

impl FileKind {
    fn parse(s: &str) -> Option<FileKind> {
        Some(match s {
            "lib" => FileKind::Lib,
            "bin" => FileKind::Bin,
            "test" => FileKind::Test,
            "bench" => FileKind::Bench,
            "example" => FileKind::Example,
            _ => return None,
        })
    }
}

/// Lint context of one file: which crate it belongs to (short name,
/// e.g. `core` for `crates/core`; `None` for the umbrella crate) and
/// what kind of target it is.
#[derive(Clone, Debug)]
pub struct FileCtx {
    /// Short crate name (the directory under `crates/`), if any.
    pub krate: Option<String>,
    /// Target kind.
    pub kind: FileKind,
    /// Bare file name (e.g. `shard.rs`) — lets rules scope to modules
    /// whose *name* marks a contract, like the cross-shard merge paths.
    pub file: String,
}

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: &'static str,
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.path.display(),
            self.line,
            self.col,
            self.rule,
            self.msg
        )
    }
}

/// Summary of one lint run.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Violations found (pragma-suppressed hits excluded).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of hits suppressed by `lint:allow` pragmas.
    pub allowed: usize,
    /// Number of files scanned.
    pub files: usize,
}

impl RunReport {
    /// True if no violation survived.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    fn merge(&mut self, other: RunReport) {
        self.diagnostics.extend(other.diagnostics);
        self.allowed += other.allowed;
        self.files += other.files;
    }
}

/// Classifies a file by its path relative to the workspace root.
pub fn classify(rel_path: &Path) -> FileCtx {
    let comps: Vec<String> = rel_path
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let krate = match comps.first().map(String::as_str) {
        Some("crates") => comps.get(1).cloned(),
        _ => None,
    };
    let has = |seg: &str| comps.iter().any(|c| c == seg);
    let file = comps.last().map(String::as_str).unwrap_or("");
    let kind = if has("tests") {
        FileKind::Test
    } else if has("benches") {
        FileKind::Bench
    } else if has("examples") {
        FileKind::Example
    } else if has("bin") || file == "main.rs" || file == "build.rs" {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    FileCtx {
        krate,
        kind,
        file: file.to_string(),
    }
}

/// Parses a `// lint-fixture: crate=<name> kind=<kind> [file=<name>]`
/// directive from the head of a source file. A missing `file=` field
/// leaves `file` empty; [`lint_file`] then falls back to the real file
/// name, so fixtures only need the field to masquerade as a module they
/// are not named after.
pub fn fixture_directive(src: &str) -> Option<FileCtx> {
    for line in src.lines().take(5) {
        let Some(idx) = line.find("lint-fixture:") else {
            continue;
        };
        let mut krate = None;
        let mut kind = FileKind::Lib;
        let mut file = String::new();
        for field in line[idx + "lint-fixture:".len()..].split_whitespace() {
            if let Some(v) = field.strip_prefix("crate=") {
                krate = Some(v.to_string());
            } else if let Some(v) = field.strip_prefix("kind=") {
                kind = FileKind::parse(v)?;
            } else if let Some(v) = field.strip_prefix("file=") {
                file = v.to_string();
            }
        }
        return Some(FileCtx { krate, kind, file });
    }
    None
}

/// Lints one source string under an explicit context.
pub fn lint_source(path: &Path, src: &str, ctx: &FileCtx) -> RunReport {
    let lexed = lexer::lex(src);
    let test_regions = cfg_test_regions(&lexed.tokens);
    let in_test_region = |tok_idx: usize| {
        test_regions
            .iter()
            .any(|&(start, end)| tok_idx >= start && tok_idx <= end)
    };

    // line -> rules allowed on that line.
    let mut allow: std::collections::BTreeMap<u32, BTreeSet<String>> =
        std::collections::BTreeMap::new();
    for pragma in &lexed.pragmas {
        let line = if pragma.standalone {
            pragma.line + 1
        } else {
            pragma.line
        };
        allow
            .entry(line)
            .or_default()
            .extend(pragma.rules.iter().cloned());
    }

    let mut report = RunReport {
        files: 1,
        ..RunReport::default()
    };
    for rule in RULES {
        let applies_outside = (rule.applies)(ctx);
        let applies_in_tests = (rule.applies)(&FileCtx {
            krate: ctx.krate.clone(),
            kind: FileKind::Test,
            file: ctx.file.clone(),
        });
        if !applies_outside && !applies_in_tests {
            continue;
        }
        for needle in rule.needles {
            for tok_idx in find_matches(&lexed.tokens, needle) {
                let effective = if in_test_region(tok_idx) {
                    applies_in_tests
                } else {
                    applies_outside
                };
                if !effective {
                    continue;
                }
                let tok = &lexed.tokens[tok_idx];
                let allowed = allow
                    .get(&tok.line)
                    .is_some_and(|rules| rules.contains(rule.name));
                if allowed {
                    report.allowed += 1;
                } else {
                    report.diagnostics.push(Diagnostic {
                        rule: rule.name,
                        path: path.to_path_buf(),
                        line: tok.line,
                        col: tok.col,
                        msg: needle.msg.to_string(),
                    });
                }
            }
        }
    }
    report
        .diagnostics
        .sort_by_key(|d| (d.line, d.col, d.rule));
    report
}

/// Lints one file from disk. A `lint-fixture:` directive overrides the
/// path-derived context (so fixtures exercise path-scoped rules).
pub fn lint_file(root: &Path, path: &Path) -> std::io::Result<RunReport> {
    let src = std::fs::read_to_string(path)?;
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut ctx = fixture_directive(&src).unwrap_or_else(|| classify(rel));
    if ctx.file.is_empty() {
        ctx.file = rel
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
    }
    Ok(lint_source(rel, &src, &ctx))
}

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results"];

/// Collects every workspace `.rs` file under `root`, in sorted
/// (deterministic) order, skipping build output and lint fixtures.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            let name = entry
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if entry.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(entry);
                }
            } else if name.ends_with(".rs") {
                files.push(entry);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<RunReport> {
    let mut report = RunReport::default();
    for file in workspace_files(root)? {
        report.merge(lint_file(root, &file)?);
    }
    report
        .diagnostics
        .sort_by_key(|d| (d.path.clone(), d.line, d.col));
    Ok(report)
}

/// Locates the workspace root: an ancestor of `start` (or of this
/// crate's manifest dir) containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut candidates: Vec<PathBuf> = vec![start.to_path_buf()];
    candidates.push(Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf());
    for base in candidates {
        let mut dir = Some(base.as_path());
        while let Some(d) = dir {
            if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
                return Some(d.to_path_buf());
            }
            dir = d.parent();
        }
    }
    None
}

/// The rule catalog (re-exported for the CLI and docs).
pub fn catalog() -> &'static [Rule] {
    RULES
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(krate: &str, kind: FileKind) -> FileCtx {
        FileCtx {
            krate: Some(krate.to_string()),
            kind,
            file: "x.rs".to_string(),
        }
    }

    fn ctx_file(krate: &str, kind: FileKind, file: &str) -> FileCtx {
        FileCtx {
            file: file.to_string(),
            ..ctx(krate, kind)
        }
    }

    fn diags(src: &str, c: &FileCtx) -> Vec<(String, u32)> {
        lint_source(Path::new("x.rs"), src, c)
            .diagnostics
            .into_iter()
            .map(|d| (d.rule.to_string(), d.line))
            .collect()
    }

    #[test]
    fn wallclock_fires_outside_crit_only() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(diags(src, &ctx("radio", FileKind::Lib)).len(), 1);
        assert_eq!(diags(src, &ctx("crit", FileKind::Lib)).len(), 0);
    }

    #[test]
    fn unordered_iter_scoped_to_sim_visible_libs() {
        let src = "use std::collections::HashMap;";
        assert_eq!(diags(src, &ctx("core", FileKind::Lib)).len(), 1);
        assert_eq!(diags(src, &ctx("bench", FileKind::Lib)).len(), 0);
        assert_eq!(diags(src, &ctx("core", FileKind::Test)).len(), 0);
    }

    #[test]
    fn unwrap_exempt_in_cfg_test_mod() {
        let src = "fn lib() -> u32 { v.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n  fn t() { v.unwrap(); }\n}\n";
        let d = diags(src, &ctx("core", FileKind::Lib));
        assert_eq!(d, vec![("no-unwrap-in-core".to_string(), 1)]);
    }

    #[test]
    fn pragma_suppresses_same_line_and_next_line() {
        let same = "fn f() { panic!(); } // lint:allow(no-unwrap-in-core) invariant";
        assert!(diags(same, &ctx("core", FileKind::Lib)).is_empty());
        let next = "// lint:allow(no-unwrap-in-core) invariant\nfn f() { panic!(); }";
        assert!(diags(next, &ctx("core", FileKind::Lib)).is_empty());
        let wrong_rule = "fn f() { panic!(); } // lint:allow(no-exit)";
        assert_eq!(diags(wrong_rule, &ctx("core", FileKind::Lib)).len(), 1);
    }

    #[test]
    fn allowed_hits_are_counted() {
        let src = "fn f() { panic!(); } // lint:allow(no-unwrap-in-core)";
        let report = lint_source(Path::new("x.rs"), src, &ctx("core", FileKind::Lib));
        assert!(report.is_clean());
        assert_eq!(report.allowed, 1);
    }

    #[test]
    fn exit_exempt_in_bins_and_examples() {
        let src = "fn f() { std::process::exit(1); }";
        assert_eq!(diags(src, &ctx("core", FileKind::Lib)).len(), 1);
        assert_eq!(diags(src, &ctx("core", FileKind::Test)).len(), 1);
        assert_eq!(diags(src, &ctx("bench", FileKind::Bin)).len(), 0);
        assert_eq!(diags(src, &ctx("bench", FileKind::Example)).len(), 0);
    }

    #[test]
    fn print_exempt_outside_lib() {
        let src = "fn f() { println!(\"hi\"); }";
        assert_eq!(diags(src, &ctx("core", FileKind::Lib)).len(), 1);
        for kind in [FileKind::Bin, FileKind::Test, FileKind::Bench, FileKind::Example] {
            assert_eq!(diags(src, &ctx("core", kind)).len(), 0, "{kind}");
        }
    }

    #[test]
    fn ambient_rng_fires_everywhere() {
        let src = "use std::collections::hash_map::RandomState;";
        assert_eq!(diags(src, &ctx("bench", FileKind::Bin)).len(), 1);
        assert_eq!(diags(src, &ctx("simkit", FileKind::Lib)).len(), 1);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f() { v.unwrap_or(0); v.unwrap_or_else(|| 0); v.unwrap_or_default(); }";
        assert!(diags(src, &ctx("core", FileKind::Lib)).is_empty());
    }

    #[test]
    fn doc_comment_examples_do_not_fire() {
        let src = "/// let v = x.unwrap();\n/// let t = Instant::now();\nfn f() {}";
        assert!(diags(src, &ctx("core", FileKind::Lib)).is_empty());
    }

    #[test]
    fn classify_paths() {
        let c = classify(Path::new("crates/core/src/policy.rs"));
        assert_eq!(c.krate.as_deref(), Some("core"));
        assert_eq!(c.kind, FileKind::Lib);
        assert_eq!(c.file, "policy.rs");
        let c = classify(Path::new("crates/bench/src/bin/fig5_failover.rs"));
        assert_eq!(c.kind, FileKind::Bin);
        let c = classify(Path::new("tests/full_stack.rs"));
        assert_eq!(c.krate, None);
        assert_eq!(c.kind, FileKind::Test);
        let c = classify(Path::new("crates/fuego/tests/end_to_end.rs"));
        assert_eq!(c.kind, FileKind::Test);
        let c = classify(Path::new("examples/quickstart.rs"));
        assert_eq!(c.kind, FileKind::Example);
        let c = classify(Path::new("crates/bench/benches/merging.rs"));
        assert_eq!(c.kind, FileKind::Bench);
    }

    #[test]
    fn fixture_directive_parses() {
        let src = "// lint-fixture: crate=core kind=lib\nfn f() {}";
        let c = fixture_directive(src).expect("directive");
        assert_eq!(c.krate.as_deref(), Some("core"));
        assert_eq!(c.kind, FileKind::Lib);
        assert_eq!(c.file, "");
        let src = "// lint-fixture: crate=simkit kind=lib file=shard.rs\nfn f() {}";
        let c = fixture_directive(src).expect("directive");
        assert_eq!(c.file, "shard.rs");
        assert!(fixture_directive("fn f() {}").is_none());
    }

    #[test]
    fn shard_order_scoped_to_shard_files() {
        let src = "fn merge() { let _ = items.iter().reduce(f); }";
        assert_eq!(
            diags(src, &ctx_file("simkit", FileKind::Lib, "shard.rs")),
            vec![("shard-visible-order".to_string(), 1)]
        );
        // Same code outside a shard-named module: no hit.
        assert!(diags(src, &ctx_file("simkit", FileKind::Lib, "sim.rs")).is_empty());
        // Test code in a shard module is exempt (mechanism, not contract).
        assert!(diags(src, &ctx_file("simkit", FileKind::Test, "shard.rs")).is_empty());
        // Rayon-style parallel iteration in a shard module is flagged.
        let par = "fn merge() { shards.par_iter().for_each(step); }";
        assert_eq!(
            diags(par, &ctx_file("simkit", FileKind::Lib, "shard_merge.rs")),
            vec![("shard-visible-order".to_string(), 1)]
        );
        // HashMap in a shard module fires both the generic unordered-iter
        // rule and the sharper shard rule.
        let map = "use std::collections::HashMap;";
        let d = diags(map, &ctx_file("simkit", FileKind::Lib, "shard.rs"));
        assert_eq!(d.len(), 2);
    }
}
