//! `lintkit` — workspace-aware determinism & robustness analyses for
//! the Contory workspace.
//!
//! PR 1 made failover simulation deterministic and seed-reproducible;
//! PR 2 added a per-file token linter to *enforce* the invariants it
//! relies on. That linter trusted a hand-maintained `SIM_VISIBLE` crate
//! list — a new crate, a re-exported helper or a violation three calls
//! below an entry point silently escaped the gate. v2 replaces the list
//! with computed reachability:
//!
//! - [`parser`] — a dependency-free, item-level Rust parser on the
//!   existing lexer (`mod`/`use`/`fn`/`impl`/`trait` items with token
//!   spans, call-site and path-reference extraction);
//! - [`graph`] — the workspace symbol graph (crate → module → item)
//!   with call/reference edges resolved through `use` declarations,
//!   re-exports and the Cargo dependency cones;
//! - [`reach`] — sim / shard / hot taints propagated from structural
//!   entry points (`Sim`/`ShardSim`/`EventCtx` impls, `Scenario`
//!   impls, everything the testbed schedules, core's public surface);
//! - [`rules`] — the catalog, re-based on per-token taint flags
//!   ([`TokFlags`]), including the graph-powered passes
//!   `panic-reachable`, `float-order` and `shard-shared-state`;
//! - [`ratchet`] + [`jsonio`] — the machine-readable report
//!   (`contory-lint/1`) and the checked-in ratchet baseline
//!   (`results/lint_baseline.json`): legacy findings stay pinned, any
//!   *new* finding fails tier-1.
//!
//! Run the full analysis:
//!
//! ```text
//! cargo run -p lintkit -- --workspace --baseline results/lint_baseline.json
//! ```
//!
//! or over individual files (`cargo run -p lintkit -- path/to/file.rs`;
//! files with a `lint-fixture:` directive are linted standalone). It
//! also runs as a tier-1 test (`crates/lintkit/tests/workspace_clean.rs`)
//! and as the `==> lintkit gate` step of `scripts/verify.sh`.
//!
//! ## Suppressing a diagnostic
//!
//! Append a pragma to the offending line (or place it alone on the line
//! above) naming the rule(s) to silence — always with a justification:
//!
//! ```text
//! let t0 = Instant::now(); // lint:allow(wallclock-ban) bench harness timing
//! ```
//!
//! Pragma hygiene is itself checked: a pragma that names an unknown
//! rule or that suppresses nothing under the current reachability is an
//! `unused-pragma` finding (never pinnable in the baseline).
//!
//! ## Fixture files
//!
//! A file whose first lines contain a directive such as
//!
//! ```text
//! // lint-fixture: crate=core kind=lib reach=sim,hot
//! ```
//!
//! is linted *as if* it lived in that crate/target, with the given
//! taint flags forced onto every `fn` in the file (single-file mode has
//! no workspace graph to compute them from). The workspace walk skips
//! `fixtures/` directories.

#![deny(warnings)]
#![deny(missing_docs)]

pub mod graph;
pub mod jsonio;
pub mod lexer;
pub mod parser;
pub mod ratchet;
pub mod reach;
pub mod rules;

use lexer::Lexed;
use rules::{cfg_test_regions, find_matches, Rule, RuleCtx, RULES};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// What kind of compilation target a file belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/**` excluding `src/bin`).
    Lib,
    /// Binary target (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Integration test (`tests/**`) or `#[cfg(test)]` region.
    Test,
    /// Bench target (`benches/**`).
    Bench,
    /// Example (`examples/**`).
    Example,
}

impl fmt::Display for FileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FileKind::Lib => "lib",
            FileKind::Bin => "bin",
            FileKind::Test => "test",
            FileKind::Bench => "bench",
            FileKind::Example => "example",
        };
        f.write_str(s)
    }
}

impl FileKind {
    fn parse(s: &str) -> Option<FileKind> {
        Some(match s {
            "lib" => FileKind::Lib,
            "bin" => FileKind::Bin,
            "test" => FileKind::Test,
            "bench" => FileKind::Bench,
            "example" => FileKind::Example,
            _ => return None,
        })
    }
}

/// Lint context of one file: which crate it belongs to (short name,
/// e.g. `core` for `crates/core`; `None` for the umbrella crate) and
/// what kind of target it is.
#[derive(Clone, Debug)]
pub struct FileCtx {
    /// Short crate name (the directory under `crates/`), if any.
    pub krate: Option<String>,
    /// Target kind.
    pub kind: FileKind,
    /// Bare file name (e.g. `shard.rs`).
    pub file: String,
}

/// Per-token taint flags, computed by [`reach`] over the symbol graph
/// (or forced by a fixture directive in single-file mode). Tokens
/// inside a `fn` body carry the fn's flags; item-level tokens carry the
/// file-level flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TokFlags {
    /// Reachable from a simulation entry point.
    pub sim: bool,
    /// Reachable from shard-parallel stepping.
    pub shard: bool,
    /// Reachable from a provisioning hot path.
    pub hot: bool,
    /// The enclosing fn handles `f32`/`f64` (signature or body).
    pub float_fn: bool,
}

/// Token-span → taint-flag map for one file.
#[derive(Clone, Debug, Default)]
pub struct FileSpans {
    /// `(start, end, flags)` token ranges, one per `fn` item
    /// (inclusive of the signature).
    pub spans: Vec<(usize, usize, TokFlags)>,
    /// Flags applied to tokens outside any `fn` span (struct fields,
    /// use declarations, consts).
    pub file: TokFlags,
}

impl FileSpans {
    /// Flags in effect at token index `idx`.
    pub fn flags_at(&self, idx: usize) -> TokFlags {
        for &(start, end, flags) in &self.spans {
            if idx >= start && idx <= end {
                return flags;
            }
        }
        self.file
    }

    /// True when token `idx` falls inside a `fn` item span.
    pub fn in_fn(&self, idx: usize) -> bool {
        self.spans
            .iter()
            .any(|&(start, end, _)| idx >= start && idx <= end)
    }
}

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: &'static str,
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.path.display(),
            self.line,
            self.col,
            self.rule,
            self.msg
        )
    }
}

/// Summary of one lint run.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Violations found (pragma-suppressed hits excluded).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of hits suppressed by `lint:allow` pragmas.
    pub allowed: usize,
    /// Number of files scanned.
    pub files: usize,
}

impl RunReport {
    /// True if no violation survived.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    fn merge(&mut self, other: RunReport) {
        self.diagnostics.extend(other.diagnostics);
        self.allowed += other.allowed;
        self.files += other.files;
    }
}

/// Classifies a file by its path relative to the workspace root.
pub fn classify(rel_path: &Path) -> FileCtx {
    let comps: Vec<String> = rel_path
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let krate = match comps.first().map(String::as_str) {
        Some("crates") => comps.get(1).cloned(),
        _ => None,
    };
    let has = |seg: &str| comps.iter().any(|c| c == seg);
    let file = comps.last().map(String::as_str).unwrap_or("");
    let kind = if has("tests") {
        FileKind::Test
    } else if has("benches") {
        FileKind::Bench
    } else if has("examples") {
        FileKind::Example
    } else if has("bin") || file == "main.rs" || file == "build.rs" {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    FileCtx {
        krate,
        kind,
        file: file.to_string(),
    }
}

/// Parses a `// lint-fixture: crate=<name> kind=<kind> [file=<name>]
/// [reach=<sim,shard,hot>]` directive from the head of a source file.
/// A missing `file=` field leaves `file` empty; [`lint_file`] then
/// falls back to the real file name.
pub fn fixture_directive(src: &str) -> Option<FileCtx> {
    for line in src.lines().take(5) {
        let Some(idx) = line.find("lint-fixture:") else {
            continue;
        };
        let mut krate = None;
        let mut kind = FileKind::Lib;
        let mut file = String::new();
        for field in line[idx + "lint-fixture:".len()..].split_whitespace() {
            if let Some(v) = field.strip_prefix("crate=") {
                krate = Some(v.to_string());
            } else if let Some(v) = field.strip_prefix("kind=") {
                kind = FileKind::parse(v)?;
            } else if let Some(v) = field.strip_prefix("file=") {
                file = v.to_string();
            }
        }
        return Some(FileCtx { krate, kind, file });
    }
    None
}

/// Parses the `reach=` field of a `lint-fixture:` directive into forced
/// taint flags for single-file mode. `reach=sim,hot` marks every fn in
/// the fixture sim- and hot-reachable. Returns `None` when the
/// directive (or the field) is absent.
pub fn fixture_reach(src: &str) -> Option<TokFlags> {
    for line in src.lines().take(5) {
        let Some(idx) = line.find("lint-fixture:") else {
            continue;
        };
        for field in line[idx + "lint-fixture:".len()..].split_whitespace() {
            if let Some(v) = field.strip_prefix("reach=") {
                let mut flags = TokFlags::default();
                for part in v.split(',') {
                    match part {
                        "sim" => flags.sim = true,
                        "shard" => flags.shard = true,
                        "hot" => flags.hot = true,
                        _ => {}
                    }
                }
                return Some(flags);
            }
        }
        return None;
    }
    None
}

/// Builds fn spans for single-file mode: every fn gets the forced
/// `base` flags, with per-fn `float_fn` evidence computed from its own
/// tokens.
fn single_file_spans(lexed: &Lexed, base: TokFlags) -> FileSpans {
    let parsed = parser::parse(&lexed.tokens);
    let mut spans = Vec::new();
    for f in &parsed.fns {
        let end = f.body.map(|(_, close)| close).unwrap_or(f.sig_start);
        let end = end.min(lexed.tokens.len().saturating_sub(1));
        let mut flags = base;
        flags.float_fn = lexed.tokens[f.sig_start.min(end)..=end]
            .iter()
            .any(|t| t.is_ident("f32") || t.is_ident("f64"));
        spans.push((f.sig_start, end, flags));
    }
    FileSpans { spans, file: base }
}

/// The core matcher: lints one lexed file under explicit context and
/// taint spans, including the `unused-pragma` hygiene pass.
pub fn lint_tokens(path: &Path, lexed: &Lexed, ctx: &FileCtx, spans: &FileSpans) -> RunReport {
    let tokens = &lexed.tokens;
    let test_regions = cfg_test_regions(tokens);
    let in_test_region = |tok_idx: usize| {
        test_regions
            .iter()
            .any(|&(start, end)| tok_idx >= start && tok_idx <= end)
    };

    // line → [(allowed rule, pragma index)].
    let mut allow: BTreeMap<u32, Vec<(String, usize)>> = BTreeMap::new();
    for (pi, pragma) in lexed.pragmas.iter().enumerate() {
        let line = if pragma.standalone {
            pragma.line + 1
        } else {
            pragma.line
        };
        for rule in &pragma.rules {
            allow.entry(line).or_default().push((rule.clone(), pi));
        }
    }
    // (pragma index, rule) pairs that suppressed at least one hit.
    let mut used: BTreeSet<(usize, String)> = BTreeSet::new();

    let mut report = RunReport {
        files: 1,
        ..RunReport::default()
    };
    for rule in RULES {
        for needle in rule.needles {
            for tok_idx in find_matches(tokens, needle) {
                if needle.fn_body_only && !spans.in_fn(tok_idx) {
                    continue;
                }
                let kind = if in_test_region(tok_idx) {
                    FileKind::Test
                } else {
                    ctx.kind
                };
                let rctx = RuleCtx {
                    file: ctx,
                    kind,
                    flags: spans.flags_at(tok_idx),
                };
                if !(rule.applies)(&rctx) {
                    continue;
                }
                let tok = &tokens[tok_idx];
                let mut suppressed = false;
                if let Some(entries) = allow.get(&tok.line) {
                    for (name, pi) in entries {
                        if name == rule.name {
                            used.insert((*pi, name.clone()));
                            suppressed = true;
                        }
                    }
                }
                if suppressed {
                    report.allowed += 1;
                } else {
                    report.diagnostics.push(Diagnostic {
                        rule: rule.name,
                        path: path.to_path_buf(),
                        line: tok.line,
                        col: tok.col,
                        msg: needle.msg.to_string(),
                    });
                }
            }
        }
    }

    // Pragma hygiene: every pragma entry must name a known rule and
    // have suppressed at least one hit. A pragma line that includes
    // `unused-pragma` in its own rule list opts out (no fixpoint).
    for (pi, pragma) in lexed.pragmas.iter().enumerate() {
        let exempt = lexed
            .pragmas
            .iter()
            .filter(|p| p.line == pragma.line)
            .any(|p| p.rules.iter().any(|r| r == "unused-pragma"));
        for rule in &pragma.rules {
            if rule == "unused-pragma" {
                continue;
            }
            let msg = if rules::rule_by_name(rule).is_none() {
                Some(format!(
                    "pragma names unknown rule `{rule}` (see `--list-rules`)"
                ))
            } else if !used.contains(&(pi, rule.clone())) {
                Some(format!(
                    "stale pragma: `lint:allow({rule})` suppresses no diagnostic under \
                     the computed reachability — delete it"
                ))
            } else {
                None
            };
            if let Some(msg) = msg {
                if exempt {
                    report.allowed += 1;
                } else {
                    report.diagnostics.push(Diagnostic {
                        rule: "unused-pragma",
                        path: path.to_path_buf(),
                        line: pragma.line,
                        col: pragma.col,
                        msg,
                    });
                }
            }
        }
    }

    report.diagnostics.sort_by_key(|d| (d.line, d.col, d.rule));
    report
}

/// Lints one source string in **single-file mode**: taint flags come
/// from the `reach=` fixture field (default: none), not from the
/// workspace graph. Use [`Analysis`] for graph-backed linting.
pub fn lint_source(path: &Path, src: &str, ctx: &FileCtx) -> RunReport {
    let lexed = lexer::lex(src);
    let base = fixture_reach(src).unwrap_or_default();
    let spans = single_file_spans(&lexed, base);
    lint_tokens(path, &lexed, ctx, &spans)
}

/// Lints one file from disk in single-file mode. A `lint-fixture:`
/// directive overrides the path-derived context.
pub fn lint_file(root: &Path, path: &Path) -> std::io::Result<RunReport> {
    let src = std::fs::read_to_string(path)?;
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut ctx = fixture_directive(&src).unwrap_or_else(|| classify(rel));
    if ctx.file.is_empty() {
        ctx.file = rel
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
    }
    Ok(lint_source(rel, &src, &ctx))
}

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results"];

/// Collects every workspace `.rs` file under `root`, in sorted
/// (deterministic) order, skipping build output and lint fixtures.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            let name = entry
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if entry.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(entry);
                }
            } else if name.ends_with(".rs") {
                files.push(entry);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// The full workspace analysis: symbol graph plus computed taints,
/// ready to lint any workspace file with real reachability flags.
#[derive(Debug)]
pub struct Analysis {
    /// The symbol graph.
    pub ws: graph::Workspace,
    /// Computed taints over [`Analysis::ws`].
    pub reach: reach::Reach,
}

impl Analysis {
    /// Scans, parses and taints the workspace rooted at `root`.
    pub fn analyze(root: &Path) -> std::io::Result<Analysis> {
        let ws = graph::Workspace::analyze(root)?;
        let reach = reach::compute(&ws);
        Ok(Analysis { ws, reach })
    }

    /// The computed sim-visible crate set (successor of the retired
    /// hand-maintained `SIM_VISIBLE` list).
    pub fn sim_visible(&self) -> &BTreeSet<String> {
        &self.reach.sim_visible
    }

    /// Taint spans for file index `fi`: each fn's body span carries its
    /// computed taint; item-level tokens carry file-level flags (sim if
    /// the crate has sim-tainted code, shard if the *file* does).
    fn spans_for_file(&self, fi: usize) -> FileSpans {
        let file = &self.ws.files[fi];
        let mut spans = Vec::new();
        let mut file_shard = false;
        for &id in &file.fn_ids {
            let node = &self.ws.fns[id as usize];
            let taint = self.reach.taint[id as usize];
            file_shard |= taint.shard;
            let end = node.body.map(|(_, close)| close).unwrap_or(node.sig_start);
            spans.push((
                node.sig_start,
                end,
                TokFlags {
                    sim: taint.sim,
                    shard: taint.shard,
                    hot: taint.hot,
                    float_fn: node.float_fn,
                },
            ));
        }
        FileSpans {
            spans,
            file: TokFlags {
                sim: self.reach.sim_visible.contains(&file.krate),
                shard: file_shard,
                hot: false,
                float_fn: false,
            },
        }
    }

    /// Lints every workspace file with computed taint flags.
    pub fn lint_all(&self) -> RunReport {
        let mut report = RunReport::default();
        for fi in 0..self.ws.files.len() {
            report.merge(self.lint_index(fi));
        }
        report
            .diagnostics
            .sort_by_key(|d| (d.path.clone(), d.line, d.col));
        report
    }

    fn lint_index(&self, fi: usize) -> RunReport {
        let file = &self.ws.files[fi];
        let spans = self.spans_for_file(fi);
        lint_tokens(&file.rel, &file.lexed, &file.ctx, &spans)
    }

    /// Lints one file (given absolute or workspace-relative) with
    /// computed flags. `None` if the path is not a scanned file.
    pub fn lint_path(&self, path: &Path) -> Option<RunReport> {
        let fi = self
            .ws
            .files
            .iter()
            .position(|f| f.path == path || f.rel == path)?;
        Some(self.lint_index(fi))
    }
}

/// Lints the whole workspace rooted at `root` (graph-backed).
pub fn lint_workspace(root: &Path) -> std::io::Result<RunReport> {
    Ok(Analysis::analyze(root)?.lint_all())
}

/// Locates the workspace root: an ancestor of `start` (or of this
/// crate's manifest dir) containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut candidates: Vec<PathBuf> = vec![start.to_path_buf()];
    candidates.push(Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf());
    for base in candidates {
        let mut dir = Some(base.as_path());
        while let Some(d) = dir {
            if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
                return Some(d.to_path_buf());
            }
            dir = d.parent();
        }
    }
    None
}

/// The rule catalog (re-exported for the CLI and docs).
pub fn catalog() -> &'static [Rule] {
    RULES
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(krate: &str, kind: FileKind) -> FileCtx {
        FileCtx {
            krate: Some(krate.to_string()),
            kind,
            file: "x.rs".to_string(),
        }
    }

    fn diags(src: &str, c: &FileCtx) -> Vec<(String, u32)> {
        lint_source(Path::new("x.rs"), src, c)
            .diagnostics
            .into_iter()
            .map(|d| (d.rule.to_string(), d.line))
            .collect()
    }

    /// Prefixes a `reach=` directive matching the given flags.
    fn with_reach(reach: &str, src: &str) -> String {
        format!("// lint-fixture: crate=core kind=lib reach={reach}\n{src}")
    }

    #[test]
    fn wallclock_fires_outside_crit_only() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(diags(src, &ctx("radio", FileKind::Lib)).len(), 1);
        assert_eq!(diags(src, &ctx("crit", FileKind::Lib)).len(), 0);
    }

    #[test]
    fn unordered_iter_scoped_to_sim_taint() {
        let src = with_reach("sim", "use std::collections::HashMap;");
        assert_eq!(diags(&src, &ctx("core", FileKind::Lib)).len(), 1);
        assert_eq!(diags(&src, &ctx("core", FileKind::Test)).len(), 0);
        // No sim taint → no finding.
        let plain = "use std::collections::HashMap;";
        assert_eq!(diags(plain, &ctx("core", FileKind::Lib)).len(), 0);
    }

    #[test]
    fn panic_reachable_scoped_to_hot_taint() {
        let src = with_reach("hot", "fn lib(v: Option<u32>) -> u32 { v.unwrap() }");
        assert_eq!(
            diags(&src, &ctx("core", FileKind::Lib)),
            vec![("panic-reachable".to_string(), 2)]
        );
        // Same code without the hot taint is fine.
        let cold = "fn lib(v: Option<u32>) -> u32 { v.unwrap() }";
        assert!(diags(cold, &ctx("core", FileKind::Lib)).is_empty());
    }

    #[test]
    fn panic_reachable_exempt_in_cfg_test_mod() {
        let src = with_reach(
            "hot",
            "fn lib(v: Option<u32>) -> u32 { v.unwrap() }\n\
             #[cfg(test)]\nmod tests {\n  fn t(v: Option<u32>) { v.unwrap(); }\n}\n",
        );
        let d = diags(&src, &ctx("core", FileKind::Lib));
        assert_eq!(d, vec![("panic-reachable".to_string(), 2)]);
    }

    #[test]
    fn indexing_guard_discriminates() {
        // Indexing expressions fire…
        let src = with_reach("hot", "fn f(v: &[u32], i: usize) -> u32 { v[i] }");
        assert_eq!(
            diags(&src, &ctx("core", FileKind::Lib)),
            vec![("panic-reachable".to_string(), 2)]
        );
        // …array types, attributes and literals do not.
        let benign = with_reach(
            "hot",
            "#[derive(Debug)]\nstruct S { buf: [u8; 4] }\n\
             fn f() -> [u32; 2] { let v = [1, 2]; v }",
        );
        assert!(diags(&benign, &ctx("core", FileKind::Lib)).is_empty());
        // Item-level `[` (outside any fn) never fires.
        let item = with_reach("hot", "const T: [u8; 2] = [0, 1];");
        assert!(diags(&item, &ctx("core", FileKind::Lib)).is_empty());
    }

    #[test]
    fn float_order_needs_sim_and_float_evidence() {
        let float_fold = "fn avg(xs: &[f64]) -> f64 { xs.iter().fold(0.0, |a, b| a + b) }";
        let src = with_reach("sim", float_fold);
        assert_eq!(
            diags(&src, &ctx("core", FileKind::Lib)),
            vec![("float-order".to_string(), 2)]
        );
        // Integer fold in the same position: no float evidence, no hit.
        let int_fold = with_reach("sim", "fn sum(xs: &[u64]) -> u64 { xs.iter().fold(0, |a, b| a + b) }");
        assert!(diags(&int_fold, &ctx("core", FileKind::Lib)).is_empty());
        // Float fold outside the sim taint: no hit.
        let cold = format!("// lint-fixture: crate=core kind=lib\n{float_fold}");
        assert!(diags(&cold, &ctx("core", FileKind::Lib)).is_empty());
    }

    #[test]
    fn shard_rules_scoped_to_shard_taint() {
        let src = with_reach("shard", "fn merge(items: &[u32]) { let _ = items.iter().reduce(f); }");
        assert_eq!(
            diags(&src, &ctx("simkit", FileKind::Lib)),
            vec![("shard-visible-order".to_string(), 2)]
        );
        // Same code without shard taint: no hit.
        let cold = "fn merge(items: &[u32]) { let _ = items.iter().reduce(f); }";
        assert!(diags(cold, &ctx("simkit", FileKind::Lib)).is_empty());
        // Shared state in a shard path.
        let state = with_reach("shard", "fn f(m: &Mutex<u32>) { m.lock(); }");
        assert_eq!(
            diags(&state, &ctx("simkit", FileKind::Lib)),
            vec![("shard-shared-state".to_string(), 2)]
        );
        let atomic = with_reach("shard", "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }");
        assert_eq!(
            diags(&atomic, &ctx("simkit", FileKind::Lib)),
            vec![("shard-shared-state".to_string(), 2)]
        );
    }

    #[test]
    fn pragma_suppresses_same_line_and_next_line() {
        let body = "fn f() { panic!(); }";
        let same = with_reach("hot", &format!("{body} // lint:allow(panic-reachable) invariant"));
        assert!(diags(&same, &ctx("core", FileKind::Lib)).is_empty());
        let next = with_reach(
            "hot",
            &format!("// lint:allow(panic-reachable) invariant\n{body}"),
        );
        assert!(diags(&next, &ctx("core", FileKind::Lib)).is_empty());
        // A pragma for the wrong rule suppresses nothing — and is
        // itself flagged as stale.
        let wrong = with_reach("hot", &format!("{body} // lint:allow(no-exit)"));
        let d = diags(&wrong, &ctx("core", FileKind::Lib));
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|(r, _)| r == "panic-reachable"));
        assert!(d.iter().any(|(r, _)| r == "unused-pragma"));
    }

    #[test]
    fn allowed_hits_are_counted() {
        let src = with_reach("hot", "fn f() { panic!(); } // lint:allow(panic-reachable)");
        let report = lint_source(Path::new("x.rs"), &src, &ctx("core", FileKind::Lib));
        assert!(report.is_clean());
        assert_eq!(report.allowed, 1);
    }

    #[test]
    fn unused_pragma_flags_stale_and_unknown() {
        // Stale: rule exists but nothing to suppress.
        let stale = "fn f() {} // lint:allow(wallclock-ban)";
        let d = diags(stale, &ctx("core", FileKind::Lib));
        assert_eq!(d, vec![("unused-pragma".to_string(), 1)]);
        // Unknown rule name (e.g. the retired no-unwrap-in-core).
        let unknown = "fn f() { v.unwrap(); } // lint:allow(no-unwrap-in-core)";
        let d = diags(unknown, &ctx("core", FileKind::Lib));
        assert_eq!(d, vec![("unused-pragma".to_string(), 1)]);
        // Opting out via unused-pragma on the same pragma.
        let opt_out = "fn f() {} // lint:allow(wallclock-ban, unused-pragma) historical pin";
        assert!(diags(opt_out, &ctx("core", FileKind::Lib)).is_empty());
        // A live pragma is not flagged.
        let live = with_reach("hot", "fn f() { panic!(); } // lint:allow(panic-reachable)");
        assert!(diags(&live, &ctx("core", FileKind::Lib)).is_empty());
    }

    #[test]
    fn exit_exempt_in_bins_and_examples() {
        let src = "fn f() { std::process::exit(1); }";
        assert_eq!(diags(src, &ctx("core", FileKind::Lib)).len(), 1);
        assert_eq!(diags(src, &ctx("core", FileKind::Test)).len(), 1);
        assert_eq!(diags(src, &ctx("bench", FileKind::Bin)).len(), 0);
        assert_eq!(diags(src, &ctx("bench", FileKind::Example)).len(), 0);
    }

    #[test]
    fn print_exempt_outside_lib() {
        let src = "fn f() { println!(\"hi\"); }";
        assert_eq!(diags(src, &ctx("core", FileKind::Lib)).len(), 1);
        for kind in [FileKind::Bin, FileKind::Test, FileKind::Bench, FileKind::Example] {
            assert_eq!(diags(src, &ctx("core", kind)).len(), 0, "{kind}");
        }
    }

    #[test]
    fn ambient_rng_fires_everywhere() {
        let src = "use std::collections::hash_map::RandomState;";
        assert_eq!(diags(src, &ctx("bench", FileKind::Bin)).len(), 1);
        assert_eq!(diags(src, &ctx("simkit", FileKind::Lib)).len(), 1);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = with_reach(
            "hot",
            "fn f() { v.unwrap_or(0); v.unwrap_or_else(|| 0); v.unwrap_or_default(); }",
        );
        assert!(diags(&src, &ctx("core", FileKind::Lib)).is_empty());
    }

    #[test]
    fn doc_comment_examples_do_not_fire() {
        let src = with_reach(
            "hot",
            "/// let v = x.unwrap();\n/// let t = Instant::now();\nfn f() {}",
        );
        assert!(diags(&src, &ctx("core", FileKind::Lib)).is_empty());
    }

    #[test]
    fn classify_paths() {
        let c = classify(Path::new("crates/core/src/policy.rs"));
        assert_eq!(c.krate.as_deref(), Some("core"));
        assert_eq!(c.kind, FileKind::Lib);
        assert_eq!(c.file, "policy.rs");
        let c = classify(Path::new("crates/bench/src/bin/fig5_failover.rs"));
        assert_eq!(c.kind, FileKind::Bin);
        let c = classify(Path::new("tests/full_stack.rs"));
        assert_eq!(c.krate, None);
        assert_eq!(c.kind, FileKind::Test);
        let c = classify(Path::new("crates/fuego/tests/end_to_end.rs"));
        assert_eq!(c.kind, FileKind::Test);
        let c = classify(Path::new("examples/quickstart.rs"));
        assert_eq!(c.kind, FileKind::Example);
        let c = classify(Path::new("crates/bench/benches/merging.rs"));
        assert_eq!(c.kind, FileKind::Bench);
    }

    #[test]
    fn fixture_directive_parses() {
        let src = "// lint-fixture: crate=core kind=lib\nfn f() {}";
        let c = fixture_directive(src).expect("directive");
        assert_eq!(c.krate.as_deref(), Some("core"));
        assert_eq!(c.kind, FileKind::Lib);
        assert_eq!(c.file, "");
        let src = "// lint-fixture: crate=simkit kind=lib file=shard.rs reach=shard,sim\nfn f() {}";
        let c = fixture_directive(src).expect("directive");
        assert_eq!(c.file, "shard.rs");
        let r = fixture_reach(src).expect("reach");
        assert!(r.sim && r.shard && !r.hot);
        assert!(fixture_directive("fn f() {}").is_none());
        assert!(fixture_reach("// lint-fixture: crate=core kind=lib\nfn f() {}").is_none());
    }

    #[test]
    fn file_spans_select_innermost_then_file() {
        let spans = FileSpans {
            spans: vec![(
                5,
                10,
                TokFlags {
                    sim: true,
                    ..TokFlags::default()
                },
            )],
            file: TokFlags {
                hot: true,
                ..TokFlags::default()
            },
        };
        assert!(spans.flags_at(7).sim);
        assert!(!spans.flags_at(7).hot);
        assert!(spans.flags_at(2).hot);
        assert!(spans.in_fn(5) && spans.in_fn(10) && !spans.in_fn(11));
    }
}
