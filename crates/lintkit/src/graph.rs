//! The workspace symbol graph: crate → module → item, with call and
//! reference edges.
//!
//! Built from the item-level parse ([`crate::parser`]) of every
//! *library* file in the workspace plus a hand-rolled scan of the
//! Cargo manifests (no `toml` dependency — the linter stays
//! dependency-free). The graph gives the reachability engine
//! ([`crate::reach`]) three things:
//!
//! - a node per `fn` item, keyed by crate / inline-module path / name /
//!   `impl` self type;
//! - per-crate dependency **cones** from the Cargo manifests: the
//!   *down* cone (the crate plus its transitive dependencies) and the
//!   *up* cone (the crate plus its transitive dependents); and
//! - resolved edges: each body reference is mapped to candidate
//!   definition nodes through the file's `use` declarations (including
//!   `pub use` re-exports and `as` renames), `crate`/`self`/`super`/
//!   `Self` prefixes, and glob imports.
//!
//! Resolution is deliberately an **over-approximation** with two
//! properties chosen for taint polarity (missing an edge hides a real
//! violation; a spurious edge at worst widens the patrolled set):
//!
//! - Within a crate, paths match by *suffix* (type name + item name),
//!   not by exact module chain — which is also what makes re-exported
//!   items resolve without modelling every `pub use` hop.
//! - Method calls (`x.step()`) resolve to every method of that name in
//!   the caller's **bidirectional cone** (down ∪ up). The up-side is
//!   what models dyn-trait injection: `core` calls `.provide()` on a
//!   trait object whose impl lives in `testbed` (a crate that *depends
//!   on* core), so candidates must include dependents.

use crate::lexer::{self, Lexed, TokKind};
use crate::parser::{self, FnItem, ParsedFile, Ref, UseDecl};
use crate::{classify, FileCtx, FileKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One workspace crate (or the root umbrella package).
#[derive(Clone, Debug, Default)]
pub struct CrateInfo {
    /// Canonical key: directory name under `crates/`, or the package
    /// name for the workspace-root package.
    pub key: String,
    /// Cargo package name.
    pub package: String,
    /// Keys of direct dependencies (dev-dependencies excluded: library
    /// code cannot call into them).
    pub deps: BTreeSet<String>,
    /// In-code extern crate name (`-` → `_`, honouring manifest
    /// renames) → dependency key. E.g. `contory` → `core`,
    /// `proptest` → `propcheck`.
    pub code_names: BTreeMap<String, String>,
}

/// One scanned workspace file.
#[derive(Debug)]
pub struct FileInfo {
    /// Absolute path.
    pub path: PathBuf,
    /// Path relative to the workspace root.
    pub rel: PathBuf,
    /// Crate key (root-package files map to the root key).
    pub krate: String,
    /// File-level module path within the crate (`src/query/parser.rs`
    /// → `["query", "parser"]`).
    pub module: Vec<String>,
    /// Lint classification (crate short name, target kind, file name).
    pub ctx: FileCtx,
    /// Lexed token stream (cached — linting reuses it).
    pub lexed: Lexed,
    /// Item-level parse; `None` for non-library targets, which carry
    /// no graph nodes.
    pub parsed: Option<ParsedFile>,
    /// Ids of the `fn` nodes defined in this file.
    pub fn_ids: Vec<u32>,
}

/// One `fn` node of the symbol graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`Workspace::files`].
    pub file: u32,
    /// Crate key.
    pub krate: String,
    /// Full inline-module path (file module ++ inline `mod`s).
    pub module: Vec<String>,
    /// Function name.
    pub name: String,
    /// `impl`/`trait` self type, if any.
    pub self_type: Option<String>,
    /// Trait name for `impl Tr for Ty` methods.
    pub trait_impl: Option<String>,
    /// Visible outside its module.
    pub is_pub: bool,
    /// Token index of the `fn` keyword (in the file's token stream).
    pub sig_start: usize,
    /// Body token span `[open, close]`, if present.
    pub body: Option<(usize, usize)>,
    /// Extracted body references.
    pub refs: Vec<Ref>,
    /// Signature or body mentions `f32`/`f64` — evidence used by the
    /// `float-order` pass.
    pub float_fn: bool,
}

/// The analysed workspace.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Crates by key.
    pub crates: BTreeMap<String, CrateInfo>,
    /// Scanned files (sorted by path).
    pub files: Vec<FileInfo>,
    /// All `fn` nodes.
    pub fns: Vec<FnNode>,
    name_index: BTreeMap<String, Vec<u32>>,
    typed_index: BTreeMap<(String, String), Vec<u32>>,
    cone_down: BTreeMap<String, BTreeSet<String>>,
    cone_up: BTreeMap<String, BTreeSet<String>>,
}

// ---------------------------------------------------------------------------
// Cargo manifest scanning (hand-rolled, line-oriented)
// ---------------------------------------------------------------------------

/// Extracts `key = "value"` from a TOML-ish line, tolerating inline
/// tables. Returns the first quoted string after `field =` or
/// `field = {` … `path = "…"`.
fn quoted_after<'s>(line: &'s str, field: &str) -> Option<&'s str> {
    let idx = line.find(field)?;
    let rest = &line[idx + field.len()..];
    let start = rest.find('"')? + 1;
    let end = rest[start..].find('"')? + start;
    Some(&rest[start..end])
}

/// One dependency line: `alias = { workspace = true }`,
/// `alias = { path = "../x" }`, `alias.workspace = true`.
fn dep_line(line: &str) -> Option<(String, Option<String>)> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('[') {
        return None;
    }
    let eq = trimmed.find('=')?;
    let mut alias = trimmed[..eq].trim().to_string();
    if let Some(stripped) = alias.strip_suffix(".workspace") {
        alias = stripped.trim().to_string();
    }
    if alias.is_empty() || alias.contains(' ') || alias.contains('"') {
        return None;
    }
    let path = quoted_after(trimmed, "path").map(|p| {
        Path::new(p)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.to_string())
    });
    Some((alias, path))
}

/// Parses the root manifest's `[workspace.dependencies]` alias → crate
/// directory map.
fn workspace_dep_map(root_manifest: &str) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let mut in_section = false;
    for line in root_manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_section = t == "[workspace.dependencies]";
            continue;
        }
        if in_section {
            if let Some((alias, Some(dir))) = dep_line(t) {
                map.insert(alias, dir);
            }
        }
    }
    map
}

/// Parses one member manifest: package name plus direct dependency
/// aliases (with local path dirs where present).
fn member_manifest(src: &str) -> (String, Vec<(String, Option<String>)>) {
    let mut package = String::new();
    let mut deps = Vec::new();
    let mut section = String::new();
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            section = t.to_string();
            continue;
        }
        match section.as_str() {
            "[package]" => {
                if package.is_empty() && t.starts_with("name") {
                    if let Some(v) = quoted_after(t, "name") {
                        package = v.to_string();
                    }
                }
            }
            "[dependencies]" => {
                if let Some(d) = dep_line(t) {
                    deps.push(d);
                }
            }
            _ => {}
        }
    }
    (package, deps)
}

// ---------------------------------------------------------------------------
// Workspace construction
// ---------------------------------------------------------------------------

fn read(path: &Path) -> std::io::Result<String> {
    std::fs::read_to_string(path)
}

/// File-level module path: `src/lib.rs` → `[]`, `src/a.rs` → `[a]`,
/// `src/a/mod.rs` → `[a]`, `src/a/b.rs` → `[a, b]`.
fn file_module(rel_within_crate: &Path) -> Vec<String> {
    let mut comps: Vec<String> = rel_within_crate
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    if comps.first().map(String::as_str) == Some("src") {
        comps.remove(0);
    }
    if let Some(last) = comps.last_mut() {
        if let Some(stem) = last.strip_suffix(".rs") {
            *last = stem.to_string();
        }
    }
    match comps.last().map(String::as_str) {
        Some("lib") | Some("mod") | Some("main") => {
            comps.pop();
        }
        _ => {}
    }
    comps
}

impl Workspace {
    /// Scans and parses the workspace rooted at `root`.
    pub fn analyze(root: &Path) -> std::io::Result<Workspace> {
        let mut ws = Workspace {
            root: root.to_path_buf(),
            ..Workspace::default()
        };
        ws.load_crates()?;
        ws.load_files()?;
        ws.build_indexes();
        ws.build_cones();
        Ok(ws)
    }

    fn load_crates(&mut self) -> std::io::Result<()> {
        let root_manifest = read(&self.root.join("Cargo.toml")).unwrap_or_default();
        let ws_map = workspace_dep_map(&root_manifest);
        // Resolve one dependency list against the workspace map.
        let resolve_deps = |deps: Vec<(String, Option<String>)>| {
            let mut out: BTreeMap<String, String> = BTreeMap::new();
            for (alias, dir) in deps {
                let dir = dir.or_else(|| ws_map.get(&alias).cloned());
                if let Some(dir) = dir {
                    out.insert(alias.replace('-', "_"), dir);
                }
            }
            out
        };
        // Member crates.
        let crates_dir = self.root.join("crates");
        if crates_dir.is_dir() {
            let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect();
            dirs.sort();
            for dir in dirs {
                let Ok(manifest) = read(&dir.join("Cargo.toml")) else {
                    continue;
                };
                let key = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let (package, deps) = member_manifest(&manifest);
                let code_names = resolve_deps(deps);
                self.crates.insert(
                    key.clone(),
                    CrateInfo {
                        deps: code_names.values().cloned().collect(),
                        key: key.clone(),
                        package,
                        code_names,
                    },
                );
            }
        }
        // Root umbrella package (if it has both [package] and src/).
        if self.root.join("src").is_dir() {
            let (package, deps) = member_manifest(&root_manifest);
            if !package.is_empty() {
                let code_names = resolve_deps(deps);
                self.crates.insert(
                    package.clone(),
                    CrateInfo {
                        deps: code_names.values().cloned().collect(),
                        key: package.clone(),
                        package,
                        code_names,
                    },
                );
            }
        }
        Ok(())
    }

    /// Crate key for a workspace-relative path, if the file belongs to
    /// a known crate.
    fn crate_key_of(&self, rel: &Path) -> Option<(String, PathBuf)> {
        let comps: Vec<String> = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect();
        if comps.first().map(String::as_str) == Some("crates") {
            let key = comps.get(1)?.clone();
            if self.crates.contains_key(&key) {
                let inner: PathBuf = comps[2..].iter().collect();
                return Some((key, inner));
            }
            return None;
        }
        // Root package file?
        let root_key = self
            .crates
            .values()
            .find(|c| !self.root.join("crates").join(&c.key).is_dir())
            .map(|c| c.key.clone())?;
        Some((root_key, rel.to_path_buf()))
    }

    fn load_files(&mut self) -> std::io::Result<()> {
        for path in crate::workspace_files(&self.root)? {
            let rel = path
                .strip_prefix(&self.root)
                .unwrap_or(&path)
                .to_path_buf();
            let src = match read(&path) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let mut ctx = crate::fixture_directive(&src).unwrap_or_else(|| classify(&rel));
            if ctx.file.is_empty() {
                ctx.file = rel
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
            }
            let lexed = lexer::lex(&src);
            let (krate, inner) = match self.crate_key_of(&rel) {
                Some(k) => k,
                None => (String::new(), rel.clone()),
            };
            let in_graph = ctx.kind == FileKind::Lib && !krate.is_empty();
            let parsed = in_graph.then(|| parser::parse(&lexed.tokens));
            let module = file_module(&inner);
            self.files.push(FileInfo {
                path,
                rel,
                krate,
                module,
                ctx,
                lexed,
                parsed,
                fn_ids: Vec::new(),
            });
        }
        // Materialise fn nodes.
        for fi in 0..self.files.len() {
            let Some(parsed) = self.files[fi].parsed.take() else {
                continue;
            };
            let ParsedFile { fns, uses } = parsed;
            let mut ids = Vec::new();
            for f in &fns {
                let id = self.fns.len() as u32;
                let float_fn = self.fn_mentions_float(fi, f);
                let file = &self.files[fi];
                let mut module = file.module.clone();
                module.extend(f.module.iter().cloned());
                self.fns.push(FnNode {
                    file: fi as u32,
                    krate: file.krate.clone(),
                    module,
                    name: f.name.clone(),
                    self_type: f.self_type.clone(),
                    trait_impl: f.trait_impl.clone(),
                    is_pub: f.is_pub,
                    sig_start: f.sig_start,
                    body: f.body,
                    refs: f.refs.clone(),
                    float_fn,
                });
                ids.push(id);
            }
            self.files[fi].parsed = Some(ParsedFile { fns, uses });
            self.files[fi].fn_ids = ids;
        }
        Ok(())
    }

    fn fn_mentions_float(&self, fi: usize, f: &FnItem) -> bool {
        let toks = &self.files[fi].lexed.tokens;
        let end = f.body.map(|(_, close)| close + 1).unwrap_or(f.sig_start + 1);
        toks[f.sig_start.min(toks.len())..end.min(toks.len())]
            .iter()
            .any(|t| t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64"))
    }

    fn build_indexes(&mut self) {
        for (id, f) in self.fns.iter().enumerate() {
            self.name_index
                .entry(f.name.clone())
                .or_default()
                .push(id as u32);
            if let Some(ty) = &f.self_type {
                self.typed_index
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(id as u32);
            }
        }
    }

    fn build_cones(&mut self) {
        // down: key ∪ transitive deps
        for key in self.crates.keys() {
            let mut seen = BTreeSet::new();
            let mut stack = vec![key.clone()];
            while let Some(k) = stack.pop() {
                if !seen.insert(k.clone()) {
                    continue;
                }
                if let Some(info) = self.crates.get(&k) {
                    stack.extend(info.deps.iter().cloned());
                }
            }
            self.cone_down.insert(key.clone(), seen);
        }
        // up: inverse of down
        let mut up: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (k, cone) in &self.cone_down {
            for dep in cone {
                up.entry(dep.clone()).or_default().insert(k.clone());
            }
        }
        self.cone_up = up;
    }

    /// The crate plus its transitive dependencies.
    pub fn cone_down(&self, key: &str) -> Option<&BTreeSet<String>> {
        self.cone_down.get(key)
    }

    /// The crate plus its transitive dependents.
    pub fn cone_up(&self, key: &str) -> Option<&BTreeSet<String>> {
        self.cone_up.get(key)
    }

    /// Use-declaration alias map applicable to `node` (file-level
    /// declarations plus those of enclosing inline modules), and the
    /// glob import paths in the same scope.
    fn scope_of(&self, node: &FnNode) -> (BTreeMap<&str, &UseDecl>, Vec<&UseDecl>) {
        let mut map: BTreeMap<&str, &UseDecl> = BTreeMap::new();
        let mut globs = Vec::new();
        let file = &self.files[node.file as usize];
        let Some(parsed) = &file.parsed else {
            return (map, globs);
        };
        // The fn's inline-module path within the file:
        let inline = &node.module[file.module.len().min(node.module.len())..];
        for u in &parsed.uses {
            let applies = u.module.len() <= inline.len() && inline.starts_with(&u.module[..]);
            if !applies {
                continue;
            }
            if u.alias.is_empty() {
                globs.push(u);
            } else {
                map.insert(u.alias.as_str(), u);
            }
        }
        (map, globs)
    }

    /// Maps a leading path segment to a crate key from `from`'s view:
    /// its own code name, a dependency's code name, or a workspace
    /// package name.
    fn crate_for_segment(&self, from: &str, seg: &str) -> Option<String> {
        let info = self.crates.get(from)?;
        if let Some(dep) = info.code_names.get(seg) {
            return Some(dep.clone());
        }
        if info.package.replace('-', "_") == seg || info.key == seg {
            return Some(info.key.clone());
        }
        None
    }

    /// Resolves one reference from `node` to candidate fn ids.
    pub fn resolve(&self, node: &FnNode, r: &Ref) -> Vec<u32> {
        if r.method {
            return self.resolve_method(node, &r.segments[0]);
        }
        let (map, globs) = self.scope_of(node);
        let mut segs: Vec<String> = r.segments.clone();
        // Alias expansion (one hop is enough for idiomatic code).
        if let Some(u) = map.get(segs[0].as_str()) {
            let mut expanded = u.path.clone();
            expanded.extend(segs.drain(1..));
            segs = expanded;
        }
        // Normalise leading keywords.
        let mut target_crate: Option<String> = None;
        loop {
            match segs.first().map(String::as_str) {
                Some("crate") | Some("self") | Some("super") => {
                    segs.remove(0);
                    target_crate = Some(node.krate.clone());
                }
                Some("Self") => {
                    match &node.self_type {
                        Some(ty) => segs[0] = ty.clone(),
                        None => {
                            segs.remove(0);
                        }
                    }
                    break;
                }
                _ => break,
            }
            if segs.is_empty() {
                return Vec::new();
            }
        }
        if target_crate.is_none() && !segs.is_empty() {
            if matches!(segs[0].as_str(), "std" | "core" | "alloc") {
                return Vec::new(); // external — token needles patrol std types
            }
            if let Some(k) = self.crate_for_segment(&node.krate, &segs[0]) {
                target_crate = Some(k);
                segs.remove(0);
            }
        }
        if segs.is_empty() {
            return Vec::new();
        }
        let within: BTreeSet<String> = match &target_crate {
            Some(k) => std::iter::once(k.clone()).collect(),
            None => std::iter::once(node.krate.clone()).collect(),
        };
        let mut out = self.lookup_suffix(&segs, &within);
        if out.is_empty() && target_crate.is_none() {
            // Glob imports: `use simkit::*;` then `DetRng::from_seed(..)`.
            for g in globs {
                if let Some(k) = self.crate_for_segment(&node.krate, &g.path[0]) {
                    let within: BTreeSet<String> = std::iter::once(k).collect();
                    out.extend(self.lookup_suffix(&segs, &within));
                }
            }
        }
        out
    }

    /// Suffix lookup: `[.., Type, name]` → typed index, else last
    /// segment through the name index, crate-filtered.
    fn lookup_suffix(&self, segs: &[String], within: &BTreeSet<String>) -> Vec<u32> {
        let filter = |ids: Option<&Vec<u32>>| -> Vec<u32> {
            ids.map(|v| {
                v.iter()
                    .copied()
                    .filter(|&id| within.contains(&self.fns[id as usize].krate))
                    .collect()
            })
            .unwrap_or_default()
        };
        if segs.len() >= 2 {
            let ty = &segs[segs.len() - 2];
            let name = &segs[segs.len() - 1];
            if ty.chars().next().is_some_and(|c| c.is_uppercase()) {
                let hits = filter(self.typed_index.get(&(ty.clone(), name.clone())));
                if !hits.is_empty() {
                    return hits;
                }
            }
        }
        let name = segs.last().cloned().unwrap_or_default();
        filter(self.name_index.get(&name))
    }

    /// Method-call resolution: every method of that name in the
    /// caller's bidirectional cone.
    fn resolve_method(&self, node: &FnNode, name: &str) -> Vec<u32> {
        let empty = BTreeSet::new();
        let down = self.cone_down(&node.krate).unwrap_or(&empty);
        let up = self.cone_up(&node.krate).unwrap_or(&empty);
        self.name_index
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        let f = &self.fns[id as usize];
                        f.self_type.is_some()
                            && (down.contains(&f.krate) || up.contains(&f.krate))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All outgoing edges of one node.
    pub fn edges(&self, id: u32) -> Vec<u32> {
        let node = &self.fns[id as usize];
        let mut out = BTreeSet::new();
        for r in &node.refs {
            for t in self.resolve(node, r) {
                if t != id {
                    out.insert(t);
                }
            }
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_dep_lines() {
        assert_eq!(
            dep_line("simkit = { workspace = true }"),
            Some(("simkit".into(), None))
        );
        assert_eq!(
            dep_line("contory = { path = \"crates/core\" }"),
            Some(("contory".into(), Some("core".into())))
        );
        assert_eq!(
            dep_line("obskit.workspace = true"),
            Some(("obskit".into(), None))
        );
        assert_eq!(dep_line("# comment"), None);
        assert_eq!(dep_line("[dependencies]"), None);
    }

    #[test]
    fn workspace_map_parses_renames() {
        let map = workspace_dep_map(
            "[workspace.dependencies]\n\
             simkit = { path = \"crates/simkit\", package = \"contory-simkit\" }\n\
             contory = { path = \"crates/core\" }\n\
             proptest = { path = \"crates/propcheck\", package = \"contory-propcheck\" }\n\
             [package]\nname = \"x\"\n",
        );
        assert_eq!(map.get("contory").map(String::as_str), Some("core"));
        assert_eq!(map.get("proptest").map(String::as_str), Some("propcheck"));
        assert_eq!(map.get("simkit").map(String::as_str), Some("simkit"));
    }

    #[test]
    fn file_modules() {
        let m = |p: &str| file_module(Path::new(p));
        assert_eq!(m("src/lib.rs"), Vec::<String>::new());
        assert_eq!(m("src/facade.rs"), vec!["facade"]);
        assert_eq!(m("src/query/mod.rs"), vec!["query"]);
        assert_eq!(m("src/query/parser.rs"), vec!["query", "parser"]);
    }
}
