//! The lint catalog: rule definitions and token-needle matching,
//! scoped by **computed reachability** instead of crate allowlists.
//!
//! Each rule is a set of token-sequence *needles* plus an applicability
//! predicate over a [`RuleCtx`]: the file context (crate, target kind,
//! file name) **and** the taint flags of the matched token ([`TokFlags`]
//! — sim-reachable, shard-reachable, hot-path-reachable, float-bearing
//! fn), computed by [`crate::reach`] over the workspace symbol graph.
//! The hand-maintained `SIM_VISIBLE` crate list is gone: a violation
//! three calls deep in a crate the old list never named is caught,
//! while genuinely unreachable code stops needing pragmas.
//!
//! The catalog encodes this repository's determinism contract (see
//! DESIGN.md §5c/§5g): simulated components must take time from `Sim`,
//! randomness from `simkit::rng::DetRng`, and must iterate ordered
//! collections, so that two runs with the same seed produce
//! byte-identical snapshots, traces and `FailoverReport`s.

use crate::lexer::{Tok, TokKind};
use crate::{FileCtx, FileKind, TokFlags};

/// One element of a needle pattern.
#[derive(Clone, Copy, Debug)]
pub enum Matcher {
    /// Exact identifier.
    Ident(&'static str),
    /// Exact punctuation (`"::"`, `"."`, `"!"`, `"("`, `")"`).
    Punct(&'static str),
}

impl Matcher {
    fn matches(&self, tok: &Tok) -> bool {
        match self {
            Matcher::Ident(name) => tok.is_ident(name),
            Matcher::Punct(p) => tok.is_punct(p),
        }
    }
}

/// A token sequence to search for, with the message reported on a hit.
pub struct Needle {
    /// The token pattern.
    pub pat: &'static [Matcher],
    /// Human-readable diagnostic message.
    pub msg: &'static str,
    /// Extra predicate over `(tokens, match_start)`; a match is kept
    /// only if it returns true. Used where a fixed pattern cannot
    /// discriminate (e.g. indexing `x[i]` vs array types `[u8; 4]`).
    pub guard: Option<fn(&[Tok], usize) -> bool>,
    /// The needle only fires inside a `fn` body (item-level tokens —
    /// types, consts, use declarations — are exempt).
    pub fn_body_only: bool,
}

/// Shorthand for guardless, everywhere-matching needles.
const fn needle(pat: &'static [Matcher], msg: &'static str) -> Needle {
    Needle {
        pat,
        msg,
        guard: None,
        fn_body_only: false,
    }
}

/// Applicability context of one matched token.
pub struct RuleCtx<'a> {
    /// File context (crate, declared target kind, file name).
    pub file: &'a FileCtx,
    /// Effective kind at the match site (`Test` inside `#[cfg(test)]`
    /// regions of a lib file).
    pub kind: FileKind,
    /// Taint flags at the match site: the enclosing fn's flags, or the
    /// file-level flags for item-level tokens.
    pub flags: TokFlags,
}

/// A lint rule: a named needle set plus an applicability predicate.
pub struct Rule {
    /// Stable rule name (what `lint:allow(...)` refers to).
    pub name: &'static str,
    /// One-line description for `--list-rules` and docs.
    pub summary: &'static str,
    /// Long-form documentation for `--explain <rule>`: what the rule
    /// patrols, how its scope is computed, and how to fix a hit.
    pub explain: &'static str,
    /// Needles that constitute a violation (empty for meta passes like
    /// `unused-pragma`, which are computed by the engine directly).
    pub needles: &'static [Needle],
    /// Whether the rule applies at a match site.
    pub applies: fn(&RuleCtx) -> bool,
}

use Matcher::{Ident as I, Punct as P};

const WALLCLOCK_NEEDLES: &[Needle] = &[
    needle(
        &[I("Instant"), P("::"), I("now")],
        "wall-clock read (`Instant::now`): simulated code must take time from `Sim::now()`",
    ),
    needle(
        &[I("SystemTime"), P("::"), I("now")],
        "wall-clock read (`SystemTime::now`): simulated code must take time from `Sim::now()`",
    ),
    needle(
        &[I("thread"), P("::"), I("sleep")],
        "real sleep (`thread::sleep`): schedule on the `Sim` event queue instead",
    ),
];

const UNORDERED_NEEDLES: &[Needle] = &[
    needle(
        &[I("HashMap")],
        "`HashMap` in sim-reachable code: iteration order is unspecified — use \
         `BTreeMap` (or sort before iterating) so snapshots/reports are seed-stable",
    ),
    needle(
        &[I("HashSet")],
        "`HashSet` in sim-reachable code: iteration order is unspecified — use \
         `BTreeSet` (or sort before iterating) so snapshots/reports are seed-stable",
    ),
];

const AMBIENT_RNG_NEEDLES: &[Needle] = &[
    needle(
        &[I("RandomState")],
        "ambient randomness (`RandomState` seeds from the OS): derive a `DetRng` \
         from the scenario seed instead",
    ),
    needle(
        &[I("thread_rng")],
        "ambient randomness (`thread_rng`): derive a `DetRng` from the scenario seed",
    ),
    needle(
        &[I("from_entropy")],
        "ambient randomness (`from_entropy`): derive a `DetRng` from the scenario seed",
    ),
    needle(
        &[I("OsRng")],
        "ambient randomness (`OsRng`): derive a `DetRng` from the scenario seed",
    ),
    needle(
        &[I("getrandom")],
        "ambient randomness (`getrandom`): derive a `DetRng` from the scenario seed",
    ),
    needle(
        &[I("rand"), P("::"), I("random")],
        "ambient randomness (`rand::random`): derive a `DetRng` from the scenario seed",
    ),
];

/// True when the `[` at `idx` is an indexing expression: it directly
/// follows an identifier (not a keyword) or a closing `)` / `]`.
/// Array types (`[u8; 4]`), attributes (`#[...]`), slice patterns
/// (`let [a, b] = …`) and literals (`= [1, 2]`) all fail the guard.
fn is_index_expr(tokens: &[Tok], idx: usize) -> bool {
    let Some(prev) = idx.checked_sub(1).and_then(|i| tokens.get(i)) else {
        return false;
    };
    match prev.kind {
        TokKind::Ident => !matches!(
            prev.text.as_str(),
            "as" | "box" | "break" | "else" | "in" | "let" | "match" | "mut" | "ref" | "return"
        ),
        TokKind::Punct => prev.text == ")" || prev.text == "]",
        _ => false,
    }
}

const PANIC_NEEDLES: &[Needle] = &[
    needle(
        &[P("."), I("unwrap"), P("("), P(")")],
        "`unwrap()` reachable from a provisioning hot path: propagate a \
         `ContoryError` (or the crate's error type) instead of panicking the middleware",
    ),
    needle(
        &[P("."), I("expect"), P("(")],
        "`expect()` reachable from a provisioning hot path: propagate a \
         `ContoryError` (or the crate's error type) instead of panicking the middleware",
    ),
    needle(
        &[I("panic"), P("!")],
        "`panic!` reachable from a provisioning hot path: return an error instead \
         of aborting provisioning",
    ),
    needle(
        &[I("unreachable"), P("!")],
        "`unreachable!` reachable from a provisioning hot path: return an error — \
         \"unreachable\" claims need the type system, not a runtime abort",
    ),
    needle(
        &[I("todo"), P("!")],
        "`todo!` reachable from a provisioning hot path",
    ),
    needle(
        &[I("unimplemented"), P("!")],
        "`unimplemented!` reachable from a provisioning hot path",
    ),
    Needle {
        pat: &[P("[")],
        msg: "indexing (`x[i]`) reachable from a provisioning hot path can panic on \
              out-of-bounds/missing keys: use `.get()` and propagate the miss",
        guard: Some(is_index_expr),
        fn_body_only: true,
    },
];

const PRINT_NEEDLES: &[Needle] = &[
    needle(
        &[I("println"), P("!")],
        "`println!` in library code: return data to the caller (bench bins own stdout)",
    ),
    needle(
        &[I("print"), P("!")],
        "`print!` in library code: return data to the caller (bench bins own stdout)",
    ),
    needle(
        &[I("eprintln"), P("!")],
        "`eprintln!` in library code: surface errors through the error type",
    ),
    needle(
        &[I("eprint"), P("!")],
        "`eprint!` in library code: surface errors through the error type",
    ),
    needle(&[I("dbg"), P("!")], "`dbg!` left in library code"),
];

const SHARD_ORDER_NEEDLES: &[Needle] = &[
    needle(
        &[I("HashMap")],
        "`HashMap` in a shard-reachable path: cross-shard event order must come from \
         the `(time, actor, seq)` key, never from hash-iteration order — use \
         `BTreeMap` or an explicitly sorted structure",
    ),
    needle(
        &[I("HashSet")],
        "`HashSet` in a shard-reachable path: cross-shard event order must come from \
         the `(time, actor, seq)` key, never from hash-iteration order — use \
         `BTreeSet` or an explicitly sorted structure",
    ),
    needle(
        &[I("rayon")],
        "`rayon` in a shard-reachable path: scheduling-order-dependent parallelism \
         leaks thread count into outputs — use the deterministic barrier merge \
         (`std::thread::scope` over fixed shard chunks)",
    ),
    needle(
        &[P("."), I("par_iter")],
        "`.par_iter()` in a shard-reachable path: parallel iteration order is \
         scheduler-dependent — merge shard results in `(time, actor, seq)` order",
    ),
    needle(
        &[P("."), I("into_par_iter")],
        "`.into_par_iter()` in a shard-reachable path: parallel iteration order is \
         scheduler-dependent — merge shard results in `(time, actor, seq)` order",
    ),
    needle(
        &[P("."), I("par_bridge")],
        "`.par_bridge()` in a shard-reachable path: destroys even source order — merge \
         shard results in `(time, actor, seq)` order",
    ),
    needle(
        &[P("."), I("reduce"), P("(")],
        "`.reduce()` in a shard-reachable path: reduction grouping must not be \
         observable — fold shard results in a fixed order (e.g. by shard id) so \
         float/overflow effects are identical on every thread count",
    ),
];

const FLOAT_ORDER_NEEDLES: &[Needle] = &[
    needle(
        &[P("."), I("fold"), P("(")],
        "float accumulation (`.fold`) in a sim-visible fn handling f32/f64: float \
         addition is not associative, so accumulation order is part of the \
         determinism contract — fix the iteration order explicitly (sorted keys, \
         shard id) or accumulate in integer units",
    ),
    needle(
        &[P("."), I("sum"), P("(")],
        "float accumulation (`.sum`) in a sim-visible fn handling f32/f64: float \
         addition is not associative — fix the iteration order explicitly or \
         accumulate in integer units",
    ),
    needle(
        &[P("."), I("sum"), P("::")],
        "float accumulation (`.sum::<f..>`) in a sim-visible fn: float addition is \
         not associative — fix the iteration order explicitly or accumulate in \
         integer units",
    ),
    needle(
        &[P("."), I("product"), P("(")],
        "float accumulation (`.product`) in a sim-visible fn handling f32/f64: \
         multiplication order affects rounding — fix the iteration order explicitly",
    ),
    needle(
        &[P("."), I("reduce"), P("(")],
        "float accumulation (`.reduce`) in a sim-visible fn handling f32/f64: \
         reduction grouping affects rounding — fold in a fixed order instead",
    ),
];

const SHARD_STATE_NEEDLES: &[Needle] = &[
    needle(
        &[I("static"), I("mut")],
        "`static mut` in a shard-reachable path: shared mutable state across shard \
         workers is a data race and an ordering leak — keep state per-actor or \
         merge per-shard results deterministically",
    ),
    needle(
        &[I("Mutex")],
        "`Mutex` in a shard-reachable path: lock acquisition order is \
         scheduler-dependent and leaks thread interleaving into outputs — keep \
         state per-shard and merge in `(time, actor, seq)` order",
    ),
    needle(
        &[I("RwLock")],
        "`RwLock` in a shard-reachable path: lock acquisition order is \
         scheduler-dependent — keep state per-shard and merge deterministically",
    ),
    needle(
        &[I("OnceLock")],
        "`OnceLock` in a shard-reachable path: first-writer-wins initialisation is \
         a thread race — initialise before parallel stepping starts",
    ),
    needle(
        &[I("Ordering"), P("::"), I("Relaxed")],
        "non-SeqCst atomic (`Ordering::Relaxed`) in a shard-reachable path: relaxed \
         loads can observe different interleavings per run — use `SeqCst` or \
         per-shard counters merged after the barrier",
    ),
    needle(
        &[I("Ordering"), P("::"), I("Acquire")],
        "non-SeqCst atomic (`Ordering::Acquire`) in a shard-reachable path: use \
         `SeqCst` or per-shard counters merged after the barrier",
    ),
    needle(
        &[I("Ordering"), P("::"), I("Release")],
        "non-SeqCst atomic (`Ordering::Release`) in a shard-reachable path: use \
         `SeqCst` or per-shard counters merged after the barrier",
    ),
    needle(
        &[I("Ordering"), P("::"), I("AcqRel")],
        "non-SeqCst atomic (`Ordering::AcqRel`) in a shard-reachable path: use \
         `SeqCst` or per-shard counters merged after the barrier",
    ),
];

const EXIT_NEEDLES: &[Needle] = &[needle(
    &[I("process"), P("::"), I("exit")],
    "`process::exit` outside a bin target: skips destructors and kills the host \
     process — return a `Result` and let `main` decide",
)];

fn applies_wallclock(ctx: &RuleCtx) -> bool {
    // `crit` is the sanctioned wall-clock shim (the vendored criterion
    // stand-in *measures* real time by design).
    ctx.file.krate.as_deref() != Some("crit")
}

fn applies_unordered(ctx: &RuleCtx) -> bool {
    ctx.kind == FileKind::Lib && ctx.flags.sim
}

fn applies_ambient_rng(_ctx: &RuleCtx) -> bool {
    true
}

fn applies_panic_reachable(ctx: &RuleCtx) -> bool {
    ctx.kind == FileKind::Lib && ctx.flags.hot
}

fn applies_print(ctx: &RuleCtx) -> bool {
    ctx.kind == FileKind::Lib
}

fn applies_shard_order(ctx: &RuleCtx) -> bool {
    ctx.kind == FileKind::Lib && ctx.flags.shard
}

fn applies_float_order(ctx: &RuleCtx) -> bool {
    ctx.kind == FileKind::Lib && ctx.flags.sim && ctx.flags.float_fn
}

fn applies_shard_state(ctx: &RuleCtx) -> bool {
    ctx.kind == FileKind::Lib && ctx.flags.shard
}

fn applies_exit(ctx: &RuleCtx) -> bool {
    !matches!(ctx.kind, FileKind::Bin | FileKind::Example)
}

fn applies_always(_ctx: &RuleCtx) -> bool {
    true
}

/// The rule catalog, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "wallclock-ban",
        summary: "no Instant::now / SystemTime::now / thread::sleep outside the crit shim",
        explain: "Simulated components must take time from `Sim::now()` and schedule \
                  on the event queue; any wall-clock read makes runs diverge between \
                  machines and between same-seed repetitions. Applies to every file \
                  in every target kind. The single exemption is the `crit` crate \
                  (the vendored criterion shim), which measures real time by design.",
        needles: WALLCLOCK_NEEDLES,
        applies: applies_wallclock,
    },
    Rule {
        name: "unordered-iter",
        summary: "no HashMap/HashSet in sim-reachable library code (seed-stable iteration)",
        explain: "Scope is COMPUTED, not declared: a token is patrolled when its \
                  enclosing fn is reachable from a simulation entry point (Sim/\
                  ShardSim/EventCtx impls, Scenario impls, schedulers) over the \
                  workspace call graph, or — for item-level tokens such as struct \
                  fields and use declarations — when the file's crate contains \
                  sim-reachable code. Hash iteration order is unspecified, so any \
                  HashMap/HashSet that feeds a snapshot, transcript or report \
                  breaks byte-identical same-seed runs. Use BTreeMap/BTreeSet, or \
                  sort before iterating and pragma the declaration with a \
                  justification.",
        needles: UNORDERED_NEEDLES,
        applies: applies_unordered,
    },
    Rule {
        name: "ambient-rng",
        summary: "no OS-seeded randomness anywhere; all entropy flows from simkit::rng",
        explain: "All randomness must derive from the scenario seed through \
                  `simkit::rng::DetRng`. OS entropy (RandomState, thread_rng, \
                  OsRng, getrandom, from_entropy, rand::random) breaks replay. \
                  Applies everywhere, including tests and bins: a bench bin that \
                  seeds from the OS produces unpinnable numbers.",
        needles: AMBIENT_RNG_NEEDLES,
        applies: applies_ambient_rng,
    },
    Rule {
        name: "panic-reachable",
        summary: "no unwrap/expect/panic!/indexing reachable from core's provisioning surface",
        explain: "Scope is COMPUTED from the call graph: the taint starts at every \
                  public fn of the `core` crate (the middleware surface a phone \
                  application calls) and propagates through resolved calls — \
                  including dyn-trait impls in dependent crates. A panic site \
                  (unwrap/expect/panic!/unreachable!/todo!/unimplemented!/indexing) \
                  on that taint aborts provisioning for every query on the phone; \
                  propagate a ContoryError instead, or `.get()` instead of \
                  indexing. Panic sites NOT on the taint (bin-only helpers, \
                  construction-time code) need no pragma — this replaces the old \
                  crate-list `no-unwrap-in-core` rule.",
        needles: PANIC_NEEDLES,
        applies: applies_panic_reachable,
    },
    Rule {
        name: "no-print-in-lib",
        summary: "no println!/eprintln!/dbg! in library code (bins and benches exempt)",
        explain: "Library layers return data; bench bins own stdout. A stray \
                  println! in a provisioning layer corrupts machine-read bench \
                  output and the determinism transcripts.",
        needles: PRINT_NEEDLES,
        applies: applies_print,
    },
    Rule {
        name: "shard-visible-order",
        summary: "no hash-order or scheduler-order dependence in shard-reachable paths",
        explain: "Scope is COMPUTED: reachable from the partitioned engine's \
                  parallel stepping (ShardSim/EventCtx impl methods, fns driving a \
                  ShardSim, callers of the sharded scheduling surface). Cross-shard \
                  event order must come from the `(time, actor, seq)` key only: \
                  hash iteration, rayon-style parallel iteration and unordered \
                  `.reduce()` grouping all leak shard/thread count into outputs, \
                  breaking the byte-identity gate across {1,4,16} shards.",
        needles: SHARD_ORDER_NEEDLES,
        applies: applies_shard_order,
    },
    Rule {
        name: "float-order",
        summary: "no f32/f64 fold/sum/product/reduce accumulation in sim-visible fns",
        explain: "Float addition and multiplication are not associative: the same \
                  multiset of values accumulated in two different orders produces \
                  two different bit patterns, which the byte-identity transcript \
                  gate then catches — or worse, doesn't, until shard counts change. \
                  The rule fires on `.fold`/`.sum`/`.product`/`.reduce` inside \
                  sim-reachable fns whose signature or body mentions f32/f64. Fix \
                  by accumulating in integer units (micro-joules, millimetres), \
                  fixing the iteration order explicitly (sorted keys, shard id), \
                  or pragma with a justification for why the order is already \
                  deterministic.",
        needles: FLOAT_ORDER_NEEDLES,
        applies: applies_float_order,
    },
    Rule {
        name: "shard-shared-state",
        summary: "no static mut / locks / non-SeqCst atomics in shard-reachable paths",
        explain: "Scope is COMPUTED (same taint as shard-visible-order). State \
                  shared across shard workers — `static mut`, `Mutex`, `RwLock`, \
                  `OnceLock`, atomics with non-SeqCst orderings — makes outputs \
                  depend on thread interleaving, violating the thread-count \
                  invariance the shard gate pins. Keep state per-actor or \
                  per-shard and merge after the barrier in `(time, actor, seq)` \
                  order; counters that genuinely must be shared use SeqCst and a \
                  pragma explaining why the value is order-insensitive.",
        needles: SHARD_STATE_NEEDLES,
        applies: applies_shard_state,
    },
    Rule {
        name: "no-exit",
        summary: "no process::exit outside bin targets and examples",
        explain: "`process::exit` skips destructors and kills the host process \
                  from library code; return a Result and let `main` decide.",
        needles: EXIT_NEEDLES,
        applies: applies_exit,
    },
    Rule {
        name: "unused-pragma",
        summary: "every lint:allow pragma must suppress at least one live diagnostic",
        explain: "Pragma hygiene, computed by the engine after all other rules: a \
                  `// lint:allow(<rule>)` that names an unknown rule, or that \
                  suppresses no diagnostic under the current reachability (e.g. an \
                  audited unwrap that panic-reachable now proves unreachable from \
                  hot paths), is itself a finding. Stale pragmas hide real future \
                  violations on the same line — delete them. Never pinnable in the \
                  ratchet baseline.",
        needles: &[],
        applies: applies_always,
    },
];

/// Looks up a rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Returns the indices (into `tokens`) where `needle` matches.
pub fn find_matches(tokens: &[Tok], needle: &Needle) -> Vec<usize> {
    let pat = needle.pat;
    if pat.is_empty() || tokens.len() < pat.len() {
        return Vec::new();
    }
    let mut hits = Vec::new();
    'outer: for start in 0..=(tokens.len() - pat.len()) {
        for (m, tok) in pat.iter().zip(&tokens[start..]) {
            if !m.matches(tok) {
                continue 'outer;
            }
        }
        if let Some(guard) = needle.guard {
            if !guard(tokens, start) {
                continue;
            }
        }
        hits.push(start);
    }
    hits
}

/// Computes, per token index, whether it falls inside a `#[cfg(test)]`
/// item body. Such regions are re-classified as [`FileKind::Test`] when
/// evaluating rule applicability.
pub fn cfg_test_regions(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    // armed: Some(attr_depth) once `#[cfg(test)]` was seen and we are
    // waiting for the item's opening brace at the same nesting depth.
    let mut armed: Option<i32> = None;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("#")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct("("))
            && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && tokens.get(i + 5).is_some_and(|t| t.is_punct(")"))
            && tokens.get(i + 6).is_some_and(|t| t.is_punct("]"))
        {
            armed = Some(depth);
            i += 7;
            continue;
        }
        match t.text.as_str() {
            "{" if t.kind == TokKind::Punct => {
                if armed == Some(depth) {
                    armed = None;
                    // Scan forward for the matching close brace.
                    let start = i;
                    let mut d = 0i32;
                    let mut j = i;
                    while j < tokens.len() {
                        let u = &tokens[j];
                        if u.kind == TokKind::Punct {
                            if u.text == "{" {
                                d += 1;
                            } else if u.text == "}" {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                        }
                        j += 1;
                    }
                    regions.push((start, j.min(tokens.len().saturating_sub(1))));
                }
                depth += 1;
            }
            "}" if t.kind == TokKind::Punct => {
                depth -= 1;
            }
            ";" if t.kind == TokKind::Punct => {
                // `#[cfg(test)] use …;` — attribute applied to a
                // braceless item at this depth: disarm.
                if armed == Some(depth) {
                    armed = None;
                }
            }
            _ => {}
        }
        i += 1;
    }
    regions
}
