//! The lint catalog: rule definitions and token-needle matching.
//!
//! Each rule is a set of token-sequence *needles* plus an applicability
//! predicate over the [`FileCtx`]. Needles are matched against the
//! comment/string-free token stream from [`crate::lexer`], so a rule hit
//! always corresponds to real code.
//!
//! The catalog encodes this repository's determinism contract (see
//! DESIGN.md §5c): simulated components must take time from `Sim`,
//! randomness from `simkit::rng::DetRng`, and must iterate ordered
//! collections, so that two runs with the same seed produce
//! byte-identical snapshots, traces and `FailoverReport`s.

use crate::{FileCtx, FileKind};
use crate::lexer::{Tok, TokKind};

/// Sim-visible crates: their library code feeds snapshots/reports, so
/// iteration order and time sources are part of the determinism contract.
const SIM_VISIBLE: &[&str] = &[
    "simkit", "radio", "smartmsg", "fuego", "core", "obskit", "benchkit",
];

/// Crates whose library code must propagate errors instead of panicking.
const NO_PANIC: &[&str] = &["core", "fuego", "smartmsg", "radio", "obskit"];

/// One element of a needle pattern.
#[derive(Clone, Copy, Debug)]
pub enum Matcher {
    /// Exact identifier.
    Ident(&'static str),
    /// Exact punctuation (`"::"`, `"."`, `"!"`, `"("`, `")"`).
    Punct(&'static str),
}

impl Matcher {
    fn matches(&self, tok: &Tok) -> bool {
        match self {
            Matcher::Ident(name) => tok.is_ident(name),
            Matcher::Punct(p) => tok.is_punct(p),
        }
    }
}

/// A token sequence to search for, with the message reported on a hit.
pub struct Needle {
    /// The token pattern.
    pub pat: &'static [Matcher],
    /// Human-readable diagnostic message.
    pub msg: &'static str,
}

/// A lint rule: a named needle set plus an applicability predicate.
pub struct Rule {
    /// Stable rule name (what `lint:allow(...)` refers to).
    pub name: &'static str,
    /// One-line description for `--list-rules` and docs.
    pub summary: &'static str,
    /// Needles that constitute a violation.
    pub needles: &'static [Needle],
    /// Whether the rule applies to a file context. Code inside
    /// `#[cfg(test)]` regions is re-checked with `kind == Test`.
    pub applies: fn(&FileCtx) -> bool,
}

use Matcher::{Ident as I, Punct as P};

const WALLCLOCK_NEEDLES: &[Needle] = &[
    Needle {
        pat: &[I("Instant"), P("::"), I("now")],
        msg: "wall-clock read (`Instant::now`): simulated code must take time from `Sim::now()`",
    },
    Needle {
        pat: &[I("SystemTime"), P("::"), I("now")],
        msg: "wall-clock read (`SystemTime::now`): simulated code must take time from `Sim::now()`",
    },
    Needle {
        pat: &[I("thread"), P("::"), I("sleep")],
        msg: "real sleep (`thread::sleep`): schedule on the `Sim` event queue instead",
    },
];

const UNORDERED_NEEDLES: &[Needle] = &[
    Needle {
        pat: &[I("HashMap")],
        msg: "`HashMap` in a sim-visible crate: iteration order is unspecified — use \
              `BTreeMap` (or sort before iterating) so snapshots/reports are seed-stable",
    },
    Needle {
        pat: &[I("HashSet")],
        msg: "`HashSet` in a sim-visible crate: iteration order is unspecified — use \
              `BTreeSet` (or sort before iterating) so snapshots/reports are seed-stable",
    },
];

const AMBIENT_RNG_NEEDLES: &[Needle] = &[
    Needle {
        pat: &[I("RandomState")],
        msg: "ambient randomness (`RandomState` seeds from the OS): derive a `DetRng` \
              from the scenario seed instead",
    },
    Needle {
        pat: &[I("thread_rng")],
        msg: "ambient randomness (`thread_rng`): derive a `DetRng` from the scenario seed",
    },
    Needle {
        pat: &[I("from_entropy")],
        msg: "ambient randomness (`from_entropy`): derive a `DetRng` from the scenario seed",
    },
    Needle {
        pat: &[I("OsRng")],
        msg: "ambient randomness (`OsRng`): derive a `DetRng` from the scenario seed",
    },
    Needle {
        pat: &[I("getrandom")],
        msg: "ambient randomness (`getrandom`): derive a `DetRng` from the scenario seed",
    },
    Needle {
        pat: &[I("rand"), P("::"), I("random")],
        msg: "ambient randomness (`rand::random`): derive a `DetRng` from the scenario seed",
    },
];

const UNWRAP_NEEDLES: &[Needle] = &[
    Needle {
        pat: &[P("."), I("unwrap"), P("("), P(")")],
        msg: "`unwrap()` in library code: propagate a `ContoryError` (or the crate's \
              error type) instead of panicking the middleware",
    },
    Needle {
        pat: &[P("."), I("expect"), P("(")],
        msg: "`expect()` in library code: propagate a `ContoryError` (or the crate's \
              error type) instead of panicking the middleware",
    },
    Needle {
        pat: &[I("panic"), P("!")],
        msg: "`panic!` in library code: return an error instead of aborting provisioning",
    },
];

const PRINT_NEEDLES: &[Needle] = &[
    Needle {
        pat: &[I("println"), P("!")],
        msg: "`println!` in library code: return data to the caller (bench bins own stdout)",
    },
    Needle {
        pat: &[I("print"), P("!")],
        msg: "`print!` in library code: return data to the caller (bench bins own stdout)",
    },
    Needle {
        pat: &[I("eprintln"), P("!")],
        msg: "`eprintln!` in library code: surface errors through the error type",
    },
    Needle {
        pat: &[I("eprint"), P("!")],
        msg: "`eprint!` in library code: surface errors through the error type",
    },
    Needle {
        pat: &[I("dbg"), P("!")],
        msg: "`dbg!` left in library code",
    },
];

const SHARD_ORDER_NEEDLES: &[Needle] = &[
    Needle {
        pat: &[I("HashMap")],
        msg: "`HashMap` in a shard merge path: cross-shard event order must come from \
              the `(time, actor, seq)` key, never from hash-iteration order — use \
              `BTreeMap` or an explicitly sorted structure",
    },
    Needle {
        pat: &[I("HashSet")],
        msg: "`HashSet` in a shard merge path: cross-shard event order must come from \
              the `(time, actor, seq)` key, never from hash-iteration order — use \
              `BTreeSet` or an explicitly sorted structure",
    },
    Needle {
        pat: &[I("rayon")],
        msg: "`rayon` in a shard merge path: scheduling-order-dependent parallelism \
              leaks thread count into outputs — use the deterministic barrier merge \
              (`std::thread::scope` over fixed shard chunks)",
    },
    Needle {
        pat: &[P("."), I("par_iter")],
        msg: "`.par_iter()` in a shard merge path: parallel iteration order is \
              scheduler-dependent — merge shard results in `(time, actor, seq)` order",
    },
    Needle {
        pat: &[P("."), I("into_par_iter")],
        msg: "`.into_par_iter()` in a shard merge path: parallel iteration order is \
              scheduler-dependent — merge shard results in `(time, actor, seq)` order",
    },
    Needle {
        pat: &[P("."), I("par_bridge")],
        msg: "`.par_bridge()` in a shard merge path: destroys even source order — merge \
              shard results in `(time, actor, seq)` order",
    },
    Needle {
        pat: &[P("."), I("reduce"), P("(")],
        msg: "`.reduce()` in a shard merge path: reduction grouping must not be \
              observable — fold shard results in a fixed order (e.g. by shard id) so \
              float/overflow effects are identical on every thread count",
    },
];

const EXIT_NEEDLES: &[Needle] = &[Needle {
    pat: &[I("process"), P("::"), I("exit")],
    msg: "`process::exit` outside a bin target: skips destructors and kills the host \
          process — return a `Result` and let `main` decide",
}];

fn crate_in(ctx: &FileCtx, list: &[&str]) -> bool {
    ctx.krate.as_deref().is_some_and(|k| list.contains(&k))
}

fn applies_wallclock(ctx: &FileCtx) -> bool {
    // `crit` is the sanctioned wall-clock shim (the vendored criterion
    // stand-in *measures* real time by design).
    ctx.krate.as_deref() != Some("crit")
}

fn applies_unordered(ctx: &FileCtx) -> bool {
    ctx.kind == FileKind::Lib && crate_in(ctx, SIM_VISIBLE)
}

fn applies_ambient_rng(_ctx: &FileCtx) -> bool {
    true
}

fn applies_unwrap(ctx: &FileCtx) -> bool {
    ctx.kind == FileKind::Lib && crate_in(ctx, NO_PANIC)
}

fn applies_print(ctx: &FileCtx) -> bool {
    ctx.kind == FileKind::Lib
}

fn applies_shard_order(ctx: &FileCtx) -> bool {
    // Scoped by module *name*: the partitioned-engine contract lives in
    // files named after shards (`shard.rs`, `shard_merge.rs`, …) inside
    // sim-visible crates. Test regions are mechanism, not contract.
    ctx.kind == FileKind::Lib && crate_in(ctx, SIM_VISIBLE) && ctx.file.contains("shard")
}

fn applies_exit(ctx: &FileCtx) -> bool {
    !matches!(ctx.kind, FileKind::Bin | FileKind::Example)
}

/// The rule catalog, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "wallclock-ban",
        summary: "no Instant::now / SystemTime::now / thread::sleep outside the crit shim",
        needles: WALLCLOCK_NEEDLES,
        applies: applies_wallclock,
    },
    Rule {
        name: "unordered-iter",
        summary: "no HashMap/HashSet in sim-visible library code (seed-stable iteration)",
        needles: UNORDERED_NEEDLES,
        applies: applies_unordered,
    },
    Rule {
        name: "ambient-rng",
        summary: "no OS-seeded randomness anywhere; all entropy flows from simkit::rng",
        needles: AMBIENT_RNG_NEEDLES,
        applies: applies_ambient_rng,
    },
    Rule {
        name: "no-unwrap-in-core",
        summary: "no unwrap/expect/panic! in core/fuego/smartmsg/radio/obskit library code",
        needles: UNWRAP_NEEDLES,
        applies: applies_unwrap,
    },
    Rule {
        name: "no-print-in-lib",
        summary: "no println!/eprintln!/dbg! in library code (bins and benches exempt)",
        needles: PRINT_NEEDLES,
        applies: applies_print,
    },
    Rule {
        name: "shard-visible-order",
        summary: "no hash-order or scheduler-order dependence in shard merge paths \
                  (files named *shard* in sim-visible crates)",
        needles: SHARD_ORDER_NEEDLES,
        applies: applies_shard_order,
    },
    Rule {
        name: "no-exit",
        summary: "no process::exit outside bin targets and examples",
        needles: EXIT_NEEDLES,
        applies: applies_exit,
    },
];

/// Looks up a rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Returns the indices (into `tokens`) where `needle` matches.
pub fn find_matches(tokens: &[Tok], needle: &Needle) -> Vec<usize> {
    let pat = needle.pat;
    if pat.is_empty() || tokens.len() < pat.len() {
        return Vec::new();
    }
    let mut hits = Vec::new();
    'outer: for start in 0..=(tokens.len() - pat.len()) {
        for (m, tok) in pat.iter().zip(&tokens[start..]) {
            if !m.matches(tok) {
                continue 'outer;
            }
        }
        // Reject partial-identifier illusions: a single-ident needle like
        // `HashMap` is already exact (the lexer tokenizes maximal idents),
        // so nothing extra is needed here.
        hits.push(start);
    }
    hits
}

/// Computes, per token index, whether it falls inside a `#[cfg(test)]`
/// item body. Such regions are re-classified as [`FileKind::Test`] when
/// evaluating rule applicability.
pub fn cfg_test_regions(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    // armed: Some(attr_depth) once `#[cfg(test)]` was seen and we are
    // waiting for the item's opening brace at the same nesting depth.
    let mut armed: Option<i32> = None;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("#")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct("("))
            && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && tokens.get(i + 5).is_some_and(|t| t.is_punct(")"))
            && tokens.get(i + 6).is_some_and(|t| t.is_punct("]"))
        {
            armed = Some(depth);
            i += 7;
            continue;
        }
        match t.text.as_str() {
            "{" if t.kind == TokKind::Punct => {
                if armed == Some(depth) {
                    armed = None;
                    // Scan forward for the matching close brace.
                    let start = i;
                    let mut d = 0i32;
                    let mut j = i;
                    while j < tokens.len() {
                        let u = &tokens[j];
                        if u.kind == TokKind::Punct {
                            if u.text == "{" {
                                d += 1;
                            } else if u.text == "}" {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                        }
                        j += 1;
                    }
                    regions.push((start, j.min(tokens.len().saturating_sub(1))));
                }
                depth += 1;
            }
            "}" if t.kind == TokKind::Punct => {
                depth -= 1;
            }
            ";" if t.kind == TokKind::Punct => {
                // `#[cfg(test)] use …;` — attribute applied to a
                // braceless item at this depth: disarm.
                if armed == Some(depth) {
                    armed = None;
                }
            }
            _ => {}
        }
        i += 1;
    }
    regions
}
