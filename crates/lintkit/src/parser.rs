//! A hand-rolled, dependency-free *item-level* Rust parser on top of
//! [`crate::lexer`].
//!
//! The symbol graph ([`crate::graph`]) does not need a full expression
//! grammar — it needs to know, for every file:
//!
//! - which `fn` items exist (free functions, `impl` methods, `trait`
//!   methods), with their inline-module path, visibility and the token
//!   span of signature and body;
//! - which `use` declarations are in scope (including `pub use`
//!   re-exports, grouped trees and `as` renames), so call-site paths
//!   can be resolved to their defining crate; and
//! - which paths and method names each `fn` body references, so
//!   call/reference edges can be drawn.
//!
//! The parser is a single forward pass over the token stream with
//! matched-delimiter skipping. It is deliberately *recovering*: any
//! construct it does not understand is skipped by advancing at least
//! one token, so it **never panics and always terminates** on arbitrary
//! token streams (there is a propcheck property pinning exactly that,
//! `tests/parser_props.rs`). Malformed input degrades to fewer items,
//! never to an error — the right polarity for a linter.

use crate::lexer::{Tok, TokKind};

/// Keywords that terminate identifier-path collection and are excluded
/// from reference extraction.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "trait", "true", "type", "union", "unsafe",
    "use", "where", "while",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// One path or method reference extracted from a `fn` body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ref {
    /// Path segments (`["benchkit", "Scenario", "run"]`). For a method
    /// reference this is the bare method name.
    pub segments: Vec<String>,
    /// True for `.name(...)`-style method references.
    pub method: bool,
    /// True when the reference is immediately invoked (`(` follows,
    /// possibly after a turbofish).
    pub called: bool,
}

/// One `use` declaration binding (a grouped tree contributes several).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseDecl {
    /// Inline-module path of the declaration within the file.
    pub module: Vec<String>,
    /// Full target path; a glob import ends with a `*` segment.
    pub path: Vec<String>,
    /// Name the import binds (`as` rename honoured; empty for globs).
    pub alias: String,
    /// True for `pub use` (a re-export).
    pub is_pub: bool,
}

/// One `fn` item (free, impl method or trait method).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Inline-module path within the file (file-level = empty).
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` self-type name (`impl Tr for Ty` → `Ty`,
    /// `impl Ty` → `Ty`, `trait Tr` → `Tr`).
    pub self_type: Option<String>,
    /// Trait name when inside `impl Tr for Ty`.
    pub trait_impl: Option<String>,
    /// Declared `pub` (any visibility restriction counts as pub for
    /// graph purposes — `pub(crate)` is callable across modules).
    pub is_pub: bool,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token span `[open_brace, close_brace]` of the body, if any
    /// (trait method declarations without bodies have `None`).
    pub body: Option<(usize, usize)>,
    /// References extracted from the body.
    pub refs: Vec<Ref>,
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item in the file, in source order.
    pub fns: Vec<FnItem>,
    /// Every `use` binding in the file.
    pub uses: Vec<UseDecl>,
}

/// Context of the surrounding item while parsing.
#[derive(Clone, Debug, Default)]
struct ItemCtx {
    self_type: Option<String>,
    trait_impl: Option<String>,
}

struct Parser<'a> {
    t: &'a [Tok],
    out: ParsedFile,
}

/// Parses a lexed token stream into items.
pub fn parse(tokens: &[Tok]) -> ParsedFile {
    let mut p = Parser {
        t: tokens,
        out: ParsedFile::default(),
    };
    let end = tokens.len();
    let mut module = Vec::new();
    p.items(0, end, &mut module, &ItemCtx::default());
    p.out
}

impl<'a> Parser<'a> {
    fn ident_at(&self, i: usize) -> Option<&str> {
        self.t.get(i).and_then(|t| {
            if t.kind == TokKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            }
        })
    }

    fn punct_at(&self, i: usize, p: &str) -> bool {
        self.t.get(i).is_some_and(|t| t.is_punct(p))
    }

    /// Index just past the delimiter matching the opener at `open`
    /// (which must be at `open`). Counts only the same delimiter kind;
    /// an unterminated region returns `end`.
    fn skip_matched(&self, open: usize, end: usize, o: &str, c: &str) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            if self.punct_at(i, o) {
                depth += 1;
            } else if self.punct_at(i, c) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Skips a generics list starting at `<`. `->` arrows inside are
    /// ignored so `impl<F: Fn() -> u32>` does not unbalance the scan.
    fn skip_generics(&self, start: usize, end: usize) -> usize {
        if !self.punct_at(start, "<") {
            return start;
        }
        let mut depth = 0i64;
        let mut i = start;
        while i < end {
            if self.punct_at(i, "<") {
                depth += 1;
            } else if self.punct_at(i, ">") && !(i > 0 && self.punct_at(i - 1, "-")) {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Skips attributes (`#[...]`, `#![...]`) starting at `i`.
    fn skip_attrs(&self, mut i: usize, end: usize) -> usize {
        loop {
            if self.punct_at(i, "#") && (self.punct_at(i + 1, "[") || self.punct_at(i + 1, "!")) {
                let open = if self.punct_at(i + 1, "[") { i + 1 } else { i + 2 };
                if self.punct_at(open, "[") {
                    i = self.skip_matched(open, end, "[", "]");
                    continue;
                }
            }
            return i;
        }
    }

    /// Parses the items in `[i, end)` under module path `module`.
    fn items(&mut self, mut i: usize, end: usize, module: &mut Vec<String>, ctx: &ItemCtx) {
        while i < end {
            let before = i;
            i = self.skip_attrs(i, end);
            let mut is_pub = false;
            if self.ident_at(i) == Some("pub") {
                is_pub = true;
                i += 1;
                if self.punct_at(i, "(") {
                    i = self.skip_matched(i, end, "(", ")");
                }
            }
            // Qualifiers that may precede `fn`.
            let mut j = i;
            while matches!(self.ident_at(j), Some("unsafe" | "async" | "default")) {
                j += 1;
            }
            if self.ident_at(j) == Some("const") && self.ident_at(j + 1) == Some("fn") {
                j += 1; // `const fn`
            }
            if self.ident_at(j) == Some("extern") {
                // `extern "C" fn`
                let mut k = j + 1;
                if self.t.get(k).is_some_and(|t| t.kind == TokKind::Literal) {
                    k += 1;
                }
                if self.ident_at(k) == Some("fn") {
                    j = k;
                }
            }
            if self.ident_at(j) == Some("fn") {
                i = self.parse_fn(j, end, module, ctx, is_pub);
            } else {
                match self.ident_at(i) {
                    Some("mod") => {
                        let name = self.ident_at(i + 1).unwrap_or("").to_string();
                        if self.punct_at(i + 2, "{") {
                            let close = self.skip_matched(i + 2, end, "{", "}");
                            module.push(name);
                            self.items(i + 3, close.saturating_sub(1), module, ctx);
                            module.pop();
                            i = close;
                        } else {
                            i = self.seek_semicolon(i + 1, end);
                        }
                    }
                    Some("use") => {
                        i = self.parse_use(i + 1, end, module, is_pub);
                    }
                    Some("impl") => {
                        i = self.parse_impl(i + 1, end, module);
                    }
                    Some("trait") => {
                        let after_name = i + 2;
                        let name = self.ident_at(i + 1).unwrap_or("").to_string();
                        let mut k = self.skip_generics(after_name, end);
                        // Scan to the trait body `{` (past `:` bounds /
                        // `where` clauses) at angle/paren depth 0.
                        while k < end && !self.punct_at(k, "{") && !self.punct_at(k, ";") {
                            if self.punct_at(k, "<") {
                                k = self.skip_generics(k, end);
                            } else if self.punct_at(k, "(") {
                                k = self.skip_matched(k, end, "(", ")");
                            } else {
                                k += 1;
                            }
                        }
                        if self.punct_at(k, "{") {
                            let close = self.skip_matched(k, end, "{", "}");
                            let inner = ItemCtx {
                                self_type: Some(name),
                                trait_impl: None,
                            };
                            self.items(k + 1, close.saturating_sub(1), module, &inner);
                            i = close;
                        } else {
                            i = (k + 1).max(i + 1);
                        }
                    }
                    Some("struct" | "enum" | "union") => {
                        i = self.skip_struct_like(i + 1, end);
                    }
                    Some("static" | "const" | "type") => {
                        i = self.seek_semicolon(i + 1, end);
                    }
                    Some("macro_rules") => {
                        // macro_rules ! name { ... }
                        let mut k = i + 1;
                        while k < end && !self.punct_at(k, "{") && !self.punct_at(k, "(") {
                            k += 1;
                        }
                        i = if self.punct_at(k, "{") {
                            self.skip_matched(k, end, "{", "}")
                        } else if self.punct_at(k, "(") {
                            self.skip_matched(k, end, "(", ")")
                        } else {
                            k
                        };
                    }
                    Some("extern") => {
                        // extern block or extern crate
                        let mut k = i + 1;
                        while k < end && !self.punct_at(k, "{") && !self.punct_at(k, ";") {
                            k += 1;
                        }
                        i = if self.punct_at(k, "{") {
                            self.skip_matched(k, end, "{", "}")
                        } else {
                            k + 1
                        };
                    }
                    _ => {
                        if self.punct_at(i, "{") {
                            i = self.skip_matched(i, end, "{", "}");
                        } else {
                            i += 1;
                        }
                    }
                }
            }
            if i <= before {
                // Guarantee forward progress on any input.
                i = before + 1;
            }
        }
    }

    /// Advances past the next `;` at brace depth 0 (handles
    /// `const X: T = { .. };` initialisers).
    fn seek_semicolon(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            if self.punct_at(i, "{") {
                i = self.skip_matched(i, end, "{", "}");
                continue;
            }
            if self.punct_at(i, ";") {
                return i + 1;
            }
            i += 1;
        }
        end
    }

    /// Skips a struct/enum/union item from just past the keyword.
    fn skip_struct_like(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            if self.punct_at(i, "<") {
                i = self.skip_generics(i, end);
                continue;
            }
            if self.punct_at(i, "(") {
                // Tuple struct: `struct X(..);`
                i = self.skip_matched(i, end, "(", ")");
                continue;
            }
            if self.punct_at(i, "{") {
                return self.skip_matched(i, end, "{", "}");
            }
            if self.punct_at(i, ";") {
                return i + 1;
            }
            i += 1;
        }
        end
    }

    /// Parses `use <tree>;` into flat [`UseDecl`] bindings.
    fn parse_use(&mut self, start: usize, end: usize, module: &[String], is_pub: bool) -> usize {
        let stop = self.seek_semicolon(start, end);
        let tree_end = stop.saturating_sub(1); // index of `;` (or end)
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(start, tree_end, &mut prefix, module, is_pub);
        stop
    }

    /// Recursively walks one use-tree between `[i, end)`.
    fn use_tree(
        &mut self,
        mut i: usize,
        end: usize,
        prefix: &mut Vec<String>,
        module: &[String],
        is_pub: bool,
    ) {
        let base_len = prefix.len();
        let flush = |p: &mut Vec<String>, alias: Option<String>, slf: &mut Self| {
            if p.len() == base_len {
                return;
            }
            let alias = alias.unwrap_or_else(|| {
                let last = p.last().map(String::as_str).unwrap_or("");
                if last == "*" {
                    String::new()
                } else {
                    last.to_string()
                }
            });
            slf.out.uses.push(UseDecl {
                module: module.to_vec(),
                path: p.clone(),
                alias,
                is_pub,
            });
            p.truncate(base_len);
        };
        while i < end {
            if let Some(id) = self.ident_at(i) {
                if id == "as" {
                    let alias = self.ident_at(i + 1).map(str::to_string);
                    flush(prefix, alias, self);
                    i += 2;
                    continue;
                }
                prefix.push(id.to_string());
                i += 1;
            } else if self.punct_at(i, "*") {
                prefix.push("*".to_string());
                i += 1;
            } else if self.punct_at(i, "::") {
                i += 1;
            } else if self.punct_at(i, "{") {
                let close = self.skip_matched(i, end, "{", "}");
                // Split the group body on top-level commas.
                let inner_end = close.saturating_sub(1);
                let mut seg_start = i + 1;
                let mut k = i + 1;
                let mut depth = 0usize;
                while k <= inner_end {
                    if k == inner_end || (self.punct_at(k, ",") && depth == 0) {
                        if k > seg_start {
                            let mut sub = prefix.clone();
                            self.use_tree(seg_start, k, &mut sub, module, is_pub);
                        }
                        seg_start = k + 1;
                    } else if self.punct_at(k, "{") {
                        depth += 1;
                    } else if self.punct_at(k, "}") {
                        depth = depth.saturating_sub(1);
                    }
                    k += 1;
                }
                prefix.truncate(base_len);
                i = close;
                continue;
            } else if self.punct_at(i, ",") {
                flush(prefix, None, self);
                i += 1;
            } else {
                i += 1;
            }
        }
        flush(prefix, None, self);
    }

    /// Parses the `impl` header from just past the keyword and then its
    /// items; returns the index past the body.
    fn parse_impl(&mut self, start: usize, end: usize, module: &mut Vec<String>) -> usize {
        let mut i = self.skip_generics(start, end);
        // Collect header tokens until the body `{` (or `;`), splitting
        // trait and self type at a top-level `for`.
        let mut names: Vec<Vec<String>> = vec![Vec::new()];
        while i < end && !self.punct_at(i, "{") && !self.punct_at(i, ";") {
            if self.punct_at(i, "<") {
                i = self.skip_generics(i, end);
                continue;
            }
            if self.punct_at(i, "(") {
                i = self.skip_matched(i, end, "(", ")");
                continue;
            }
            match self.ident_at(i) {
                Some("for") => names.push(Vec::new()),
                Some("where") => {
                    // `where` bounds may reference types; stop collecting.
                    while i < end && !self.punct_at(i, "{") && !self.punct_at(i, ";") {
                        if self.punct_at(i, "<") {
                            i = self.skip_generics(i, end);
                        } else {
                            i += 1;
                        }
                    }
                    break;
                }
                Some(id) if !is_keyword(id) => {
                    if let Some(v) = names.last_mut() {
                        v.push(id.to_string());
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let (trait_impl, self_type) = if names.len() >= 2 {
            (
                names[0].last().cloned(),
                names[1].last().cloned(),
            )
        } else {
            (None, names[0].last().cloned())
        };
        if self.punct_at(i, "{") {
            let close = self.skip_matched(i, end, "{", "}");
            let ctx = ItemCtx {
                self_type,
                trait_impl,
            };
            self.items(i + 1, close.saturating_sub(1), module, &ctx);
            close
        } else {
            i + 1
        }
    }

    /// Parses one `fn` from the `fn` keyword index; returns index past it.
    fn parse_fn(
        &mut self,
        fn_idx: usize,
        end: usize,
        module: &[String],
        ctx: &ItemCtx,
        is_pub: bool,
    ) -> usize {
        let name = match self.ident_at(fn_idx + 1) {
            Some(n) => n.to_string(),
            None => return fn_idx + 1,
        };
        let mut i = self.skip_generics(fn_idx + 2, end);
        if self.punct_at(i, "(") {
            i = self.skip_matched(i, end, "(", ")");
        }
        // Return type / where clause: scan to the body `{` or a `;`
        // at paren/bracket depth 0.
        let mut depth = 0usize;
        while i < end {
            if self.punct_at(i, "(") || self.punct_at(i, "[") {
                depth += 1;
            } else if self.punct_at(i, ")") || self.punct_at(i, "]") {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && (self.punct_at(i, "{") || self.punct_at(i, ";")) {
                break;
            }
            i += 1;
        }
        let (body, after) = if self.punct_at(i, "{") {
            let close = self.skip_matched(i, end, "{", "}");
            (Some((i, close.saturating_sub(1))), close)
        } else {
            (None, (i + 1).min(end))
        };
        let refs = match body {
            Some((lo, hi)) => extract_refs(self.t, lo + 1, hi),
            None => Vec::new(),
        };
        self.out.fns.push(FnItem {
            name,
            module: module.to_vec(),
            self_type: ctx.self_type.clone(),
            trait_impl: ctx.trait_impl.clone(),
            is_pub,
            sig_start: fn_idx,
            body,
            refs,
        });
        after
    }
}

/// Extracts path and method references from the token range `[lo, hi)`.
pub fn extract_refs(t: &[Tok], lo: usize, hi: usize) -> Vec<Ref> {
    let mut out = Vec::new();
    let mut i = lo;
    let punct_at = |i: usize, p: &str| t.get(i).is_some_and(|x| x.is_punct(p));
    let ident_at = |i: usize| -> Option<&str> {
        t.get(i).and_then(|x| {
            if x.kind == TokKind::Ident {
                Some(x.text.as_str())
            } else {
                None
            }
        })
    };
    let skip_turbofish = |mut k: usize| -> usize {
        // `::< ... >` — returns index past `>`; `k` sits on `::`.
        if punct_at(k, "::") && punct_at(k + 1, "<") {
            let mut depth = 0i64;
            let mut j = k + 1;
            while j < hi {
                if punct_at(j, "<") {
                    depth += 1;
                } else if punct_at(j, ">") && !(j > 0 && punct_at(j - 1, "-")) {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                j += 1;
            }
            k = j;
        }
        k
    };
    while i < hi {
        if punct_at(i, ".") {
            if let Some(m) = ident_at(i + 1) {
                if !is_keyword(m) {
                    let mut k = i + 2;
                    k = skip_turbofish(k);
                    out.push(Ref {
                        segments: vec![m.to_string()],
                        method: true,
                        called: punct_at(k, "("),
                    });
                }
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        if let Some(id) = ident_at(i) {
            if is_keyword(id) && id != "crate" && id != "self" {
                i += 1;
                continue;
            }
            // Collect a `::`-joined path.
            let mut segs = vec![id.to_string()];
            let mut k = i + 1;
            loop {
                let after_tf = skip_turbofish(k);
                if after_tf != k {
                    k = after_tf;
                    continue;
                }
                if punct_at(k, "::") {
                    if let Some(nx) = ident_at(k + 1) {
                        if !is_keyword(nx) || nx == "crate" || nx == "self" {
                            segs.push(nx.to_string());
                            k += 2;
                            continue;
                        }
                    }
                }
                break;
            }
            let called = punct_at(k, "(");
            let first = segs[0].as_str();
            let upper_start = segs
                .last()
                .and_then(|s| s.chars().next())
                .is_some_and(|c| c.is_uppercase());
            let keep = called
                || segs.len() > 1
                || (upper_start && first != "Self");
            if keep && !(segs.len() == 1 && (first == "self" || first == "crate")) {
                out.push(Ref {
                    segments: segs,
                    method: false,
                    called,
                });
            }
            i = k.max(i + 1);
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src).tokens)
    }

    #[test]
    fn free_fns_and_modules() {
        let p = parse_src(
            "fn top() {}\nmod inner { pub fn deep() {} mod deeper { fn deepest() {} } }",
        );
        let names: Vec<(String, Vec<String>, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.module.clone(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("top".into(), vec![], false),
                ("deep".into(), vec!["inner".into()], true),
                ("deepest".into(), vec!["inner".into(), "deeper".into()], false),
            ]
        );
    }

    #[test]
    fn impl_methods_carry_self_type_and_trait() {
        let p = parse_src(
            "impl Facade { pub fn submit(&self) {} }\n\
             impl fmt::Debug for Sim { fn fmt(&self) {} }\n\
             impl<E> Scenario for City<E> { fn run(&self) {} }\n\
             trait Provider { fn provide(&self) { default() } fn id(&self) -> u32; }",
        );
        let f = &p.fns[0];
        assert_eq!((f.name.as_str(), f.self_type.as_deref()), ("submit", Some("Facade")));
        let f = &p.fns[1];
        assert_eq!(f.trait_impl.as_deref(), Some("Debug"));
        assert_eq!(f.self_type.as_deref(), Some("Sim"));
        let f = &p.fns[2];
        assert_eq!(f.trait_impl.as_deref(), Some("Scenario"));
        assert_eq!(f.self_type.as_deref(), Some("City"));
        let f = &p.fns[3];
        assert_eq!(f.self_type.as_deref(), Some("Provider"));
        assert!(f.body.is_some());
        let f = &p.fns[4];
        assert_eq!(f.name, "id");
        assert!(f.body.is_none());
    }

    #[test]
    fn use_trees_flatten() {
        let p = parse_src(
            "use std::collections::{BTreeMap, hash_map::RandomState as RS};\n\
             pub use scenario::{Scenario, RunCtx};\n\
             use simkit::*;",
        );
        let u: Vec<(Vec<String>, &str, bool)> = p
            .uses
            .iter()
            .map(|u| (u.path.clone(), u.alias.as_str(), u.is_pub))
            .collect();
        assert_eq!(
            u,
            vec![
                (vec!["std".into(), "collections".into(), "BTreeMap".into()], "BTreeMap", false),
                (
                    vec![
                        "std".into(),
                        "collections".into(),
                        "hash_map".into(),
                        "RandomState".into()
                    ],
                    "RS",
                    false
                ),
                (vec!["scenario".into(), "Scenario".into()], "Scenario", true),
                (vec!["scenario".into(), "RunCtx".into()], "RunCtx", true),
                (vec!["simkit".into(), "*".into()], "", false),
            ]
        );
    }

    #[test]
    fn refs_capture_calls_paths_and_methods() {
        let p = parse_src(
            "fn f() { let x = helper(); y.method(1); Facade::new(); \
             simkit::rng::DetRng::from_seed(7); v.iter().sum::<f64>(); ShardSim }",
        );
        let refs = &p.fns[0].refs;
        let has = |segs: &[&str], method: bool, called: bool| {
            refs.iter().any(|r| {
                r.segments == segs.iter().map(|s| s.to_string()).collect::<Vec<_>>()
                    && r.method == method
                    && r.called == called
            })
        };
        assert!(has(&["helper"], false, true));
        assert!(has(&["method"], true, true));
        assert!(has(&["Facade", "new"], false, true));
        assert!(has(&["simkit", "rng", "DetRng", "from_seed"], false, true));
        assert!(has(&["sum"], true, true), "turbofish method call");
        assert!(has(&["ShardSim"], false, false), "bare type reference");
        // Plain lowercase locals are not references.
        assert!(!has(&["x"], false, false));
    }

    #[test]
    fn nested_fns_fold_into_outer_body() {
        let p = parse_src("fn outer() { fn inner() {} inner(); }");
        // Item-level parse records only the outer fn; `inner` shows up
        // as a called reference inside it.
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].refs.iter().any(|r| r.segments == ["inner"] && r.called));
    }

    #[test]
    fn recovers_on_malformed_input() {
        for src in [
            "fn",
            "fn {",
            "impl {{{",
            "use ::;{,}",
            "mod m { fn f( }",
            "trait T fn x",
            "pub pub pub",
            "} } }",
            "fn f() -> [u8; 3] { [0; 3] }",
        ] {
            let _ = parse_src(src); // must not panic
        }
    }
}
