//! The ratchet baseline: legacy findings are pinned, new findings fail.
//!
//! The reachability-based passes surface violations the old
//! crate-list linter never looked at (a `panic!` three calls below a
//! provisioning entry point, a float fold in a sim-visible path in a
//! crate the list never named). Failing tier-1 on every legacy finding
//! at once would force a big-bang sweep; silently allowing them would
//! defeat the gate. The ratchet is the same answer benchkit gave for
//! perf: a checked-in baseline (`results/lint_baseline.json`, schema
//! `contory-lint-baseline/1`) pins the *current* finding count per
//! `(rule, file)`; the gate fails iff any pair exceeds its pinned count
//! or appears without a pin. Counts (not line numbers) make the pin
//! robust to unrelated edits in the same file.
//!
//! Pragma-hygiene findings (`unused-pragma`) are never pinnable: a
//! stale pragma is always new debt.
//!
//! Re-base after an intentional change (fixing legacy findings, adding
//! a rule) with:
//!
//! ```text
//! cargo run -p lintkit -- --workspace --write-baseline results/lint_baseline.json
//! ```

use crate::jsonio::{self, Value, BASELINE_SCHEMA, REPORT_SCHEMA};
use crate::RunReport;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Rules whose findings can never be pinned in a baseline.
const NEVER_PINNED: &[&str] = &["unused-pragma"];

/// Finding counts keyed by `(rule, workspace-relative path)`.
pub type Counts = BTreeMap<(String, String), u64>;

/// Aggregates a report into the `(rule, path) → count` table.
pub fn counts_of(report: &RunReport) -> Counts {
    let mut counts = Counts::new();
    for d in &report.diagnostics {
        let key = (d.rule.to_string(), d.path.display().to_string());
        *counts.entry(key).or_insert(0) += 1;
    }
    counts
}

/// A parsed ratchet baseline.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// Pinned finding counts.
    pub counts: Counts,
}

impl Baseline {
    /// Parses a baseline document, validating the schema tag.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let v = jsonio::parse(src)?;
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != BASELINE_SCHEMA {
            return Err(format!(
                "baseline schema mismatch: got `{schema}`, want `{BASELINE_SCHEMA}`"
            ));
        }
        let mut counts = Counts::new();
        for entry in v.get("counts").and_then(Value::as_arr).unwrap_or(&[]) {
            let rule = entry.get("rule").and_then(Value::as_str).unwrap_or("");
            let path = entry.get("path").and_then(Value::as_str).unwrap_or("");
            let count = entry.get("count").and_then(Value::as_u64).unwrap_or(0);
            if rule.is_empty() || path.is_empty() {
                return Err("baseline entry missing rule/path".to_string());
            }
            counts.insert((rule.to_string(), path.to_string()), count);
        }
        Ok(Baseline { counts })
    }

    /// Renders a baseline document (stable order, trailing newline).
    pub fn render(counts: &Counts) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{BASELINE_SCHEMA}\",");
        let _ = writeln!(out, "  \"counts\": [");
        let pinnable: Vec<_> = counts
            .iter()
            .filter(|((rule, _), _)| !NEVER_PINNED.contains(&rule.as_str()))
            .collect();
        for (i, ((rule, path), count)) in pinnable.iter().enumerate() {
            let comma = if i + 1 == pinnable.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"count\": {}}}{comma}",
                jsonio::escape(rule),
                jsonio::escape(path),
                count
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// One ratchet regression: a `(rule, path)` above its pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative file.
    pub path: String,
    /// Current finding count.
    pub current: u64,
    /// Pinned count (0 when the pair is not in the baseline).
    pub pinned: u64,
}

/// Result of diffing a report against the baseline.
#[derive(Debug, Default)]
pub struct RatchetDiff {
    /// New findings (fail the gate).
    pub regressions: Vec<Regression>,
    /// Pairs now *below* their pin — fixed debt; re-base to lock in.
    pub improvements: Vec<Regression>,
    /// Total legacy findings covered by pins.
    pub pinned_total: u64,
}

/// Diffs report counts against the baseline. `unused-pragma` findings
/// are regressions regardless of any pin.
pub fn diff(current: &Counts, baseline: &Baseline) -> RatchetDiff {
    let mut out = RatchetDiff::default();
    for ((rule, path), &cur) in current {
        let pinned = if NEVER_PINNED.contains(&rule.as_str()) {
            0
        } else {
            baseline
                .counts
                .get(&(rule.clone(), path.clone()))
                .copied()
                .unwrap_or(0)
        };
        if cur > pinned {
            out.regressions.push(Regression {
                rule: rule.clone(),
                path: path.clone(),
                current: cur,
                pinned,
            });
        } else {
            out.pinned_total += cur;
            if cur < pinned {
                out.improvements.push(Regression {
                    rule: rule.clone(),
                    path: path.clone(),
                    current: cur,
                    pinned,
                });
            }
        }
    }
    // Pins whose file went fully clean are improvements too.
    for ((rule, path), &pinned) in &baseline.counts {
        if pinned > 0 && !current.contains_key(&(rule.clone(), path.clone())) {
            out.improvements.push(Regression {
                rule: rule.clone(),
                path: path.clone(),
                current: 0,
                pinned,
            });
        }
    }
    out
}

/// Renders the machine-readable report (`contory-lint/1`).
pub fn render_report(report: &RunReport, sim_visible: &BTreeSet<String>) -> String {
    let counts = counts_of(report);
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{REPORT_SCHEMA}\",");
    let _ = writeln!(out, "  \"files\": {},", report.files);
    let _ = writeln!(out, "  \"allowed\": {},", report.allowed);
    let _ = write!(out, "  \"sim_visible\": [");
    for (i, k) in sim_visible.iter().enumerate() {
        let comma = if i + 1 == sim_visible.len() { "" } else { ", " };
        let _ = write!(out, "\"{}\"{comma}", jsonio::escape(k));
    }
    let _ = writeln!(out, "],");
    let _ = writeln!(out, "  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let comma = if i + 1 == report.diagnostics.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"msg\": \"{}\"}}{comma}",
            jsonio::escape(d.rule),
            jsonio::escape(&d.path.display().to_string()),
            d.line,
            d.col,
            jsonio::escape(&d.msg)
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"counts\": [");
    for (i, ((rule, path), count)) in counts.iter().enumerate() {
        let comma = if i + 1 == counts.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"count\": {}}}{comma}",
            jsonio::escape(rule),
            jsonio::escape(path),
            count
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnostic;
    use std::path::PathBuf;

    fn report_with(entries: &[(&'static str, &str, usize)]) -> RunReport {
        let mut r = RunReport::default();
        for (rule, path, n) in entries {
            for i in 0..*n {
                r.diagnostics.push(Diagnostic {
                    rule,
                    path: PathBuf::from(path),
                    line: i as u32 + 1,
                    col: 1,
                    msg: "m".into(),
                });
            }
        }
        r
    }

    #[test]
    fn baseline_round_trip() {
        let report = report_with(&[
            ("panic-reachable", "crates/simkit/src/sim.rs", 3),
            ("float-order", "crates/core/src/monitor.rs", 1),
            ("unused-pragma", "crates/core/src/facade.rs", 1),
        ]);
        let counts = counts_of(&report);
        let rendered = Baseline::render(&counts);
        let parsed = Baseline::parse(&rendered).expect("parse");
        // unused-pragma is never pinned.
        assert_eq!(parsed.counts.len(), 2);
        assert_eq!(
            parsed.counts
                .get(&("panic-reachable".into(), "crates/simkit/src/sim.rs".into())),
            Some(&3)
        );
    }

    #[test]
    fn ratchet_polarity() {
        let baseline = Baseline::parse(&Baseline::render(&counts_of(&report_with(&[
            ("panic-reachable", "a.rs", 2),
            ("float-order", "b.rs", 1),
        ]))))
        .expect("parse");
        // Same counts: clean.
        let same = counts_of(&report_with(&[
            ("panic-reachable", "a.rs", 2),
            ("float-order", "b.rs", 1),
        ]));
        let d = diff(&same, &baseline);
        assert!(d.regressions.is_empty());
        assert_eq!(d.pinned_total, 3);
        // One more in a pinned file: regression.
        let worse = counts_of(&report_with(&[("panic-reachable", "a.rs", 3)]));
        let d = diff(&worse, &baseline);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].pinned, 2);
        // A new (rule, path) pair: regression.
        let novel = counts_of(&report_with(&[("shard-shared-state", "c.rs", 1)]));
        assert_eq!(diff(&novel, &baseline).regressions.len(), 1);
        // Fewer than pinned: improvement, not regression.
        let better = counts_of(&report_with(&[("panic-reachable", "a.rs", 1)]));
        let d = diff(&better, &baseline);
        assert!(d.regressions.is_empty());
        assert_eq!(d.improvements.len(), 2); // a.rs below pin + b.rs gone
        // unused-pragma is always a regression, pinned or not.
        let stale = counts_of(&report_with(&[("unused-pragma", "a.rs", 1)]));
        assert_eq!(diff(&stale, &baseline).regressions.len(), 1);
    }
}
