//! A small hand-rolled Rust lexer.
//!
//! The linter does not need a real parse tree — every rule in the catalog
//! is a *token-sequence* pattern (`Instant :: now`, `. unwrap ( )`, …).
//! What it does need, and what a regex grep cannot give it, is to be
//! **comment- and string-aware**: `/// let x = map.unwrap();` in a doc
//! comment, `"HashMap"` in a string literal, or `r#"thread::sleep"#` in a
//! raw string must never fire a diagnostic.
//!
//! The lexer therefore produces:
//!
//! - a flat stream of [`Tok`]s (identifiers, punctuation, literals,
//!   lifetimes) with 1-based `line:col` positions, and
//! - the set of [`Pragma`]s found in comments (`// lint:allow(rule-a,
//!   rule-b)`), each tagged with whether the comment stood alone on its
//!   line (in which case it suppresses the *next* line, not its own).
//!
//! Numeric literals swallow their fractional part (`1.5` never emits a
//! `.` punct) and `'a` lifetimes are distinguished from `'a'` char
//! literals, so downstream needle-matching stays free of false hits.

/// Kind of a lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`, …).
    Ident,
    /// Punctuation. Single char, except `::` which is fused into one
    /// token because every qualified-path needle wants it.
    Punct,
    /// String / raw-string / byte-string / char / numeric literal.
    /// The text is not preserved (no rule looks inside literals).
    Literal,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

/// One lexed token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (empty for [`TokKind::Literal`]).
    pub text: String,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in chars).
    pub col: u32,
}

impl Tok {
    /// True if this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True if this is the punctuation `p` (e.g. `"::"`, `"."`).
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

/// A `lint:allow(...)` pragma found in a comment.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// Rules named inside the parentheses.
    pub rules: Vec<String>,
    /// Line the comment starts on.
    pub line: u32,
    /// 1-based column the comment starts on (for pragma-hygiene
    /// diagnostics such as `unused-pragma`).
    pub col: u32,
    /// True if no token precedes the comment on its line: the pragma
    /// then applies to the *following* line instead of its own.
    pub standalone: bool,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<Tok>,
    /// All `lint:allow` pragmas, in source order.
    pub pragmas: Vec<Pragma>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extracts every `lint:allow(a, b)` occurrence from a comment body.
fn pragmas_in_comment(body: &str, line: u32, col: u32, standalone: bool, out: &mut Vec<Pragma>) {
    let mut rest = body;
    while let Some(idx) = rest.find("lint:allow(") {
        let after = &rest[idx + "lint:allow(".len()..];
        let Some(close) = after.find(')') else { break };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if !rules.is_empty() {
            out.push(Pragma {
                rules,
                line,
                col,
                standalone,
            });
        }
        rest = &after[close + 1..];
    }
}

/// Lexes `src` into tokens and pragmas. Never fails: malformed input
/// (e.g. an unterminated string) simply truncates the stream, which for
/// a linter is the right degradation.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    // Tracks whether any *token* has been emitted on the current line,
    // to classify comments as standalone or trailing.
    let mut last_tok_line = 0u32;

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                cur.bump();
            }
            '/' if cur.peek_at(1) == Some('/') => {
                // Line comment (incl. /// and //! doc comments).
                let mut body = String::new();
                while let Some(ch) = cur.peek() {
                    if ch == '\n' {
                        break;
                    }
                    body.push(ch);
                    cur.bump();
                }
                // Doc comments (`///`, `//!`) are documentation, not
                // directives: `lint:allow` examples inside them must
                // not register as pragmas (pragma hygiene would flag
                // them as stale).
                let doc = body.starts_with("///") || body.starts_with("//!");
                if !doc {
                    pragmas_in_comment(&body, line, col, last_tok_line != line, &mut out.pragmas);
                }
            }
            '/' if cur.peek_at(1) == Some('*') => {
                // Block comment, nestable.
                let mut body = String::new();
                let standalone = last_tok_line != line;
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(ch), _) => {
                            body.push(ch);
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                // `/**` / `/*!` doc blocks: documentation, not directives.
                let doc = body.starts_with('*') || body.starts_with('!');
                if !doc {
                    pragmas_in_comment(&body, line, col, standalone, &mut out.pragmas);
                }
            }
            '"' => {
                cur.bump();
                skip_string_body(&mut cur);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                    col,
                });
                last_tok_line = line;
            }
            'r' | 'b' if starts_prefixed_literal(&cur) => {
                skip_prefixed_literal(&mut cur);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                    col,
                });
                last_tok_line = line;
            }
            '\'' => {
                // Lifetime or char literal.
                let next = cur.peek_at(1);
                let after = cur.peek_at(2);
                let is_lifetime = matches!(next, Some(n) if is_ident_start(n))
                    && after != Some('\'');
                if is_lifetime {
                    cur.bump(); // '
                    let mut text = String::new();
                    while let Some(ch) = cur.peek() {
                        if !is_ident_continue(ch) {
                            break;
                        }
                        text.push(ch);
                        cur.bump();
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                        col,
                    });
                } else {
                    cur.bump(); // opening '
                    if cur.peek() == Some('\\') {
                        cur.bump();
                        cur.bump(); // escaped char
                        // \u{...} escapes
                        while cur.peek().is_some_and(|ch| ch != '\'') {
                            cur.bump();
                        }
                    } else {
                        cur.bump(); // the char
                    }
                    if cur.peek() == Some('\'') {
                        cur.bump(); // closing '
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                        col,
                    });
                }
                last_tok_line = line;
            }
            d if d.is_ascii_digit() => {
                skip_number(&mut cur);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                    col,
                });
                last_tok_line = line;
            }
            i if is_ident_start(i) => {
                let mut text = String::new();
                while let Some(ch) = cur.peek() {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
                last_tok_line = line;
            }
            ':' if cur.peek_at(1) == Some(':') => {
                cur.bump();
                cur.bump();
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: "::".into(),
                    line,
                    col,
                });
                last_tok_line = line;
            }
            p => {
                cur.bump();
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: p.to_string(),
                    line,
                    col,
                });
                last_tok_line = line;
            }
        }
    }
    out
}

/// True if the cursor sits on `r"`, `r#`, `b"`, `b'`, `br"`, `br#`.
fn starts_prefixed_literal(cur: &Cursor) -> bool {
    match (cur.peek(), cur.peek_at(1), cur.peek_at(2)) {
        (Some('r'), Some('"' | '#'), _) => true,
        (Some('b'), Some('"' | '\''), _) => true,
        (Some('b'), Some('r'), Some('"' | '#')) => true,
        _ => false,
    }
}

/// Consumes a raw/byte string or byte-char literal from its prefix.
fn skip_prefixed_literal(cur: &mut Cursor) {
    let mut raw = false;
    while let Some(c) = cur.peek() {
        match c {
            'r' => {
                raw = true;
                cur.bump();
            }
            'b' => {
                cur.bump();
            }
            _ => break,
        }
    }
    if raw {
        // r#*" ... "#*
        let mut hashes = 0usize;
        while cur.peek() == Some('#') {
            hashes += 1;
            cur.bump();
        }
        if cur.peek() == Some('"') {
            cur.bump();
        }
        'outer: while let Some(c) = cur.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if cur.peek_at(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    } else if cur.peek() == Some('"') {
        cur.bump();
        skip_string_body(cur);
    } else if cur.peek() == Some('\'') {
        // byte char b'x'
        cur.bump();
        if cur.peek() == Some('\\') {
            cur.bump();
        }
        cur.bump();
        if cur.peek() == Some('\'') {
            cur.bump();
        }
    }
}

/// Consumes the body of a `"` string, opening quote already eaten.
fn skip_string_body(cur: &mut Cursor) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a numeric literal: ints, floats, hex, suffixes, `_` groups.
fn skip_number(cur: &mut Cursor) {
    // Leading digits / hex / suffix chars.
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.bump();
        } else if c == '.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
            // Fractional part: consume the dot so `1.5` never yields a
            // `.` punct (keeps the `.unwrap()` needle clean).
            cur.bump();
        } else if (c == '+' || c == '-')
            && matches!(cur.chars.get(cur.pos.wrapping_sub(1)), Some('e' | 'E'))
        {
            // Exponent sign: 1e-6
            cur.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r###"
            // Instant::now in a comment
            /* HashMap in a block /* nested */ comment */
            let s = "thread::sleep";
            let r = r#"SystemTime::now"#;
            let ok = real_ident;
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"thread".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
    }

    #[test]
    fn float_literal_swallows_dot() {
        let toks = lex("let x = 1.5.max(2.0);").tokens;
        // exactly one '.' punct: the method call on the float
        let dots = toks.iter().filter(|t| t.is_punct(".")).count();
        assert_eq!(dots, 1);
    }

    #[test]
    fn double_colon_fuses() {
        let toks = lex("std::process::exit(1)").tokens;
        assert_eq!(toks.iter().filter(|t| t.is_punct("::")).count(), 2);
    }

    #[test]
    fn pragma_trailing_vs_standalone() {
        let src = "let a = 1; // lint:allow(rule-x)\n// lint:allow(rule-y, rule-z)\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 2);
        assert!(!lexed.pragmas[0].standalone);
        assert_eq!(lexed.pragmas[0].rules, vec!["rule-x"]);
        assert!(lexed.pragmas[1].standalone);
        assert_eq!(lexed.pragmas[1].rules, vec!["rule-y", "rule-z"]);
    }

    #[test]
    fn byte_and_raw_literals_skipped() {
        let ids = idents(r##"let b = b"HashMap"; let c = b'x'; let r = br#"Instant"#;"##);
        assert_eq!(ids, vec!["let", "b", "let", "c", "let", "r"]);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("ab\n  cd").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
