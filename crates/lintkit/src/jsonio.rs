//! Minimal hand-rolled JSON for the machine-readable lint report and
//! the ratchet baseline (the crate stays dependency-free).
//!
//! Two schemas, both versioned:
//!
//! - `contory-lint/1` — the full report emitted by `--json`: rule
//!   catalog hits, per-file diagnostics, the computed sim-visible crate
//!   set and the `(rule, path) → count` table the ratchet operates on.
//! - `contory-lint-baseline/1` — the checked-in ratchet baseline
//!   (`results/lint_baseline.json`): just the count table. Legacy
//!   findings are pinned; any *new* finding (a count above baseline or
//!   a `(rule, path)` pair the baseline never saw) fails the gate, the
//!   same polarity as benchkit's `results/baseline.json` bands.
//!
//! The parser accepts exactly the subset the renderer produces
//! (objects, arrays, strings with `\"`/`\\`/`\n` escapes, unsigned
//! integers) — enough to round-trip our own files, nothing more.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Report schema identifier.
pub const REPORT_SCHEMA: &str = "contory-lint/1";
/// Baseline schema identifier.
pub const BASELINE_SCHEMA: &str = "contory-lint-baseline/1";

/// Escapes a string for JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Parsing (subset)
// ---------------------------------------------------------------------------

/// A parsed JSON value (subset: no floats, no null/bool needed yet).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// String.
    Str(String),
    /// Unsigned integer.
    Num(u64),
    /// Array.
    Arr(Vec<Value>),
    /// Object with insertion-stable (sorted) keys.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array items, if an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a JSON document (the renderer's subset). Returns a
/// human-readable error on malformed input.
pub fn parse(src: &str) -> Result<Value, String> {
    let chars: Vec<char> = src.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(c: &[char], pos: &mut usize) {
    while c.get(*pos).is_some_and(|ch| ch.is_whitespace()) {
        *pos += 1;
    }
}

fn parse_value(c: &[char], pos: &mut usize) -> Result<Value, String> {
    skip_ws(c, pos);
    match c.get(*pos) {
        Some('"') => parse_string(c, pos).map(Value::Str),
        Some('{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(c, pos);
            if c.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(c, pos);
                let key = parse_string(c, pos)?;
                skip_ws(c, pos);
                if c.get(*pos) != Some(&':') {
                    return Err(format!("expected `:` at offset {pos}"));
                }
                *pos += 1;
                let val = parse_value(c, pos)?;
                map.insert(key, val);
                skip_ws(c, pos);
                match c.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(c, pos);
            if c.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Value::Arr(arr));
            }
            loop {
                arr.push(parse_value(c, pos)?);
                skip_ws(c, pos);
                match c.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Value::Arr(arr));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                }
            }
        }
        Some(d) if d.is_ascii_digit() => {
            let mut n: u64 = 0;
            while let Some(d) = c.get(*pos).and_then(|ch| ch.to_digit(10)) {
                n = n.saturating_mul(10).saturating_add(d as u64);
                *pos += 1;
            }
            Ok(Value::Num(n))
        }
        other => Err(format!("unexpected {other:?} at offset {pos}")),
    }
}

fn parse_string(c: &[char], pos: &mut usize) -> Result<String, String> {
    if c.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&ch) = c.get(*pos) {
        *pos += 1;
        match ch {
            '"' => return Ok(out),
            '\\' => {
                let esc = c.get(*pos).copied().unwrap_or('"');
                *pos += 1;
                match esc {
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'u' => {
                        let hex: String = c[*pos..(*pos + 4).min(c.len())].iter().collect();
                        *pos = (*pos + 4).min(c.len());
                        if let Ok(n) = u32::from_str_radix(&hex, 16) {
                            out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                        }
                    }
                    e => out.push(e),
                }
            }
            ch => out.push(ch),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_subset() {
        let src = r#"{"schema":"contory-lint-baseline/1","counts":[{"rule":"panic-reachable","path":"crates/simkit/src/sim.rs","count":3}]}"#;
        let v = parse(src).expect("parse");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some(BASELINE_SCHEMA)
        );
        let counts = v.get("counts").and_then(Value::as_arr).expect("counts");
        assert_eq!(counts[0].get("count").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn escapes_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let v = parse("\"a\\\"b\\\\c\\nd\"").expect("parse");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
    }
}
