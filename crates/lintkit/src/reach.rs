//! The reachability / taint engine: sim-visibility is **computed**, not
//! declared.
//!
//! PR 2's linter trusted a hand-maintained `SIM_VISIBLE` crate list — a
//! new crate or a re-exported helper silently escaped the determinism
//! gate. This module replaces the list with three taints propagated
//! over the symbol graph ([`crate::graph`]):
//!
//! - **sim** — code that can execute under simulated time and therefore
//!   feeds snapshots, transcripts and `FailoverReport`s. Entry points
//!   (all detected structurally, no crate names involved):
//!   - methods of `impl Sim`, `impl ShardSim` and `impl EventCtx`
//!     blocks (the event-engine itself);
//!   - every method of an `impl Scenario for …` block and every
//!     default method of a `trait Scenario` declaration (the §6
//!     harness drives these);
//!   - any function that *schedules* work (`schedule_at`,
//!     `schedule_in`, `schedule_repeating`, `schedule_at_sharded`,
//!     `schedule_in_sharded`, `schedule_self`, `schedule`): its body
//!     lexically contains the scheduled closure, so everything the
//!     testbed schedules is tainted through its scheduler.
//! - **shard** — code reachable from shard-parallel stepping: methods
//!   of `impl ShardSim` / `impl EventCtx`, any function referencing
//!   the `ShardSim` type (it builds or drives a partitioned engine and
//!   its handler closures run on worker threads), and callers of the
//!   sharded scheduling surface (`schedule_self`,
//!   `schedule_at_sharded`, `schedule_in_sharded`, `send_many`).
//! - **hot** — code reachable from the provisioning hot paths: the
//!   public functions of the `core` crate (package `contory`), i.e.
//!   the middleware surface a phone application calls. `panic-reachable`
//!   patrols this taint.
//!
//! Taints propagate along resolved call/reference edges, so a
//! violation three calls deep in a crate the old list never named is
//! caught, while genuinely unreachable code (e.g. an audited `unwrap`
//! behind a bin-only path) stops needing pragmas.

use crate::graph::Workspace;
use std::collections::BTreeSet;

/// Scheduling functions whose callers become sim entry points.
const SCHEDULE_NAMES: &[&str] = &[
    "schedule",
    "schedule_at",
    "schedule_at_sharded",
    "schedule_in",
    "schedule_in_sharded",
    "schedule_repeating",
    "schedule_self",
];

/// Sharded scheduling surface: callers join the shard taint roots.
const SHARD_SCHEDULE_NAMES: &[&str] =
    &["schedule_self", "schedule_at_sharded", "schedule_in_sharded", "send_many"];

/// Self types whose impl methods are simulation-engine entry points.
const ENGINE_TYPES: &[&str] = &["Sim", "ShardSim", "EventCtx"];

/// Self types whose impl methods run on shard worker threads.
const SHARD_TYPES: &[&str] = &["ShardSim", "EventCtx"];

/// The scenario-harness trait: impls are driven by the §6 suite.
const SCENARIO_TRAIT: &str = "Scenario";

/// Crate keys whose public functions seed the hot-path taint.
const HOT_CRATES: &[&str] = &["core"];

/// Per-function taint flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Taint {
    /// Reachable from a simulation entry point.
    pub sim: bool,
    /// Reachable from shard-parallel stepping.
    pub shard: bool,
    /// Reachable from a provisioning hot path.
    pub hot: bool,
}

/// Computed reachability over one [`Workspace`].
#[derive(Debug, Default)]
pub struct Reach {
    /// Taint flags, indexed like [`Workspace::fns`].
    pub taint: Vec<Taint>,
    /// Crates containing at least one sim-tainted function — the
    /// computed successor of the old `SIM_VISIBLE` list.
    pub sim_visible: BTreeSet<String>,
}

fn ref_names(ws: &Workspace, id: usize) -> impl Iterator<Item = &str> {
    ws.fns[id]
        .refs
        .iter()
        .filter(|r| r.called || r.method)
        .filter_map(|r| r.segments.last().map(String::as_str))
}

fn is_sim_root(ws: &Workspace, id: usize) -> bool {
    let f = &ws.fns[id];
    if f.self_type.as_deref().is_some_and(|t| ENGINE_TYPES.contains(&t)) {
        return true;
    }
    if f.trait_impl.as_deref() == Some(SCENARIO_TRAIT)
        || f.self_type.as_deref() == Some(SCENARIO_TRAIT)
    {
        return true;
    }
    ref_names(ws, id).any(|n| SCHEDULE_NAMES.contains(&n))
}

fn is_shard_root(ws: &Workspace, id: usize) -> bool {
    let f = &ws.fns[id];
    if f.self_type.as_deref().is_some_and(|t| SHARD_TYPES.contains(&t)) {
        return true;
    }
    if f.refs.iter().any(|r| r.segments.iter().any(|s| s == "ShardSim")) {
        return true;
    }
    ref_names(ws, id).any(|n| SHARD_SCHEDULE_NAMES.contains(&n))
}

fn is_hot_root(ws: &Workspace, id: usize) -> bool {
    let f = &ws.fns[id];
    f.is_pub && HOT_CRATES.contains(&f.krate.as_str())
}

/// Computes all three taints over the workspace graph.
pub fn compute(ws: &Workspace) -> Reach {
    let n = ws.fns.len();
    // Adjacency, resolved once.
    let adj: Vec<Vec<u32>> = (0..n).map(|id| ws.edges(id as u32)).collect();
    let bfs = |roots: Vec<usize>| -> Vec<bool> {
        let mut seen = vec![false; n];
        let mut stack = Vec::new();
        for r in roots {
            if !seen[r] {
                seen[r] = true;
                stack.push(r);
            }
        }
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                let w = w as usize;
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        seen
    };
    let sim = bfs((0..n).filter(|&id| is_sim_root(ws, id)).collect());
    let shard = bfs((0..n).filter(|&id| is_shard_root(ws, id)).collect());
    let hot = bfs((0..n).filter(|&id| is_hot_root(ws, id)).collect());

    let mut taint = Vec::with_capacity(n);
    let mut sim_visible = BTreeSet::new();
    for id in 0..n {
        taint.push(Taint {
            sim: sim[id],
            shard: shard[id],
            hot: hot[id],
        });
        if sim[id] {
            sim_visible.insert(ws.fns[id].krate.clone());
        }
    }
    Reach { taint, sim_visible }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Workspace;
    use std::path::Path;

    /// The engine over the real repository: the computed sim-visible
    /// set must cover everything the retired hand list named. (The
    /// tier-1 superset assertion lives in `tests/workspace_clean.rs`;
    /// this is the fast in-crate version.)
    #[test]
    fn real_workspace_covers_retired_list() {
        let root = crate::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let ws = Workspace::analyze(&root).expect("analyze");
        let reach = compute(&ws);
        for krate in ["simkit", "radio", "smartmsg", "fuego", "core", "obskit", "benchkit"] {
            assert!(
                reach.sim_visible.contains(krate),
                "computed sim-visible set {:?} lost crate `{krate}` that the \
                 retired SIM_VISIBLE list named",
                reach.sim_visible
            );
        }
        // And the taint is not vacuously universal: the linter itself
        // must never be sim-visible (nothing schedulable calls it).
        assert!(
            !reach.sim_visible.contains("lintkit"),
            "lintkit cannot be sim-visible"
        );
    }
}
