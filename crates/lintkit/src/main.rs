//! CLI for the lintkit workspace analysis.
//!
//! ```text
//! cargo run -p lintkit -- --workspace                       # full analysis
//! cargo run -p lintkit -- --workspace --json                # machine-readable report
//! cargo run -p lintkit -- --workspace --baseline results/lint_baseline.json
//! cargo run -p lintkit -- --workspace --write-baseline results/lint_baseline.json
//! cargo run -p lintkit -- --sim-visible                     # computed crate set
//! cargo run -p lintkit -- --explain panic-reachable         # rule documentation
//! cargo run -p lintkit -- path/to/file.rs ...               # lint specific files
//! cargo run -p lintkit -- --list-rules                      # print the catalog
//! ```
//!
//! Exit status: 0 when clean (with `--baseline`: no ratchet regression),
//! 1 when any non-allowed diagnostic / regression was produced, 2 on
//! usage or I/O errors.

use lintkit::{
    catalog, find_workspace_root, fixture_directive, lint_file, ratchet, rules, Analysis,
    RunReport,
};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: lintkit [--workspace] [--root <dir>] [--json] [--sim-visible]\n\
         \x20              [--baseline <path>] [--write-baseline <path>]\n\
         \x20              [--list-rules] [--explain <rule>] [files...]\n\
         \n\
         --workspace            lint every workspace .rs file with computed reachability\n\
         --root <dir>           workspace root (default: auto-detected)\n\
         --json                 emit the machine-readable report (schema contory-lint/1)\n\
         --sim-visible          print the computed sim-visible crate set and exit\n\
         --baseline <path>      ratchet mode: fail only on findings above the pinned\n\
         \x20                      counts in <path> (schema contory-lint-baseline/1)\n\
         --write-baseline <path>  re-base: pin the current findings into <path>\n\
         --list-rules           print the rule catalog and exit\n\
         --explain <rule>       print the long-form documentation of one rule"
    );
    ExitCode::from(2)
}

fn print_diags(report: &RunReport) {
    for diag in &report.diagnostics {
        println!("{diag}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut list_rules = false;
    let mut json = false;
    let mut sim_visible = false;
    let mut explain: Option<String> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--list-rules" => list_rules = true,
            "--json" => json = true,
            "--sim-visible" => sim_visible = true,
            "--explain" => match it.next() {
                Some(rule) => explain = Some(rule),
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--write-baseline" => match it.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            other if other.starts_with('-') => return usage(),
            file => files.push(PathBuf::from(file)),
        }
    }

    if list_rules {
        println!("lintkit rule catalog:");
        for rule in catalog() {
            println!("  {:<20} {}", rule.name, rule.summary);
        }
        println!("\nsuppress a hit with `// lint:allow(<rule>)` on the same line");
        println!("(or standalone on the line above), plus a justification;");
        println!("`lintkit --explain <rule>` prints the full rationale.");
        return ExitCode::SUCCESS;
    }
    if let Some(name) = explain {
        let Some(rule) = rules::rule_by_name(&name) else {
            eprintln!("lintkit: unknown rule `{name}` (see --list-rules)");
            return ExitCode::from(2);
        };
        println!("{} — {}\n", rule.name, rule.summary);
        println!("{}", rule.explain);
        return ExitCode::SUCCESS;
    }
    if !workspace && !sim_visible && files.is_empty() {
        return usage();
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match root.or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("lintkit: cannot locate workspace root (try --root <dir>)");
            return ExitCode::from(2);
        }
    };

    // File-only invocations on fixture files skip the (costlier)
    // workspace analysis; anything else gets real reachability flags.
    let need_analysis = workspace
        || sim_visible
        || files.iter().any(|f| {
            std::fs::read_to_string(f)
                .map(|src| fixture_directive(&src).is_none())
                .unwrap_or(true)
        });
    let analysis = if need_analysis {
        match Analysis::analyze(&root) {
            Ok(a) => Some(a),
            Err(e) => {
                eprintln!("lintkit: workspace analysis failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    if sim_visible {
        let analysis = analysis.as_ref().expect("analysis present");
        for krate in analysis.sim_visible() {
            println!("{krate}");
        }
        return ExitCode::SUCCESS;
    }

    let mut report = RunReport::default();
    if workspace {
        report = analysis.as_ref().expect("analysis present").lint_all();
    }
    for file in &files {
        let path: &Path = file.as_ref();
        let graph_backed = analysis.as_ref().and_then(|a| {
            let abs = path
                .canonicalize()
                .unwrap_or_else(|_| path.to_path_buf());
            a.lint_path(&abs).or_else(|| a.lint_path(path))
        });
        let r = match graph_backed {
            Some(r) => r,
            None => match lint_file(&root, path) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("lintkit: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
        };
        report.diagnostics.extend(r.diagnostics);
        report.allowed += r.allowed;
        report.files += r.files;
    }

    let visible: BTreeSet<String> = analysis
        .as_ref()
        .map(|a| a.sim_visible().clone())
        .unwrap_or_default();

    if let Some(path) = write_baseline {
        let counts = ratchet::counts_of(&report);
        let rendered = ratchet::Baseline::render(&counts);
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("lintkit: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "lintkit: baseline written to {} ({} finding(s) pinned)",
            path.display(),
            report.diagnostics.len()
        );
        return ExitCode::SUCCESS;
    }

    // With a baseline, the ratchet diff decides the exit code in both
    // human and JSON modes; loading errors are usage errors either way.
    let ratchet_diff = match &baseline {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("lintkit: read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let base = match ratchet::Baseline::parse(&src) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("lintkit: baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            Some(ratchet::diff(&ratchet::counts_of(&report), &base))
        }
        None => None,
    };

    if json {
        print!("{}", ratchet::render_report(&report, &visible));
        let clean = match &ratchet_diff {
            Some(diff) => diff.regressions.is_empty(),
            None => report.is_clean(),
        };
        return if clean {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if let (Some(diff), Some(path)) = (ratchet_diff, baseline) {
        if !diff.regressions.is_empty() {
            // Print the concrete diagnostics behind each regressed
            // (rule, path) pair so the offending lines are clickable.
            for reg in &diff.regressions {
                for d in &report.diagnostics {
                    if d.rule == reg.rule && d.path.display().to_string() == reg.path {
                        println!("{d}");
                    }
                }
                println!(
                    "lintkit: ratchet regression: {} finding(s) of `{}` in {} (baseline pins {})",
                    reg.current, reg.rule, reg.path, reg.pinned
                );
            }
            println!(
                "lintkit: {} ratchet regression(s); fix them or re-base deliberately with \
                 --write-baseline {}",
                diff.regressions.len(),
                path.display()
            );
            return ExitCode::FAILURE;
        }
        for imp in &diff.improvements {
            println!(
                "lintkit: note: `{}` in {} improved ({} → {}); re-base with --write-baseline \
                 to lock in",
                imp.rule, imp.path, imp.pinned, imp.current
            );
        }
        println!(
            "lintkit: ratchet clean — {} file(s), {} legacy finding(s) pinned, {} allowed \
             by pragma",
            report.files,
            diff.pinned_total,
            report.allowed
        );
        return ExitCode::SUCCESS;
    }

    print_diags(&report);
    if report.is_clean() {
        println!(
            "lintkit: clean — {} file(s) scanned, {} hit(s) allowed by pragma",
            report.files, report.allowed
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "lintkit: {} diagnostic(s) in {} file(s) ({} allowed by pragma)",
            report.diagnostics.len(),
            report.files,
            report.allowed
        );
        ExitCode::FAILURE
    }
}
