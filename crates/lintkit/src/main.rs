//! CLI for the lintkit static pass.
//!
//! ```text
//! cargo run -p lintkit -- --workspace          # lint the whole repo
//! cargo run -p lintkit -- path/to/file.rs ...  # lint specific files
//! cargo run -p lintkit -- --list-rules         # print the catalog
//! ```
//!
//! Exit status: 0 when clean, 1 when any non-allowed diagnostic was
//! produced, 2 on usage or I/O errors.

use lintkit::{catalog, find_workspace_root, lint_file, lint_workspace, RunReport};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: lintkit [--workspace] [--root <dir>] [--list-rules] [files...]\n\
         \n\
         --workspace    lint every workspace .rs file (skips target/, fixtures/)\n\
         --root <dir>   workspace root (default: auto-detected)\n\
         --list-rules   print the rule catalog and exit"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--list-rules" => list_rules = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            other if other.starts_with('-') => return usage(),
            file => files.push(PathBuf::from(file)),
        }
    }

    if list_rules {
        println!("lintkit rule catalog:");
        for rule in catalog() {
            println!("  {:<20} {}", rule.name, rule.summary);
        }
        println!("\nsuppress a hit with `// lint:allow(<rule>)` on the same line");
        println!("(or standalone on the line above), plus a justification.");
        return ExitCode::SUCCESS;
    }
    if !workspace && files.is_empty() {
        return usage();
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match root.or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("lintkit: cannot locate workspace root (try --root <dir>)");
            return ExitCode::from(2);
        }
    };

    let mut report = RunReport::default();
    if workspace {
        match lint_workspace(&root) {
            Ok(r) => report = r,
            Err(e) => {
                eprintln!("lintkit: workspace walk failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for file in &files {
        let path: &Path = file.as_ref();
        match lint_file(&root, path) {
            Ok(r) => {
                report.diagnostics.extend(r.diagnostics);
                report.allowed += r.allowed;
                report.files += r.files;
            }
            Err(e) => {
                eprintln!("lintkit: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    for diag in &report.diagnostics {
        println!("{diag}");
    }
    if report.is_clean() {
        println!(
            "lintkit: clean — {} file(s) scanned, {} hit(s) allowed by pragma",
            report.files, report.allowed
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "lintkit: {} diagnostic(s) in {} file(s) ({} allowed by pragma)",
            report.diagnostics.len(),
            report.files,
            report.allowed
        );
        ExitCode::FAILURE
    }
}
