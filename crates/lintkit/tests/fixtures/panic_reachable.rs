// lint-fixture: crate=core kind=lib reach=hot
//! Fixture: panic-reachable. Code the reachability engine proves
//! reachable from core's provisioning surface (`reach=hot` forces the
//! taint in single-file mode) must propagate errors, not panic.

fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("value present")
}

fn bad_panic() {
    panic!("unrecoverable");
}

fn bad_unreachable(n: u32) -> u32 {
    match n {
        0 => 1,
        _ => unreachable!("callers only pass zero"),
    }
}

fn bad_index(xs: &[u32], i: usize) -> u32 {
    xs[i]
}

fn bad_slice(xs: &[u32]) -> &[u32] {
    &xs[1..]
}

// Non-panicking shapes are fine: fallbacks, propagation, `.get()`.
fn fine_fallbacks(v: Option<u32>) -> u32 {
    v.unwrap_or(0) + v.unwrap_or_else(|| 1) + v.unwrap_or_default()
}

fn fine_propagation(v: Option<u32>) -> Result<u32, String> {
    v.ok_or_else(|| "missing".to_string())
}

fn fine_get(xs: &[u32], i: usize) -> Option<u32> {
    xs.get(i).copied()
}

// Array types, attributes and literals are not indexing expressions.
#[derive(Clone, Copy)]
struct Frame {
    buf: [u8; 4],
}

fn fine_array() -> [u8; 2] {
    let pair = [1, 2];
    pair
}

fn allowed_invariant(v: Option<u32>) -> u32 {
    v.expect("set in constructor") // lint:allow(panic-reachable) construction invariant
}

#[cfg(test)]
mod tests {
    // Tests may unwrap freely.
    #[test]
    fn unwraps_are_fine_here() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let r: Result<u32, ()> = Ok(4);
        r.expect("ok");
        let xs = [1u32, 2];
        assert_eq!(xs[0], 1);
        if false {
            panic!("test-only panic");
        }
    }
}
