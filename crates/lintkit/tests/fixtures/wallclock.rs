// lint-fixture: crate=radio kind=lib
//! Fixture: wallclock-ban. Simulated code must take time from `Sim`.

fn bad_instant() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_micros() as u64
}

fn bad_system_time() {
    let _ = std::time::SystemTime::now();
}

fn bad_sleep() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}

fn allowed_with_pragma() {
    let _ = std::time::Instant::now(); // lint:allow(wallclock-ban) calibration probe
}

fn fine_sim_time(sim: &simkit::Sim) -> simkit::SimTime {
    // The sanctioned clock.
    sim.now()
}

// A doc example must never fire:
/// let t = Instant::now();
fn doc_example_is_ignored() {}

fn string_literal_is_ignored() -> &'static str {
    "Instant::now and thread::sleep in a string"
}
