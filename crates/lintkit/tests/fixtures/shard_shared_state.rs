// lint-fixture: crate=simkit kind=lib reach=shard
//! Fixture: shard-shared-state. Paths reachable from shard-parallel
//! stepping must not share mutable state across workers: outputs would
//! depend on thread interleaving, breaking shard-count invariance.

use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering;

static mut SCRATCH: u64 = 0;

fn bad_relaxed(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn bad_acquire(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Acquire)
}

fn bad_release(counter: &AtomicU64) {
    counter.store(0, Ordering::Release);
}

// SeqCst atomics are the sanctioned shared counter.
fn fine_seqcst(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::SeqCst)
}

// Per-shard accumulation merged after the barrier is the real fix.
fn fine_per_shard_merge(per_shard: &[u64]) -> u64 {
    let mut total = 0u64;
    for t in per_shard {
        total = total.wrapping_add(*t);
    }
    total
}

struct DiagOnly {
    // lint:allow(shard-shared-state) drop-only diagnostics mutex, value never reaches outputs
    last_error: std::sync::Mutex<Option<String>>,
}

#[cfg(test)]
mod tests {
    // Test harness code may lock freely.
    use std::sync::Mutex;

    fn scratch() -> Mutex<u32> {
        Mutex::new(0)
    }
}
