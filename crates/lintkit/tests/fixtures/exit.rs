// lint-fixture: crate=smartmsg kind=lib
//! Fixture: no-exit. `process::exit` skips destructors (unflushed
//! traces, half-written reports) and kills the host process; only bin
//! targets may decide to exit.

fn bad_exit() {
    std::process::exit(1);
}

fn bad_exit_imported() {
    use std::process;
    process::exit(2);
}

fn fine_result() -> Result<(), String> {
    // Library code signals failure through its return type.
    Err("let main decide".into())
}

fn allowed_with_pragma() {
    std::process::exit(3); // lint:allow(no-exit) documented guard for a fatal double-borrow
}
