// lint-fixture: crate=core kind=lib
//! Fixture: no-unwrap-in-core. Middleware library code propagates
//! `ContoryError` instead of panicking.

fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("value present")
}

fn bad_panic() {
    panic!("unrecoverable");
}

fn fine_fallbacks(v: Option<u32>) -> u32 {
    v.unwrap_or(0) + v.unwrap_or_else(|| 1) + v.unwrap_or_default()
}

fn fine_propagation(v: Option<u32>) -> Result<u32, String> {
    v.ok_or_else(|| "missing".to_string())
}

fn allowed_invariant(v: Option<u32>) -> u32 {
    v.expect("set in constructor") // lint:allow(no-unwrap-in-core) construction invariant
}

#[cfg(test)]
mod tests {
    // Tests may unwrap freely.
    #[test]
    fn unwraps_are_fine_here() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let r: Result<u32, ()> = Ok(4);
        r.expect("ok");
        if false {
            panic!("test-only panic");
        }
    }
}
