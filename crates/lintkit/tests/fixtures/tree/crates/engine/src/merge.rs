//! Merge helper: only ever called from the `app` crate through the
//! manifest-renamed `enginex` alias.

pub fn merge_events(at: u64) -> u64 {
    at.wrapping_mul(3)
}
