//! Fixture workspace: the event engine crate. `impl Sim` / `impl
//! ShardSim` methods seed the sim and shard taints; `merge::merge_events`
//! is deliberately *uncalled within this crate* so its sim taint can
//! only arrive over a cross-crate edge from `app`.

pub mod merge;

/// Single-threaded event engine.
pub struct Sim {
    now: u64,
}

impl Sim {
    pub fn schedule_at(&mut self, at: u64) {
        self.dispatch(at);
    }

    fn dispatch(&mut self, at: u64) {
        self.now = at;
    }
}

/// Shard-parallel event engine.
pub struct ShardSim {
    shard: usize,
}

impl ShardSim {
    pub fn step_shard(&mut self) -> usize {
        self.shard += 1;
        self.shard
    }
}
