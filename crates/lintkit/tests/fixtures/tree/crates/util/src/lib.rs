//! Fixture workspace: a leaf crate nothing reaches. Its one function
//! must come out of the taint engine untainted, and the crate must not
//! appear in the computed sim-visible set.

pub fn idle() -> u64 {
    1
}
