//! Fixture workspace: the hot-path crate (dir `core`, so its public
//! functions seed the hot taint exactly like the real middleware
//! surface). `provide` reaches `plan_route` through the `app-core`
//! dependency's re-export, so the hot taint crosses two files.

use app_core::plan_route;

pub fn provide(q: u64) -> u64 {
    validate(q);
    plan_route(q)
}

fn validate(q: u64) -> u64 {
    q
}
