//! Fixture workspace: the application crate (package `app-core`, dir
//! `app` — exercises the package-name / directory-key split). `drive`
//! is a sim root (it schedules), and its calls carry the taint across
//! the crate boundary into `enginex::merge::merge_events` and down
//! through the `pub use` re-export into `inner::score`.

mod inner;

pub use inner::plan_route;

use enginex::merge::merge_events;
use enginex::Sim;

pub fn drive(sim: &mut Sim) -> u64 {
    sim.schedule_at(5);
    merge_events(plan_route(3))
}
