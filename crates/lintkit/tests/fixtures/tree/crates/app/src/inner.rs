//! Re-exported planning helpers: `plan_route` is surfaced at the crate
//! root via `pub use`, so cross-crate callers resolve through the
//! re-export; `score` is private and only tainted transitively.

pub fn plan_route(hops: u64) -> u64 {
    score(hops)
}

fn score(hops: u64) -> u64 {
    hops.wrapping_mul(2)
}
