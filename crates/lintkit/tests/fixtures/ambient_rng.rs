// lint-fixture: crate=bench kind=bin
//! Fixture: ambient-rng. OS-seeded entropy is banned *everywhere*,
//! even in bin targets — all randomness must flow from `simkit::rng`.

use std::collections::hash_map::RandomState;

fn bad_hasher() -> RandomState {
    RandomState::new()
}

fn bad_thread_rng() {
    let _rng = thread_rng();
}

fn bad_seeding() {
    let _rng = SmallRng::from_entropy();
}

fn bad_os_rng() {
    let _ = OsRng;
}

fn bad_rand_random() -> f64 {
    rand::random()
}

fn allowed_with_pragma() {
    // lint:allow(ambient-rng) documenting the pragma syntax in the fixture
    let _ = RandomState::new();
}

fn fine_det_rng(seed: u64) -> simkit::DetRng {
    // The sanctioned source: seed-derived, replayable.
    simkit::DetRng::new(seed)
}
