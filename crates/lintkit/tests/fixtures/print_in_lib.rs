// lint-fixture: crate=sailing kind=lib
//! Fixture: no-print-in-lib. Library code returns data; bench bins own
//! stdout.

fn bad_println(total: u64) {
    println!("total = {total}");
}

fn bad_print() {
    print!("partial");
}

fn bad_eprintln(err: &str) {
    eprintln!("error: {err}");
}

fn bad_eprint(err: &str) {
    eprint!("{err}");
}

fn bad_dbg(x: u32) -> u32 {
    dbg!(x)
}

fn allowed_with_pragma(report: &str) {
    println!("{report}"); // lint:allow(no-print-in-lib) designated report renderer
}

fn fine_format(total: u64) -> String {
    // Returning a rendered string is fine — the caller decides the sink.
    format!("total = {total}")
}

fn fine_writeln(out: &mut String, total: u64) {
    use std::fmt::Write;
    let _ = writeln!(out, "total = {total}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_are_fine_in_tests() {
        println!("debugging a test is fine");
    }
}
