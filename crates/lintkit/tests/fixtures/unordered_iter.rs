// lint-fixture: crate=core kind=lib reach=sim
//! Fixture: unordered-iter. Sim-visible library code must iterate
//! ordered collections so snapshots are seed-stable.

use std::collections::HashMap;
use std::collections::HashSet;

struct Snapshot {
    rows: HashMap<String, u64>,
    seen: HashSet<u64>,
}

// BTree collections are the sanctioned replacements.
use std::collections::{BTreeMap, BTreeSet};

struct OrderedSnapshot {
    rows: BTreeMap<String, u64>,
    seen: BTreeSet<u64>,
}

// An allow pragma (e.g. for a map that is never iterated) suppresses:
struct Cache {
    // lint:allow(unordered-iter) keyed lookups only, never iterated
    slots: HashMap<u64, String>,
}

#[cfg(test)]
mod tests {
    // Test-only code is exempt.
    use std::collections::HashMap;

    fn scratch() -> HashMap<u32, u32> {
        HashMap::new()
    }
}
