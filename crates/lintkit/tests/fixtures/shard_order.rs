// lint-fixture: crate=simkit kind=lib file=shard.rs reach=shard,sim
//! Fixture: shard-visible-order. Cross-shard merge paths must derive
//! event order from the `(time, actor, seq)` key — never from hash
//! iteration order or thread scheduling.

use rayon::prelude::*;
use std::collections::HashMap;
use std::collections::HashSet;

struct MergeState {
    pending: HashMap<u64, u64>,
    seen: HashSet<u64>,
}

fn merge_parallel(shards: &[Vec<u64>]) -> u64 {
    shards.par_iter().flatten().copied().sum()
}

fn merge_owned(shards: Vec<Vec<u64>>) -> u64 {
    shards.into_par_iter().flatten().sum()
}

fn merge_bridged(shards: impl Iterator<Item = u64>) -> u64 {
    shards.par_bridge().sum()
}

fn fold_first(totals: &[u64]) -> Option<&u64> {
    totals.iter().reduce(|a, _| a)
}

// The sanctioned shapes: ordered collections, fixed fold order.
use std::collections::{BTreeMap, BTreeSet};

struct OrderedMergeState {
    pending: BTreeMap<u64, u64>,
    seen: BTreeSet<u64>,
}

fn fold_by_shard_id(totals: &[u64]) -> u64 {
    totals.iter().fold(0u64, |acc, t| acc.wrapping_add(*t))
}

// A keyed-lookup-only map needs a justified pragma naming both rules
// (the generic unordered-iter rule also patrols sim-visible libs):
struct RouteCache {
    // lint:allow(shard-visible-order, unordered-iter) keyed lookups only, never iterated
    slots: HashMap<u64, u64>,
}

#[cfg(test)]
mod tests {
    // Test-only code is mechanism, not contract: exempt.
    use std::collections::HashMap;

    fn scratch() -> HashMap<u32, u32> {
        HashMap::new()
    }
}
