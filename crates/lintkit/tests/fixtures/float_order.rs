// lint-fixture: crate=core kind=lib reach=sim
//! Fixture: float-order. Sim-visible fns handling f32/f64 must not
//! leave accumulation order to iterator adapters — float addition is
//! not associative, so the order is part of the determinism contract.

fn bad_mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn bad_fold(draws: &[f32]) -> f32 {
    draws.iter().fold(0.0f32, |acc, d| acc + d)
}

fn bad_product(factors: &[f64]) -> f64 {
    factors.iter().product()
}

fn bad_reduce(latencies: &[f64]) -> Option<f64> {
    latencies.iter().copied().reduce(|a, b| a + b)
}

// Integer accumulation carries no rounding-order hazard.
fn fine_integer_sum(micro_joules: &[u64]) -> u64 {
    micro_joules.iter().sum()
}

// An explicit-order loop is the sanctioned fix.
fn fine_explicit_order(samples: &[f64]) -> f64 {
    let mut acc = 0.0;
    for v in samples {
        acc += v;
    }
    acc
}

fn allowed_order_insensitive(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::NEG_INFINITY, f64::max) // lint:allow(float-order) max is order-insensitive
}

#[cfg(test)]
mod tests {
    // Test assertions may accumulate however they like.
    fn scratch(xs: &[f64]) -> f64 {
        xs.iter().sum()
    }
}
