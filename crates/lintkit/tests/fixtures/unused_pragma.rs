// lint-fixture: crate=core kind=lib reach=hot
//! Fixture: unused-pragma. Every `lint:allow` must suppress a live
//! diagnostic: pragmas that name unknown rules or outlived their
//! violation hide real future findings on the same line.

// A live pragma (suppresses a real panic-reachable hit): not flagged.
fn live(v: Option<u32>) -> u32 {
    v.expect("audited") // lint:allow(panic-reachable) construction invariant
}

// Stale: the panic was refactored away but the pragma stayed behind.
fn stale() -> u32 {
    7 // lint:allow(panic-reachable) leftover from an old unwrap
}

// Unknown rule name (e.g. the retired `no-unwrap-in-core`): flagged,
// and the unwrap it was meant to cover is reported as usual.
fn unknown_rule(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(no-unwrap-in-core) retired rule name
}

// Standalone pragmas go stale too when the next line stops violating.
// lint:allow(wallclock-ban) the Instant::now below was removed
fn no_clock() {}

// Adding `unused-pragma` to the list opts a line out of hygiene
// (e.g. a pin kept during a staged migration).
fn migrating() -> u32 {
    9 // lint:allow(float-order, unused-pragma) pinned during migration
}
