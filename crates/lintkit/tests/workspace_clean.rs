//! Tier-1 determinism gate: the whole workspace must be lint-clean.
//!
//! This is the same check as `cargo run -p lintkit -- --workspace`
//! (and the `==> lintkit gate` step of `scripts/verify.sh`), wired into
//! `cargo test` so no PR can land code that breaks the determinism
//! contract without either fixing it or leaving an auditable
//! `lint:allow` pragma.

use lintkit::{find_workspace_root, lint_workspace};
use std::path::Path;

#[test]
fn workspace_has_no_lint_violations() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root (Cargo.toml + crates/) not found");
    let report = lint_workspace(&root).expect("workspace walk");
    assert!(
        report.files > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files
    );
    if !report.is_clean() {
        let mut msg = String::new();
        for d in &report.diagnostics {
            msg.push_str(&format!("{d}\n"));
        }
        panic!(
            "lintkit gate: {} violation(s) in the workspace\n{msg}\
             fix the code or add `// lint:allow(<rule>)` with a justification",
            report.diagnostics.len()
        );
    }
}
