//! Tier-1 determinism gate: the workspace must introduce **zero new
//! findings** over the checked-in ratchet baseline, and the computed
//! sim-visibility must cover every crate the retired hand-maintained
//! `SIM_VISIBLE` list named.
//!
//! This is the same check as
//! `cargo run -p lintkit -- --workspace --baseline results/lint_baseline.json`
//! (the `==> lintkit gate` step of `scripts/verify.sh`), wired into
//! `cargo test` so no PR can land code that regresses the determinism
//! contract without either fixing it or leaving an auditable
//! `lint:allow` pragma — and no stale pragma survives either.

use lintkit::ratchet::{self, Baseline};
use lintkit::{find_workspace_root, Analysis};
use std::path::Path;

/// Crates the retired `SIM_VISIBLE` const named: the computed set must
/// be a superset, or the refactor silently narrowed the patrolled
/// surface.
const RETIRED_SIM_VISIBLE: &[&str] =
    &["simkit", "radio", "smartmsg", "fuego", "core", "obskit", "benchkit"];

#[test]
fn workspace_within_ratchet_baseline() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root (Cargo.toml + crates/) not found");
    let analysis = Analysis::analyze(&root).expect("workspace analysis");
    let report = analysis.lint_all();
    assert!(
        report.files > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files
    );

    // Computed sim-visibility covers the retired hand list.
    for krate in RETIRED_SIM_VISIBLE {
        assert!(
            analysis.sim_visible().contains(*krate),
            "computed sim-visible set {:?} lost crate `{krate}` that the \
             retired SIM_VISIBLE list named",
            analysis.sim_visible()
        );
    }

    // Pragma hygiene: stale pragmas are always new debt, never pinned.
    let stale: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "unused-pragma")
        .map(|d| d.to_string())
        .collect();
    assert!(
        stale.is_empty(),
        "stale `lint:allow` pragma(s):\n{}",
        stale.join("\n")
    );

    // Ratchet: every finding must be covered by the checked-in pins.
    let baseline_src = std::fs::read_to_string(root.join("results/lint_baseline.json"))
        .expect("results/lint_baseline.json (re-create with --write-baseline)");
    let baseline = Baseline::parse(&baseline_src).expect("baseline parses");
    let diff = ratchet::diff(&ratchet::counts_of(&report), &baseline);
    if !diff.regressions.is_empty() {
        let mut msg = String::new();
        for r in &diff.regressions {
            msg.push_str(&format!(
                "  {}: {} finding(s) of `{}` (pinned: {})\n",
                r.path, r.current, r.rule, r.pinned
            ));
        }
        panic!(
            "lintkit gate: {} (rule, file) pair(s) above the ratchet baseline\n{msg}\
             fix the code, add `// lint:allow(<rule>)` with a justification, or — \
             for a deliberate rule change — re-base with\n  \
             cargo run -p lintkit -- --workspace --write-baseline results/lint_baseline.json",
            diff.regressions.len()
        );
    }
    assert!(
        diff.pinned_total > 0,
        "baseline pins nothing — gate would be vacuous"
    );
}
