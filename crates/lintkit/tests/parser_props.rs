//! Property suite for the hand-rolled item parser: on *arbitrary*
//! input — well-formed or hostile — `lexer::lex` followed by
//! `parser::parse` must terminate without panicking, and every item it
//! recovers must carry internally consistent spans. The parser's
//! forced-progress loop is the termination argument; these tests are
//! the empirical check that no token shape defeats it.

use lintkit::{lexer, parser};
use proptest::collection;
use proptest::prelude::*;

/// Rust-ish token fragments, biased towards the shapes the parser
/// special-cases: items, impl blocks, use trees, generics, closures,
/// stray closers and unterminated openers.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("fn".to_string()),
        Just("pub".to_string()),
        Just("impl".to_string()),
        Just("trait".to_string()),
        Just("use".to_string()),
        Just("mod".to_string()),
        Just("for".to_string()),
        Just("as".to_string()),
        Just("self".to_string()),
        Just("crate".to_string()),
        Just("super".to_string()),
        Just("Self".to_string()),
        Just("where".to_string()),
        Just("dyn".to_string()),
        Just("::".to_string()),
        Just(";".to_string()),
        Just(",".to_string()),
        Just(".".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just("[".to_string()),
        Just("]".to_string()),
        Just("<".to_string()),
        Just(">".to_string()),
        Just("->".to_string()),
        Just("=>".to_string()),
        Just("*".to_string()),
        Just("&mut".to_string()),
        Just("#[derive(Debug)]".to_string()),
        Just("'a".to_string()),
        Just("\"str\"".to_string()),
        Just("// line".to_string()),
        Just("/* block".to_string()),
        "[a-d][a-z0-9_]{0,6}",
        "[0-9]{1,4}",
    ]
}

fn assert_parse_is_sound(src: &str) -> Result<(), TestCaseError> {
    let lexed = lexer::lex(src);
    let parsed = parser::parse(&lexed.tokens);
    let n = lexed.tokens.len();
    for f in &parsed.fns {
        prop_assert!(
            f.sig_start < n,
            "sig_start {} out of range {} for fn `{}`",
            f.sig_start,
            n,
            f.name
        );
        if let Some((open, close)) = f.body {
            prop_assert!(open <= close, "inverted body span for fn `{}`", f.name);
            prop_assert!(close < n, "body span past end for fn `{}`", f.name);
            prop_assert!(f.sig_start <= open, "body before signature for fn `{}`", f.name);
        }
        for r in &f.refs {
            prop_assert!(!r.segments.is_empty(), "empty ref path in fn `{}`", f.name);
        }
    }
    for u in &parsed.uses {
        prop_assert!(!u.path.is_empty(), "use decl with empty path");
    }
    Ok(())
}

proptest! {
    /// Fragment soup: token sequences that look locally like Rust but
    /// nest and dangle arbitrarily.
    #[test]
    fn parse_survives_fragment_soup(
        frags in collection::vec(fragment(), 0..48),
        seps in collection::vec(prop_oneof![Just(" "), Just("\n"), Just("")], 0..48),
    ) {
        let mut src = String::new();
        for (i, f) in frags.iter().enumerate() {
            src.push_str(f);
            src.push_str(seps.get(i).copied().unwrap_or(" "));
        }
        assert_parse_is_sound(&src)?;
    }

    /// Raw byte noise: arbitrary printable characters, no token
    /// discipline at all (unterminated strings, lone quotes, stray
    /// backslashes).
    #[test]
    fn parse_survives_raw_noise(src in "[ -~\n]{0,160}") {
        assert_parse_is_sound(&src)?;
    }

    /// Well-formed scaffolding with noisy bodies: the recovering
    /// parser must still find the outer items.
    #[test]
    fn parse_recovers_outer_items(
        name in "[a-z][a-z0-9_]{0,8}",
        noise in "[ -~\n]{0,40}",
    ) {
        let body = noise.replace(['{', '}', '"', '\'', '\\', '/'], "_");
        let src = format!("pub fn {name}() {{ {body} }}\nfn tail() {{}}\n");
        let lexed = lexer::lex(&src);
        let parsed = parser::parse(&lexed.tokens);
        prop_assert!(
            parsed.fns.iter().any(|f| f.name == name),
            "lost fn `{}` in {:?}",
            name,
            parsed.fns.iter().map(|f| f.name.clone()).collect::<Vec<_>>()
        );
        prop_assert!(parsed.fns.iter().any(|f| f.name == "tail"));
        assert_parse_is_sound(&src)?;
    }
}
