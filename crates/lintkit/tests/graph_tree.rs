//! Cross-crate resolution suite: analyses the mini-workspace under
//! `tests/fixtures/tree/` (four crates with a manifest rename, a
//! `pub use` re-export, and a package-name/directory-key split) and
//! asserts the symbol graph and taint engine track calls across crate
//! boundaries — the exact cases the retired hand-maintained
//! `SIM_VISIBLE` list could never see.

use lintkit::graph::Workspace;
use lintkit::reach::{self, Taint};
use std::path::{Path, PathBuf};

fn tree_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tree")
}

fn analyzed() -> (Workspace, reach::Reach) {
    let ws = Workspace::analyze(&tree_root()).expect("analyze fixture tree");
    let reach = reach::compute(&ws);
    (ws, reach)
}

fn taint_of(ws: &Workspace, reach: &reach::Reach, krate: &str, name: &str) -> Taint {
    let mut found = None;
    for (id, f) in ws.fns.iter().enumerate() {
        if f.krate == krate && f.name == name {
            assert!(
                found.is_none(),
                "fn `{krate}::{name}` is ambiguous in the fixture tree"
            );
            found = Some(reach.taint[id]);
        }
    }
    found.unwrap_or_else(|| panic!("fn `{krate}::{name}` missing from the graph"))
}

#[test]
fn manifest_rename_resolves_to_crate_dir() {
    let (ws, _) = analyzed();
    let app = ws.crates.get("app").expect("crate keyed by dir name `app`");
    assert_eq!(app.package, "app-core", "package name survives next to the dir key");
    assert_eq!(
        app.code_names.get("enginex").map(String::as_str),
        Some("engine"),
        "workspace-dependency rename `enginex` must map to the `engine` crate dir"
    );
    let core = ws.crates.get("core").expect("crate keyed by dir name `core`");
    assert_eq!(
        core.code_names.get("app_core").map(String::as_str),
        Some("app"),
        "dashed package `app-core` must be importable as `app_core`"
    );
}

#[test]
fn cones_follow_manifest_edges() {
    let (ws, _) = analyzed();
    let down = ws.cone_down("app").expect("down cone for app");
    assert!(down.contains("engine"), "app depends on engine: {down:?}");
    assert!(!down.contains("core"), "down cone must not include dependents");
    let up = ws.cone_up("engine").expect("up cone for engine");
    assert!(up.contains("app"), "engine's dependents include app: {up:?}");
    assert!(up.contains("core"), "…transitively including core: {up:?}");
    let util_up = ws.cone_up("util").expect("up cone for util");
    assert_eq!(
        util_up.iter().collect::<Vec<_>>(),
        ["util"],
        "nothing depends on util"
    );
}

#[test]
fn sim_taint_crosses_the_renamed_crate_edge() {
    let (ws, reach) = analyzed();
    // `drive` schedules, so it is a sim root; `merge_events` is only
    // ever called from `drive` through the `enginex` alias.
    assert!(taint_of(&ws, &reach, "app", "drive").sim);
    let merge = taint_of(&ws, &reach, "engine", "merge_events");
    assert!(merge.sim, "sim taint must flow app::drive → enginex::merge::merge_events");
    assert!(!merge.hot, "core never reaches merge_events");
}

#[test]
fn taint_flows_through_pub_use_reexport() {
    let (ws, reach) = analyzed();
    // `core::provide` (hot root) calls `app_core::plan_route`, which the
    // app crate only exposes via `pub use inner::plan_route`.
    let plan = taint_of(&ws, &reach, "app", "plan_route");
    assert!(plan.hot, "hot taint must resolve through the re-export");
    assert!(plan.sim, "drive also calls plan_route under sim time");
    let score = taint_of(&ws, &reach, "app", "score");
    assert!(score.hot && score.sim, "private callee inherits both taints");
    assert!(taint_of(&ws, &reach, "core", "validate").hot);
}

#[test]
fn shard_taint_stays_on_the_shard_engine() {
    let (ws, reach) = analyzed();
    assert!(taint_of(&ws, &reach, "engine", "step_shard").shard);
    assert!(!taint_of(&ws, &reach, "app", "drive").shard);
}

#[test]
fn unreachable_leaf_is_untainted() {
    let (ws, reach) = analyzed();
    assert_eq!(taint_of(&ws, &reach, "util", "idle"), Taint::default());
    assert!(
        !reach.sim_visible.contains("util"),
        "sim-visible set {:?} must exclude the unreachable leaf",
        reach.sim_visible
    );
    assert!(reach.sim_visible.contains("engine"));
    assert!(reach.sim_visible.contains("app"));
}
