//! Golden-file fixture suite: every rule has a fixture under
//! `tests/fixtures/` whose expected diagnostics live next to it in a
//! `.expected` file (`line:col rule` per line).
//!
//! Regenerate goldens after an intentional rule change with
//! `LINTKIT_BLESS=1 cargo test -p lintkit --test fixtures`.

use lintkit::{lint_file, rules::RULES};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    files
}

fn rendered_diags(path: &Path) -> (String, BTreeSet<&'static str>) {
    let root = fixtures_dir();
    let report = lint_file(&root, path).expect("fixture readable");
    let mut rules_hit = BTreeSet::new();
    let mut lines = Vec::new();
    for d in &report.diagnostics {
        rules_hit.insert(d.rule);
        lines.push(format!("{}:{} {}", d.line, d.col, d.rule));
    }
    assert!(
        report.allowed > 0,
        "{}: every fixture demonstrates at least one allow pragma",
        path.display()
    );
    (lines.join("\n") + "\n", rules_hit)
}

#[test]
fn fixtures_match_goldens() {
    let bless = std::env::var_os("LINTKIT_BLESS").is_some();
    let mut all_rules_hit: BTreeSet<&'static str> = BTreeSet::new();
    let files = fixture_files();
    assert!(
        files.len() >= RULES.len(),
        "need at least one fixture per rule ({} rules, {} fixtures)",
        RULES.len(),
        files.len()
    );
    for fixture in files {
        let (got, rules_hit) = rendered_diags(&fixture);
        assert!(
            got.trim() != "",
            "{}: fixture produced no diagnostics",
            fixture.display()
        );
        all_rules_hit.extend(rules_hit);
        let golden_path = fixture.with_extension("expected");
        if bless {
            std::fs::write(&golden_path, &got).expect("write golden");
            continue;
        }
        let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "{}: missing golden (run with LINTKIT_BLESS=1 to create)",
                golden_path.display()
            )
        });
        assert_eq!(
            got,
            want,
            "{}: diagnostics diverged from golden {}",
            fixture.display(),
            golden_path.display()
        );
    }
    // The suite must cover the whole catalog.
    let catalog: BTreeSet<&'static str> = RULES.iter().map(|r| r.name).collect();
    assert_eq!(
        all_rules_hit, catalog,
        "every rule in the catalog needs a firing fixture"
    );
}

/// Acceptance check: the *CLI* exits non-zero with `file:line:col`
/// diagnostics when pointed at a violating fixture, and zero on a
/// clean file.
#[test]
fn cli_exits_nonzero_on_fixture_violations() {
    let exe = env!("CARGO_BIN_EXE_lintkit");
    for fixture in fixture_files() {
        let out = std::process::Command::new(exe)
            .arg("--root")
            .arg(fixtures_dir())
            .arg(&fixture)
            .output()
            .expect("spawn lintkit CLI");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{}: CLI should exit 1 on violations",
            fixture.display()
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let golden = std::fs::read_to_string(fixture.with_extension("expected"))
            .expect("golden exists");
        if let Some(first) = golden.lines().next() {
            let (linecol, rule) = first.split_once(' ').expect("golden line format");
            let needle = format!(":{linecol}: error[{rule}]");
            assert!(
                stdout.contains(&needle),
                "{}: CLI output missing `{needle}`\n--- stdout ---\n{stdout}",
                fixture.display()
            );
        }
    }
}
