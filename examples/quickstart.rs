//! Quickstart: submit your first context query.
//!
//! Builds a one-phone testbed (a Nokia 6630 with an integrated
//! temperature sensor), starts Contory, and runs the simplest useful
//! query: periodic temperature for one minute.
//!
//! Run with: `cargo run --example quickstart`

use contory::{Client, CxtItem, QueryId};
use radio::Position;
use sensors::EnvField;
use simkit::SimDuration;
use testbed::{PhoneSetup, Testbed};
use std::rc::Rc;

/// Applications implement the paper's `Client` interface: item delivery,
/// error signalling, and the access-control decision hook.
struct PrintingClient;

impl Client for PrintingClient {
    fn receive_cxt_item(&self, query: QueryId, item: CxtItem) {
        println!("  [{query}] {item}");
    }
    fn inform_error(&self, message: &str) {
        println!("  [error] {message}");
    }
    fn make_decision(&self, message: &str) -> bool {
        println!("  [decision] {message} -> allow");
        true
    }
}

fn main() {
    // A testbed bundles the simulated world: radios, Smart Messages, the
    // event broker and the remote context infrastructure.
    let tb = Testbed::with_seed(42);

    // One phone with an integrated temperature sensor.
    let phone = tb.add_phone(PhoneSetup {
        internal_sensors: vec![EnvField::TemperatureC],
        metered: false,
        ..PhoneSetup::nokia6630("my-phone", Position::new(0.0, 0.0))
    });

    // Submit a query in Contory's SQL-like language. FROM intSensor pins
    // the mechanism; omit it and the middleware picks one.
    println!("SELECT temperature FROM intSensor FRESHNESS 30 sec DURATION 1 min EVERY 10 sec");
    let id = phone
        .submit(
            "SELECT temperature FROM intSensor FRESHNESS 30 sec DURATION 1 min EVERY 10 sec",
            Rc::new(PrintingClient),
        )
        .expect("query accepted");
    println!("query {id} running on {:?}\n", phone.factory().mechanism_of(id).unwrap());

    // Drive the virtual clock; items arrive through the Client.
    tb.sim.run_for(SimDuration::from_secs(70));

    println!(
        "\nquery finished; energy used by the phone: {}",
        phone
            .phone()
            .power()
            .energy_between(simkit::SimTime::ZERO, tb.sim.now())
    );
}
