//! WeatherWatcher (paper §6.2): weather for a geographic region, from
//! live boats over the ad hoc network when possible, from the remote
//! infrastructure otherwise.
//!
//! Run with: `cargo run --example sailing_weather`

use radio::{Position, Region};
use sailing::{WeatherSource, WeatherWatcher};
use sensors::EnvField;
use simkit::SimDuration;
use testbed::{PhoneSetup, Testbed};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let tb = Testbed::with_seed(2005);

    // An official weather station near a guest harbour, 30 km away,
    // reporting into the infrastructure every minute.
    let harbour = Position::new(30_000.0, 5_000.0);
    tb.add_weather_station(
        "fmi-harbour",
        harbour,
        &[EnvField::TemperatureC, EnvField::WindKnots, EnvField::PressureHpa],
        SimDuration::from_secs(60),
    );

    // Our boat and a neighbour sailing close by; the neighbour shares its
    // onboard observations (ad hoc + infrastructure).
    let me = tb.add_phone(PhoneSetup {
        internal_sensors: vec![EnvField::TemperatureC, EnvField::WindKnots],
        cell_on: true,
        ..PhoneSetup::nokia9500("my-boat", Position::new(0.0, 0.0))
    });
    let neighbor = tb.add_phone(PhoneSetup {
        internal_sensors: vec![EnvField::TemperatureC, EnvField::WindKnots],
        ..PhoneSetup::nokia9500("neighbor-boat", Position::new(60.0, 20.0))
    });
    tb.sim.run_for(SimDuration::from_secs(5));
    WeatherWatcher::new(&tb.sim, neighbor.factory())
        .start_sharing(&["temperature", "wind"], SimDuration::from_secs(20));
    tb.sim.run_for(SimDuration::from_secs(60));

    let watcher = WeatherWatcher::new(&tb.sim, me.factory());

    // Request 1: weather right here — the neighbour answers over the ad
    // hoc network ("information owned by boats currently sailing in such
    // a region is often more reliable").
    println!("--- weather around my position (ad hoc expected) ---");
    request_and_print(&tb, &watcher, Region::new(Position::new(30.0, 10.0), 500.0));

    // Request 2: weather near the far harbour — too far for multi-hop ad
    // hoc provisioning, so the query goes to the infrastructure.
    println!("\n--- weather near the guest harbour, 30 km away (infrastructure expected) ---");
    request_and_print(&tb, &watcher, Region::new(harbour, 1_000.0));
}

fn request_and_print(tb: &Testbed, watcher: &WeatherWatcher, region: Region) {
    let report = Rc::new(RefCell::new(None));
    let r = report.clone();
    watcher.request(region, &["temperature", "wind"], move |res| {
        *r.borrow_mut() = Some(res);
    });
    tb.sim.run_for(SimDuration::from_secs(90));
    let outcome = report.borrow_mut().take();
    match outcome {
        Some(Ok(report)) => {
            println!(
                "source: {}",
                match report.source {
                    WeatherSource::AdHoc => "boats in the region (ad hoc network)",
                    WeatherSource::Infrastructure => "remote context infrastructure",
                }
            );
            for field in ["temperature", "wind"] {
                match report.latest(field) {
                    Some(obs) => println!(
                        "  {field:<12} {} (from {})",
                        obs.value,
                        obs.source.as_ref().map(|s| s.0.as_str()).unwrap_or("?")
                    ),
                    None => println!("  {field:<12} (no observation)"),
                }
            }
        }
        Some(Err(e)) => println!("request failed: {e}"),
        None => println!("request still pending (increase the run time)"),
    }
}
