//! Transparent provisioning failover (paper Fig. 5): a location query
//! survives its GPS dying because Contory switches to ad hoc
//! provisioning from a neighbouring boat — and switches back when the
//! GPS recovers. The application just keeps receiving `receiveCxtItem`
//! callbacks.
//!
//! Run with: `cargo run --example failover`

use contory::{Client, CxtItem, CxtValue, QueryId, Trust};
use radio::Position;
use simkit::{SimDuration, SimTime};
use testbed::{PhoneSetup, Testbed};
use std::cell::Cell;
use std::rc::Rc;

struct NarratingClient {
    received: Cell<usize>,
}

impl Client for NarratingClient {
    fn receive_cxt_item(&self, _query: QueryId, item: CxtItem) {
        self.received.set(self.received.get() + 1);
        if self.received.get() % 6 == 0 {
            println!("  item #{:<3} {}", self.received.get(), item);
        }
    }
    fn inform_error(&self, message: &str) {
        println!("  [middleware] {message}");
    }
}

fn main() {
    // Everything the middleware does below is counted and traced by the
    // obskit collector; the run summary at the end comes from here.
    let obs = obskit::Obs::new();
    let _obs_guard = obs.install();
    let tb = Testbed::with_seed(155);
    let phone = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("sailor", Position::new(0.0, 0.0))
    });
    // The BT-GPS puck aboard, and a neighbouring boat publishing its own
    // position into the ad hoc network every 10 s.
    let gps = tb.add_bt_gps(Position::new(2.0, 0.0), SimDuration::from_secs(5));
    let neighbor = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("neighbor", Position::new(6.0, 0.0))
    });
    neighbor.factory().register_cxt_server("app");
    {
        let factory = neighbor.factory().clone();
        let sim = tb.sim.clone();
        tb.sim.schedule_repeating(SimDuration::from_secs(10), move || {
            let _ = factory.publish_cxt_item(
                CxtItem::new("location", CxtValue::Position { x: 6.0, y: 0.0 }, sim.now())
                    .with_accuracy(30.0)
                    .with_trust(Trust::Community),
                None,
            );
            true
        });
    }

    // Battery/memory/load gauges sampled on sim ticks.
    phone
        .factory()
        .monitor()
        .start_sampling(&tb.sim, SimDuration::from_secs(15));

    let client = Rc::new(NarratingClient {
        received: Cell::new(0),
    });
    let id = phone
        .submit(
            "SELECT location FROM intSensor DURATION 2 hour EVERY 5 sec",
            client.clone(),
        )
        .unwrap();

    println!("t=0      query submitted (location, every 5 s, from the GPS)");
    tb.sim.run_until(SimTime::from_secs(155));
    println!(
        "t=155s   mechanism: {:?} — switching the GPS OFF now",
        phone.factory().mechanism_of(id).unwrap()
    );
    gps.set_powered(false);

    tb.sim.run_until(SimTime::from_secs(330));
    println!(
        "t=330s   mechanism: {:?} — switching the GPS back ON",
        phone.factory().mechanism_of(id).unwrap()
    );
    gps.set_powered(true);

    tb.sim.run_until(SimTime::from_secs(520));
    println!(
        "t=520s   mechanism: {:?}",
        phone.factory().mechanism_of(id).unwrap()
    );
    println!(
        "\nlocation items received across the whole run: {} — the application never noticed",
        client.received.get()
    );

    // Run summary straight out of the obskit registry and span log.
    println!("\nobskit run summary");
    println!("{:-<44}", "");
    for (label, counter) in [
        ("items delivered", "manager_items_delivered"),
        ("provider failures", "factory_provider_failures"),
        ("mechanism switches", "factory_mechanism_switches"),
        ("recoveries (switch back)", "factory_recoveries"),
        ("BT inquiries (discovery)", "bt_inquiries"),
        ("ad hoc deliveries", "provider_adhoc_deliveries"),
        ("monitor sample ticks", "monitor_sample_ticks"),
    ] {
        println!("{label:<28} {:>10}", obs.counter(counter));
    }
    let blackouts: Vec<_> = obs
        .spans()
        .into_iter()
        .filter(|s| {
            s.phase == obskit::Phase::Failover
                && s.label.starts_with("gap:")
                && s.end.is_some()
        })
        .collect();
    for s in &blackouts {
        if let Some(d) = s.duration() {
            println!("blackout span {:<15} {:>9.1}s", s.label, d.as_secs_f64());
        }
    }
    println!("{:-<44}", "");
    println!(
        "{} spans recorded; battery gauge ends at {:.0} (2 = high)",
        obs.span_count(),
        obs.gauge("monitor_battery_level").unwrap_or(-1.0)
    );
}
