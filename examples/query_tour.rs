//! A tour of the context query language (§4.2) and query aggregation
//! (§4.3) — no simulation required.
//!
//! Run with: `cargo run --example query_tour`

use contory::policy::{Condition, ContextRule, RuleAction, RuleValue, SystemStatus};
use contory::query::{CxtQuery, NumNodes, QueryBuilder};
use contory::{CxtItem, CxtValue, EventWindow};
use simkit::{SimDuration, SimTime};

fn main() {
    // Applications share the middleware's obskit registry: install a
    // collector and any `obskit::count`/`gauge`/`observe` call — ours or
    // the middleware's — lands in the same snapshot printed at the end.
    let obs = obskit::Obs::new();
    let _obs_guard = obs.install();

    // --- the paper's example query ---
    let text = "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 \
                FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25";
    println!("parsing the paper's example query:\n  {text}\n");
    let q = CxtQuery::parse(text).expect("valid query");
    obskit::count("tour_queries_parsed", 1);
    println!("  SELECT    -> {}", q.select);
    println!("  FROM      -> {:?}", q.from);
    println!("  WHERE     -> {:?}", q.where_clause);
    println!("  FRESHNESS -> {:?}", q.freshness);
    println!("  DURATION  -> {}", q.duration);
    println!("  mode      -> {:?}\n", q.mode);

    // --- the same query, built fluently ---
    let built = QueryBuilder::select("temperature")
        .from_adhoc(NumNodes::First(10), 3)
        .where_numeric("accuracy", contory::query::CmpOp::Eq, 0.2)
        .freshness(SimDuration::from_secs(30))
        .duration(SimDuration::from_hours(1))
        .event_avg_above("temperature", 25.0)
        .build();
    assert_eq!(built, q);
    println!("the QueryBuilder produces the identical query: {built}\n");

    // --- query merging: the paper's q1 + q2 -> q3 example ---
    let q1 = CxtQuery::parse(
        "SELECT temperature FROM adHocNetwork(all,3) FRESHNESS 10 sec DURATION 1 hour EVERY 15 sec",
    )
    .unwrap();
    let q2 = CxtQuery::parse(
        "SELECT temperature FROM adHocNetwork(all,1) FRESHNESS 20 sec DURATION 2 hour EVERY 30 sec",
    )
    .unwrap();
    obskit::count("tour_queries_parsed", 2);
    println!("query merging (§4.3):");
    println!("  q1: {q1}");
    println!("  q2: {q2}");
    // The Facade performs this internally; the building blocks are public
    // through behaviour — shown here via the facade's observable effect in
    // the middleware tests. The expected covering query is:
    println!(
        "  q3: SELECT temperature FROM adHocNetwork(all,3) FRESHNESS 20 sec \
         DURATION 2 hour EVERY 15 sec  (computed by the Facade)\n"
    );

    // --- EVENT evaluation over a window of collected items ---
    println!("EVENT evaluation:");
    let mut window = EventWindow::new();
    for (t, v) in [(0u64, 22.0), (15, 24.5), (30, 27.0), (45, 29.0)] {
        window.push(CxtItem::new(
            "temperature",
            CxtValue::quantity(v, "C"),
            SimTime::from_secs(t),
        ));
        if let contory::query::QueryMode::Event(expr) = &q.mode {
            let fires = window.eval(expr);
            if fires {
                obskit::count("tour_event_firings", 1);
            }
            println!(
                "  t={t:>2}s  temperature={v:>4.1}C  AVG so far -> condition {}",
                if fires { "FIRES" } else { "quiet" }
            );
        }
    }

    // --- control policies ---
    println!("\ncontrol policies (§4.3):");
    let rule = ContextRule::new(
        Condition::parse("<batteryLevel, equal, low> and <activeQueries, moreThan, 2>").unwrap(),
        RuleAction::ReducePower,
    );
    println!("  rule: {rule}");
    let mut status = SystemStatus::new();
    status.set("batteryLevel", RuleValue::Text("low".into()));
    status.set("activeQueries", RuleValue::Number(5.0));
    println!(
        "  with batteryLevel=low, activeQueries=5 -> active actions: {:?}",
        status.active_actions(&[rule.clone()])
    );
    status.set("batteryLevel", RuleValue::Text("high".into()));
    println!(
        "  with batteryLevel=high                 -> active actions: {:?}",
        status.active_actions(&[rule])
    );

    // --- error reporting ---
    println!("\nparse errors point at the offending byte:");
    for bad in [
        "SELECT temperature EVERY 5 sec",
        "SELECT t FROM bogusSource DURATION 1 min",
        "SELECT t DURATION 1 hour EVERY 5 sec EVENT AVG(t)>1",
    ] {
        println!("  {bad}");
        println!("    -> {}", CxtQuery::parse(bad).unwrap_err());
        obskit::count("tour_parse_errors", 1);
    }

    // --- everything counted above, straight from the obskit registry ---
    println!("\nobskit metrics snapshot for this tour:");
    println!("{}", obs.metrics_snapshot());
}
