//! RegattaClassifier (paper §6.2): virtual checkpoints along the course,
//! passages reported to the infrastructure (location + speed from the
//! BT-GPS), live classification for every participant.
//!
//! Run with: `cargo run --example regatta`

use sailing::scenario::{start_regatta, straight_course};
use simkit::SimDuration;
use testbed::Testbed;

fn main() {
    let tb = Testbed::with_seed(1905);
    println!("Starting a 4-boat regatta over 3 checkpoints (600 m apart)…\n");
    let regatta = start_regatta(&tb, 4, straight_course(3, 600.0));

    // Print the classification every 5 minutes of race time.
    for lap in 1..=4 {
        tb.sim.run_for(SimDuration::from_mins(5));
        println!("t = {} — classification:", tb.sim.now());
        let standings = regatta.classifier.standings();
        if standings.is_empty() {
            println!("  (no checkpoint passages reported yet)");
        }
        for (place, s) in standings.iter().enumerate() {
            println!(
                "  {}. {:<8} checkpoints: {}/{}  last passage: {}  speed then: {:.1} kn",
                place + 1,
                s.entity,
                s.passed,
                regatta.course.len(),
                s.last_passage,
                s.last_speed,
            );
        }
        println!();
        let _ = lap;
    }

    // Compare the infrastructure's view with each boat's own.
    println!("local vs infrastructure view:");
    for p in &regatta.participants {
        let remote = regatta
            .classifier
            .standings()
            .into_iter()
            .find(|s| s.entity == p.name())
            .map(|s| s.passed)
            .unwrap_or(0);
        println!(
            "  {:<8} local: {}  infrastructure: {}",
            p.name(),
            p.checkpoints_passed(),
            remote
        );
    }
    match regatta.classifier.leader() {
        Some(leader) => println!("\nwinner so far: {} 🏆", leader.entity),
        None => println!("\nno leader yet"),
    }
}
