#!/usr/bin/env sh
# Repository verification: tier-1 gate plus the failure-scenario work.
#
#   ./scripts/verify.sh
#
# 1. tier-1: release build + the whole workspace test suite
#    (unit + per-crate integration + cross-crate integration +
#    property tests);
# 2. the lintkit gate: the offline determinism/robustness lint pass
#    must report zero findings above the checked-in ratchet baseline
#    (results/lint_baseline.json) and zero stale pragmas
#    (DESIGN.md §5c, §5g);
# 3. the failure-scenario suite in isolation — every scenario runs
#    across the three fixed seeds baked into the suite (11, 22, 33);
# 4. the shard gate: the partition-invariance suite — the Fig. 5
#    transcript and the scale_city outcome must be byte-identical
#    across shard counts {1, 4, 16} and thread counts {1, max, 64}
#    (DESIGN.md §5f);
# 5. the Fig. 5 failover bench, which asserts the recovery SLO
#    (worst provisioning gap <= 45 s) from the FailoverReport;
# 6. the obs gate: the sm_breakup bench re-measures the paper's §6.1
#    latency break-up from obskit spans and asserts each phase share
#    (connection 4-5 %, serialization 26-33 %, thread switching
#    12-14 %, transfer 51-54 %) within ±3 pp (DESIGN.md §5d);
# 7. the broker gate: the brokerd subsystem in all three harnesses —
#    unit suite, loopback TCP smoke, fleet partition invariance, the
#    45 s kill-over SLO and the 1696 B envelope golden test
#    (scripts/broker.sh, DESIGN.md §5h);
# 8. the trace gate: the tracekit causal-tracing plane — unit suite,
#    assembly property tests, golden JSONL/break-up schemas, fleet
#    trace partition invariance and the STATS/TRACE ops surface
#    (scripts/trace.sh, DESIGN.md §5i);
# 9. the chaos gate: the chaoskit layer — lossy-link chaos streams,
#    the dedup window's exactly-once filter, forward retry/backoff,
#    crash-restart recovery with lease renewal + anti-entropy, the
#    chaos property tests and the hardened wire surface
#    (scripts/chaos.sh, DESIGN.md §5j);
# 10. the bench gate: bench_all re-runs the whole §6 suite (now
#    including scale_city at 100k devices, broker_load at 10k devices
#    over 4 brokers, and broker_chaos at 10k devices under lossy
#    links with a mid-run crash-restart), rewrites results/*.txt +
#    BENCH_contory.json, and diffs every pinned metric against the
#    results/baseline.json tolerance bands (DESIGN.md §5e).
set -eu
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q (full workspace)"
cargo test -q

echo "==> lintkit gate (determinism & robustness lints, ratchet baseline)"
cargo run -q --release -p lintkit -- --workspace --baseline results/lint_baseline.json

echo "==> failure-scenario suite (seeds 11, 22, 33)"
cargo test -q --test failover_scenarios

echo "==> property tests (incl. fault/failover properties)"
cargo test -q --test proptests

echo "==> shard gate (partition/thread invariance, DESIGN.md 5f)"
cargo test -q --test shard_determinism

echo "==> Fig. 5 failover bench (recovery SLO)"
cargo run -q --release -p contory-bench --bin fig5_failover

echo "==> obs gate (span-measured 6.1 break-up within +/-3pp)"
cargo run -q --release -p contory-bench --bin sm_breakup

echo "==> broker gate (brokerd in all three harnesses, DESIGN.md 5h)"
./scripts/broker.sh

echo "==> trace gate (tracekit causal tracing plane, DESIGN.md 5i)"
./scripts/trace.sh

echo "==> chaos gate (lossy links, crash-recovery, idempotence, DESIGN.md 5j)"
./scripts/chaos.sh

echo "==> bench gate (full 6 suite vs results/baseline.json bands)"
cargo run -q --release -p contory-bench --bin bench_all -- --check

echo "==> verify: OK"
