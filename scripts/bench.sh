#!/usr/bin/env sh
# Regenerates every table/figure of the paper's §6 evaluation through the
# benchkit harness:
#
#   ./scripts/bench.sh                  # run suite, rewrite results/*.txt
#                                       # + BENCH_contory.json
#   ./scripts/bench.sh --check          # also diff against the pinned
#                                       # results/baseline.json bands
#   ./scripts/bench.sh --write-baseline # re-pin the baseline (review the
#                                       # diff before committing!)
#   ./scripts/bench.sh --shards N       # run scale_city on an N-shard
#                                       # engine (deterministic rows must
#                                       # not move — outputs are
#                                       # shard-invariant by contract)
#
# Everything is seed-driven and sim-clock-only, so two runs write
# byte-identical artefacts; the tier-1 suite's tests/bench_schema.rs
# keeps the committed JSON structurally honest in between full runs.
set -eu
cd "$(dirname "$0")/.."

cargo run -q --release -p contory-bench --bin bench_all -- "$@"
