#!/usr/bin/env sh
# brokerd subsystem gate: the federated context-broker core proven in
# all three of its harnesses (DESIGN.md §5h).
#
#   ./scripts/broker.sh
#
# 1. the brokerd unit suite (admission, sharded tables, federation
#    plane, wire protocol, classic-sim cell);
# 2. the loopback TCP smoke test — the same BrokerNode core as a real
#    multi-threaded service on 127.0.0.1 sockets, logical-clock wire
#    frames, a packet federating across two live servers;
# 3. the fleet partition-invariance suite — byte-identical
#    FleetOutcome reports across engine shard/thread counts and
#    broker table shard counts, faults included;
# 4. the kill-over suite — simkit::faults kills the selected broker
#    mid-run; InfraCxtProvider's cellular leg must reselect and keep
#    the worst delivery gap inside the Fig. 5 45 s SLO (3 seeds x
#    {1,4} table shards);
# 5. the 1696 B envelope golden test — brokerd packets on the Fuego
#    compat path still cost exactly the paper's measured frame.
set -eu
cd "$(dirname "$0")/.."

echo "==> brokerd unit suite"
cargo test -q --release -p contory-brokerd --lib

echo "==> loopback TCP smoke (real sockets, one broker core)"
cargo test -q --release -p contory-brokerd --test loopback_smoke

echo "==> fleet partition invariance (shards x threads x table shards)"
cargo test -q --release -p contory-brokerd --test fleet_determinism

echo "==> broker kill-over vs the 45 s SLO (3 seeds x {1,4} shards)"
cargo test -q --release -p contory-brokerd --test failover

echo "==> 1696 B envelope golden test (fuego compat path)"
cargo test -q --release --test broker_envelope

echo "==> broker: OK"
