#!/usr/bin/env sh
# Convenience wrapper around the lintkit determinism/robustness pass.
#
#   ./scripts/lint.sh                # lint the whole workspace
#   ./scripts/lint.sh --list-rules   # print the rule catalog
#   ./scripts/lint.sh path/to/file.rs ...
#
# Exit codes follow lintkit: 0 clean, 1 diagnostics, 2 usage/IO error.
set -eu
cd "$(dirname "$0")/.."

if [ "$#" -eq 0 ]; then
    exec cargo run -q -p lintkit -- --workspace
fi
exec cargo run -q -p lintkit -- "$@"
