#!/usr/bin/env sh
# Convenience wrapper around the lintkit determinism/robustness pass.
#
#   ./scripts/lint.sh                # workspace lint against the ratchet baseline
#   ./scripts/lint.sh --json         # same, machine-readable (schema contory-lint/1)
#   ./scripts/lint.sh --list-rules   # print the rule catalog
#   ./scripts/lint.sh path/to/file.rs ...
#
# Anything else is passed through to lintkit verbatim (e.g.
# `--sim-visible`, `--explain <rule>`, `--write-baseline <path>`).
# Exit codes follow lintkit: 0 clean, 1 diagnostics, 2 usage/IO error.
set -eu
cd "$(dirname "$0")/.."

if [ "$#" -eq 0 ]; then
    exec cargo run -q -p lintkit -- --workspace --baseline results/lint_baseline.json
fi
if [ "$#" -eq 1 ] && [ "$1" = "--json" ]; then
    exec cargo run -q -p lintkit -- --workspace --baseline results/lint_baseline.json --json
fi
exec cargo run -q -p lintkit -- "$@"
