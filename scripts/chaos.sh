#!/usr/bin/env sh
# chaoskit subsystem gate: lossy-link chaos, crash-recovery and
# idempotent federation proven end to end (DESIGN.md §5j).
#
#   ./scripts/chaos.sh
#
# 1. the link-chaos unit suite in simkit — per-link deterministic RNG
#    streams, drop/dup/reorder/jitter draws, crash-restart edges and
#    the square-wave flap helper;
# 2. the dedup-window unit suite — exactly-once filtering on an
#    at-least-once stream, bounded-window suppression, origin eviction;
# 3. the broker chaos suite — sequence-numbered idempotent admission,
#    forward retry/backoff/exhaustion, lease renewal, anti-entropy
#    directory absorption, restart recovery (node + fleet harnesses);
# 4. the chaos property tests — the dedup window never double-delivers
#    under duplication + reorder, restart + renewal loses no
#    subscription, chaos transcripts are byte-identical across engine
#    partitionings;
# 5. the hardened wire surface — mid-frame disconnects and idle reads
#    surface as typed outcomes, never hangs, duplicate publishes are
#    positively acked over TCP.
set -eu
cd "$(dirname "$0")/.."

echo "==> link-chaos + fault-plan unit suite (simkit)"
cargo test -q --release -p contory-simkit --lib faults::

echo "==> dedup-window unit suite (brokerd)"
cargo test -q --release -p contory-brokerd --lib dedup::

echo "==> broker chaos suite (node + fleet: retry, renewal, restart)"
cargo test -q --release -p contory-brokerd --lib node::
cargo test -q --release -p contory-brokerd --lib fleet::

echo "==> chaos property tests (idempotence, recovery, invariance)"
cargo test -q --release --test proptests dedup_never_double_delivers
cargo test -q --release --test proptests restart_plus_renewal
cargo test -q --release --test proptests chaos_transcripts

echo "==> hardened wire surface (typed mid-frame disconnects, dup acks)"
cargo test -q --release -p contory-brokerd --lib net::

echo "==> chaos: OK"
