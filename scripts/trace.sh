#!/usr/bin/env sh
# tracekit subsystem gate: the causal tracing plane proven end to end
# (DESIGN.md §5i).
#
#   ./scripts/trace.sh
#
# 1. the tracekit unit suite (TraceCtx sampling/parsing, span logs,
#    assembly, critical paths, break-up table, obskit lifting);
# 2. the trace-assembly property tests — span conservation, causal
#    parent-precedes-child order and fold-order invariance under
#    adversarial inputs;
# 3. the golden trace-schema test — the canonical span JSONL export
#    and the contory-trace-breakup/1 JSON pinned byte-for-byte;
# 4. the fleet trace suite — traces recorded across the sharded
#    10k-device harness assemble into deliveries, and the canonical
#    export is byte-identical across engine partitions;
# 5. the ops-surface smoke — STATS/TRACE requests answered over a
#    real loopback TCP session, oversized-frame refusals included.
set -eu
cd "$(dirname "$0")/.."

echo "==> tracekit unit suite"
cargo test -q --release -p contory-tracekit --lib

echo "==> trace-assembly property tests"
cargo test -q --release -p contory-tracekit --test assembly_props

echo "==> golden trace-export schema (JSONL + break-up JSON)"
cargo test -q --release --test trace_schema

echo "==> fleet tracing (assembly + partition-invariant export)"
cargo test -q --release -p contory-brokerd --lib fleet::
cargo test -q --release -p contory-brokerd --test fleet_determinism trace_export

echo "==> live ops surface (STATS/TRACE over loopback TCP)"
cargo test -q --release -p contory-brokerd --lib net::

echo "==> trace: OK"
