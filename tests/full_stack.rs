//! Workspace-level integration tests spanning every crate: determinism,
//! concurrent multi-mechanism provisioning, cross-source aggregation and
//! the measurement artefacts the paper describes.

use contory::{
    AggregationStrategy, CollectingClient, CxtAggregator, CxtItem, CxtValue, Mechanism, Trust,
};
use phone::{Consumer, Milliwatts, PhoneModel};
use radio::Position;
use sensors::EnvField;
use simkit::{SimDuration, SimTime};
use testbed::{PhoneSetup, Testbed};
use std::rc::Rc;

/// The same seed replays the entire stack identically: query deliveries,
/// item values, mechanism choices and energy.
#[test]
fn whole_stack_is_deterministic() {
    let run = |seed: u64| {
        let tb = Testbed::with_seed(seed);
        let phone = tb.add_phone(PhoneSetup {
            internal_sensors: vec![EnvField::TemperatureC],
            metered: false,
            ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
        });
        let provider = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("q", Position::new(5.0, 0.0))
        });
        provider.factory().register_cxt_server("app");
        provider
            .factory()
            .publish_cxt_item(
                CxtItem::new("wind", CxtValue::quantity(7.0, "kn"), tb.sim.now())
                    .with_accuracy(0.5),
                None,
            )
            .unwrap();
        let client = Rc::new(CollectingClient::new());
        phone
            .submit(
                "SELECT temperature FROM intSensor DURATION 2 min EVERY 10 sec",
                client.clone(),
            )
            .unwrap();
        phone
            .submit(
                "SELECT wind FROM adHocNetwork(all,1) DURATION 2 min EVERY 20 sec",
                client.clone(),
            )
            .unwrap();
        tb.sim.run_for(SimDuration::from_secs(150));
        let items: Vec<String> = client
            .all_items()
            .iter()
            .map(|i| format!("{i}"))
            .collect();
        let energy = phone
            .phone()
            .power()
            .energy_between(SimTime::ZERO, tb.sim.now())
            .0;
        (items, energy, tb.sim.events_processed())
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a.0, b.0, "item streams identical");
    assert_eq!(a.1, b.1, "energy identical");
    assert_eq!(a.2, b.2, "event counts identical");
    let c = run(78);
    assert_ne!(a.0, c.0, "different seeds diverge");
}

/// One phone running queries over three mechanisms at once — internal
/// sensor, BT ad hoc and the UMTS infrastructure — each assigned to its
/// own facade, all delivering concurrently.
#[test]
fn three_mechanisms_concurrently_on_one_phone() {
    let tb = Testbed::with_seed(88);
    tb.add_weather_station(
        "station",
        Position::new(5_000.0, 0.0),
        &[EnvField::PressureHpa],
        SimDuration::from_secs(30),
    );
    tb.sim.run_for(SimDuration::from_secs(60));
    let phone = tb.add_phone(PhoneSetup {
        internal_sensors: vec![EnvField::TemperatureC],
        cell_on: true,
        metered: false,
        ..PhoneSetup::nokia6630("hub", Position::new(0.0, 0.0))
    });
    let neighbor = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("peer", Position::new(5.0, 0.0))
    });
    neighbor.factory().register_cxt_server("app");
    neighbor
        .factory()
        .publish_cxt_item(
            CxtItem::new("wind", CxtValue::quantity(9.0, "kn"), tb.sim.now()).with_accuracy(0.5),
            None,
        )
        .unwrap();

    let client = Rc::new(CollectingClient::new());
    let q_local = phone
        .submit(
            "SELECT temperature FROM intSensor DURATION 5 min EVERY 15 sec",
            client.clone(),
        )
        .unwrap();
    let q_adhoc = phone
        .submit(
            "SELECT wind FROM adHocNetwork(all,1) DURATION 5 min EVERY 30 sec",
            client.clone(),
        )
        .unwrap();
    let q_infra = phone
        .submit(
            "SELECT pressure FROM extInfra DURATION 5 min EVERY 60 sec",
            client.clone(),
        )
        .unwrap();
    assert_eq!(phone.factory().mechanism_of(q_local), Some(Mechanism::IntSensor));
    assert_eq!(phone.factory().mechanism_of(q_adhoc), Some(Mechanism::AdHocBt));
    assert_eq!(phone.factory().mechanism_of(q_infra), Some(Mechanism::Infra));
    tb.sim.run_for(SimDuration::from_mins(4));
    assert!(client.items_for(q_local).len() >= 10, "internal sensor flows");
    assert!(client.items_for(q_adhoc).len() >= 4, "ad hoc flows");
    assert!(client.items_for(q_infra).len() >= 2, "infrastructure flows");
    assert_eq!(phone.factory().active_queries(), 3);
}

/// Cross-source fusion: the aggregator combines an own-sensor reading
/// with neighbour readings, weighting by accuracy — the paper's claim
/// that combining mechanisms "allows applications to partly relieve the
/// uncertainty of single context sources".
#[test]
fn aggregating_across_mechanisms_improves_the_estimate() {
    let tb = Testbed::with_seed(99);
    let here = Position::new(0.0, 0.0);
    let phone = tb.add_phone(PhoneSetup {
        internal_sensors: vec![EnvField::TemperatureC],
        metered: false,
        ..PhoneSetup::nokia6630("hub", Position::new(0.0, 0.0))
    });
    // Two neighbours with *better* thermometers publish over BT.
    for (i, x) in [(0u64, 4.0), (1, 6.0)] {
        let n = tb.add_phone(PhoneSetup {
            internal_sensors: vec![EnvField::TemperatureC],
            metered: false,
            ..PhoneSetup::nokia6630(format!("n{i}"), Position::new(x, 0.0))
        });
        n.factory().register_cxt_server("app");
        let truth = tb.env.sample(EnvField::TemperatureC, Position::new(x, 0.0), tb.sim.now());
        n.factory()
            .publish_cxt_item(
                CxtItem::new("temperature", CxtValue::quantity(truth + 0.05, "C"), tb.sim.now())
                    .with_accuracy(0.1)
                    .with_trust(Trust::Community),
                None,
            )
            .unwrap();
    }
    let client = Rc::new(CollectingClient::new());
    phone
        .submit(
            "SELECT temperature FROM intSensor DURATION 3 samples EVERY 5 sec",
            client.clone(),
        )
        .unwrap();
    phone
        .submit(
            "SELECT temperature FROM adHocNetwork(all,1) DURATION 2 samples EVERY 30 sec",
            client.clone(),
        )
        .unwrap();
    tb.sim.run_for(SimDuration::from_secs(120));
    let items = client.all_items();
    assert!(items.len() >= 4, "both sources contributed: {}", items.len());
    let fused = CxtAggregator::new()
        .combine(&items, AggregationStrategy::WeightedByAccuracy, tb.sim.now())
        .expect("fusable");
    let truth = tb.env.sample(EnvField::TemperatureC, here, tb.sim.now());
    let fused_err = (fused.value.as_f64().unwrap() - truth).abs();
    assert!(fused_err < 1.5, "fused {fused_err} off truth");
    // The fused accuracy beats the phone's own 0.5-accuracy sensor.
    assert!(fused.metadata.accuracy.unwrap() < 0.5);
}

/// The paper's measurement artefact: a metered Nokia 9500 browns out
/// within 30 s of WiFi coming up; the same phone unmetered stays up —
/// which is exactly why Table 2's WiFi rows are lower bounds.
#[test]
fn metered_wifi_communicator_browns_out_unmetered_survives() {
    for (metered, expect_on) in [(true, false), (false, true)] {
        let tb = Testbed::with_seed(111);
        let phone = tb.add_phone(PhoneSetup {
            metered,
            ..PhoneSetup::nokia9500("c", Position::new(0.0, 0.0))
        });
        tb.sim.run_for(SimDuration::from_secs(35));
        assert_eq!(
            phone.phone().is_on(),
            expect_on,
            "metered={metered} should leave the phone on={expect_on}"
        );
    }
}

/// Battery-life estimate for the sailing scenario: with the paper's
/// numbers, continuous UMTS provisioning drains the pack orders of
/// magnitude faster than BT provisioning.
#[test]
fn provisioning_choice_dominates_battery_life() {
    // Per-item energy from Table 2 at one item per minute.
    let bt_mw = 0.099 * 1000.0 / 60.0; // J/item -> mW at 1/min
    let umts_mw = 14.076 * 1000.0 / 60.0;
    let pack_j = 0.9 * 3.7 * 3600.0; // ~900 mAh at 3.7 V nominal
    let bt_hours = pack_j / (bt_mw / 1000.0) / 3600.0;
    let umts_hours = pack_j / (umts_mw / 1000.0) / 3600.0;
    assert!(bt_hours / umts_hours > 100.0);
    // And the phone model agrees qualitatively: sustained 1 W kills a
    // phone in a day; 10 mW lasts weeks.
    let sim = simkit::Sim::new();
    let p = phone::Phone::new(&sim, phone::PhoneConfig::default());
    p.power().set(Consumer::CellRadio, Milliwatts(1000.0));
    assert!(p.power().total().0 > 1000.0);
}

/// Mixed phone models on one testbed: a 7610 (GPRS-only, no WiFi) still
/// provisions over BT and the infrastructure.
#[test]
fn nokia7610_works_without_wifi() {
    let tb = Testbed::with_seed(121);
    let phone = tb.add_phone(PhoneSetup {
        name: "older".into(),
        model: PhoneModel::Nokia7610,
        position: Position::new(0.0, 0.0),
        metered: false,
        internal_sensors: vec![EnvField::NoiseDb],
        wifi_on: false,
        cell_on: true,
        factory: contory::FactoryConfig::default(),
    });
    assert!(phone.wifi_radio().is_none(), "no WLAN on the 7610");
    let client = Rc::new(CollectingClient::new());
    let id = phone
        .submit(
            "SELECT noise FROM intSensor DURATION 3 samples EVERY 5 sec",
            client.clone(),
        )
        .unwrap();
    tb.sim.run_for(SimDuration::from_secs(30));
    assert_eq!(client.items_for(id).len(), 3);
    // Multi-hop ad hoc requests degrade to BT (then infra) on this model.
    let q = contory::query::CxtQuery::parse(
        "SELECT wind FROM adHocNetwork(all,3) DURATION 1 min",
    )
    .unwrap();
    let candidates = phone.factory().candidates(&q);
    assert_eq!(candidates, vec![Mechanism::AdHocBt, Mechanism::Infra]);
}
