//! Golden schema test for the tracekit exports: the canonical span
//! JSONL stream (`tests/trace.sh` / transcript embedding) and the
//! break-up JSON (`contory-trace-breakup/1`).
//!
//! Like `tests/bench_schema.rs` this is structural *and* golden: the
//! JSONL line shape, key order and closed stage vocabulary are pinned
//! byte-for-byte on a hand-built trace, so any drift in the export —
//! field renames, reordered keys, float leakage — fails `cargo test`
//! without running the minutes-long suites. Span ids are deterministic
//! hashes, so the golden bytes are stable across platforms.
#![deny(warnings)]

use benchkit::Json;
use simkit::{SimDuration, SimTime};
use tracekit::{assemble, Breakup, Stage, TraceCtx, TraceLog};

/// publish(dev 1000) → admit/enqueue/dispatch(broker 1) → deliver
/// (dev 2000), fully sampled: the minimal end-to-end delivery.
fn golden_log() -> TraceLog {
    let mut log = TraceLog::new();
    let ms = SimDuration::from_millis;
    let t0 = SimTime::from_secs(5);
    let root = TraceCtx::root(99, 0);
    let p = log.record(root, Stage::Publish, 1000, t0);
    let a = log.record(root.child(p), Stage::Admit, 1, t0 + ms(2));
    let e = log.record(root.child(a), Stage::Enqueue, 1, t0 + ms(2));
    let d = log.record(root.child(e), Stage::Dispatch, 1, t0 + ms(40));
    log.record(root.child(d), Stage::Deliver, 2000, t0 + ms(45));
    log
}

#[test]
fn trace_jsonl_export_is_golden() {
    let log = golden_log();
    let export = log.export_jsonl();

    // Structural contract: one object per line, fixed key order, hex
    // trace ids, integer fields, closed stage vocabulary.
    for line in export.lines() {
        let obj = Json::parse(line).expect("every line is a JSON object");
        let trace = obj.get("trace").and_then(Json::as_str).expect("trace key");
        assert_eq!(trace.len(), 16, "trace id is 16 hex chars");
        assert!(trace.chars().all(|c| c.is_ascii_hexdigit()));
        for key in ["span", "parent", "node", "hop", "at_us"] {
            let v = obj.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("{key} missing"));
            assert!(v >= 0.0 && v.fract() == 0.0, "{key} must be a non-negative integer");
        }
        let stage = obj.get("stage").and_then(Json::as_str).expect("stage key");
        assert!(
            Stage::ALL.iter().any(|s| s.as_str() == stage),
            "unknown stage {stage:?}"
        );
        let keys: Vec<&str> = ["trace", "span", "parent", "stage", "node", "hop", "at_us"]
            .into_iter()
            .filter(|k| line.contains(&format!("\"{k}\":")))
            .collect();
        assert_eq!(keys.len(), 7, "key set drifted: {line}");
    }

    // Round trip: parsing the export reproduces the log bit-for-bit.
    let back = TraceLog::parse_jsonl(&export).expect("export parses");
    assert_eq!(back.export_jsonl(), export);
    assert_eq!(back.digest(), log.digest());

    // Golden bytes: the exact canonical export of the hand-built trace.
    let expected = "\
{\"trace\":\"42f3a9364c476be3\",\"span\":3193901811,\"parent\":0,\"stage\":\"publish\",\"node\":1000,\"hop\":0,\"at_us\":5000000}
{\"trace\":\"42f3a9364c476be3\",\"span\":3095122015,\"parent\":3193901811,\"stage\":\"admit\",\"node\":1,\"hop\":0,\"at_us\":5002000}
{\"trace\":\"42f3a9364c476be3\",\"span\":2297123967,\"parent\":3095122015,\"stage\":\"enqueue\",\"node\":1,\"hop\":0,\"at_us\":5002000}
{\"trace\":\"42f3a9364c476be3\",\"span\":2811037471,\"parent\":2297123967,\"stage\":\"dispatch\",\"node\":1,\"hop\":0,\"at_us\":5040000}
{\"trace\":\"42f3a9364c476be3\",\"span\":1711173837,\"parent\":2811037471,\"stage\":\"deliver\",\"node\":2000,\"hop\":0,\"at_us\":5045000}
";
    assert_eq!(export, expected, "canonical trace JSONL drifted");
}

#[test]
fn breakup_json_schema_is_golden() {
    let breakup = Breakup::of(&assemble(&golden_log()));
    let json = breakup.to_json();
    let doc = Json::parse(&json).expect("breakup JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("contory-trace-breakup/1")
    );
    for key in ["deliveries", "latency_us_total", "latency_us_p50", "latency_us_p99"] {
        let v = doc.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("{key} missing"));
        assert!(v >= 0.0 && v.fract() == 0.0, "{key} must be an integer");
    }
    assert!(
        doc.get("latency_us_p99").and_then(Json::as_f64)
            >= doc.get("latency_us_p50").and_then(Json::as_f64),
        "quantiles out of order"
    );
    let stages = doc.get("stages").expect("stages object");
    let mut share_total = 0.0;
    for stage in Stage::ALL {
        let Some(row) = stages.get(stage.as_str()) else {
            continue;
        };
        for key in ["us", "share_pm", "samples"] {
            assert!(row.get(key).is_some(), "{stage}: missing '{key}'");
        }
        share_total += row.get("share_pm").and_then(Json::as_f64).expect("share_pm");
    }
    assert!(share_total <= 1000.0, "stage shares exceed 1000 per mille");

    // Golden: one delivery, 45 ms critical path, every µs attributed.
    assert_eq!(breakup.deliveries(), 1);
    assert_eq!(breakup.total_us(), 45_000);
    assert_eq!(
        json,
        "{\"schema\":\"contory-trace-breakup/1\",\"deliveries\":1,\
         \"latency_us_total\":45000,\"latency_us_p50\":45000,\"latency_us_p99\":45000,\
         \"stages\":{\
         \"admit\":{\"us\":2000,\"share_pm\":44,\"samples\":1},\
         \"deliver\":{\"us\":5000,\"share_pm\":111,\"samples\":1},\
         \"dispatch\":{\"us\":38000,\"share_pm\":844,\"samples\":1},\
         \"enqueue\":{\"us\":0,\"share_pm\":0,\"samples\":1}}}",
        "break-up JSON drifted"
    );
}
