//! Determinism regression suite: the invariant the lintkit gate exists
//! to protect, asserted end-to-end.
//!
//! Two runs of the Fig. 5 failover scenario with the same seed must be
//! *byte-identical*: same serialized [`FailoverReport`], same mechanism
//! timeline, same delivered-item trace, same event count. A single
//! `Instant::now()`, ambient `HashMap` iteration or OS-seeded hasher
//! anywhere in the sim-visible stack shows up here as a diff.
//!
//! The transcript machinery lives in `tests/common/mod.rs`; the
//! partition half of the invariant (same bytes for every shard count) is
//! `tests/shard_determinism.rs`.
#![deny(warnings)]

mod common;

use common::run_fig5_transcript;

/// Same seed ⇒ byte-identical transcript, including the serialized
/// `FailoverReport` — the PR's headline determinism regression test.
#[test]
fn fig5_scenario_is_seed_reproducible() {
    for seed in [501u64, 11] {
        let a = run_fig5_transcript(seed, 1);
        let b = run_fig5_transcript(seed, 1);
        assert!(
            a == b,
            "seed {seed}: two runs diverged\n--- first ---\n{a}\n--- second ---\n{b}"
        );
        // The transcript must actually contain failover activity, or the
        // comparison proves nothing.
        assert!(
            a.contains("adHocNetwork") || a.contains("AdHoc"),
            "seed {seed}: scenario never failed over:\n{a}"
        );
        assert!(a.contains("failures"), "report section missing");
    }
}

/// Different seeds still agree on the *shape* of the run (failover
/// happened, query recovered) while being allowed to differ in timing —
/// guards against the scenario accidentally becoming seed-independent
/// (which would mask real nondeterminism).
#[test]
fn fig5_scenario_varies_across_seeds_but_stays_in_spec() {
    let a = run_fig5_transcript(501, 1);
    let b = run_fig5_transcript(11, 1);
    assert_ne!(
        a, b,
        "seeds 501 and 11 produced identical transcripts — jitter streams look dead"
    );
}
