//! Golden test for the brokerd → Fuego compat path: a real
//! `brokerd::ContextPacket` rendered through `fuego::compat` must cost
//! exactly the 1696 bytes the paper measured per event notification, so
//! Table 1's UMTS latency/energy numbers survive the brokerd rewiring.

use brokerd::{BrokerId, ContextPacket};
use fuego::compat::{envelope_for_packet, PacketFields, ENVELOPE_BYTES};
use simkit::{SimDuration, SimTime};
use tracekit::TraceCtx;

fn frame_size(packet: &ContextPacket, id: u64) -> usize {
    let hops: Vec<u16> = packet.hops.iter().map(|b| b.0).collect();
    let fields = PacketFields {
        type_name: &packet.type_name,
        value_milli: packet.value_milli,
        published_at: packet.published_at,
        expires_at: packet.expires_at,
        source: &packet.source,
        hops: &hops,
        trace: (packet.trace != TraceCtx::NONE).then_some(packet.trace),
    };
    envelope_for_packet(&fields, id).wire_size()
}

#[test]
fn broker_packet_envelope_is_pinned_at_1696_bytes() {
    assert_eq!(ENVELOPE_BYTES, 1696, "the paper's §6 constant moved");

    // The §6-shaped packet: attributed, lifetime-bound, one federation
    // hop — exactly what a forwarded brokerd delivery looks like.
    let packet = ContextPacket::new(
        "wind",
        8_500,
        SimTime::from_secs(120),
        SimDuration::from_secs(60),
        "intSensor://nokia6630-352087/wind0",
    )
    .with_hop(BrokerId(1));
    assert_eq!(
        frame_size(&packet, 42),
        1696,
        "brokerd packets no longer fit the paper's measured envelope"
    );

    // And the frame is constant across realistic packet variation, so
    // per-notification accounting stays a single constant.
    for (ty, source) in [
        ("temperature", "extSensor://weatherstation-kumpula/t9"),
        ("nearbyDevices", "btScan://nokia6630-352087"),
    ] {
        let p = ContextPacket::new(
            ty,
            -12_345,
            SimTime::from_millis(1_123_851_807),
            SimDuration::from_secs(300),
            source,
        );
        assert_eq!(frame_size(&p, 7), 1696, "{ty} envelope drifted");
        // The traced layout costs the same: the trace element is
        // absorbed by the padding region, not the wire budget.
        let traced = p.with_trace(TraceCtx::root(0xfeed ^ id_salt(ty), 0).child(3));
        assert_eq!(frame_size(&traced, 7), 1696, "{ty} traced envelope drifted");
    }
}

fn id_salt(ty: &str) -> u64 {
    ty.bytes().fold(0u64, |a, b| a.rotate_left(7) ^ u64::from(b))
}
