//! Golden schema test for the committed perf-observability artefacts:
//! `BENCH_contory.json` (schema `contory-bench/1`) and
//! `results/baseline.json` (schema `contory-bench-baseline/1`).
//!
//! This test is structural, not value-level: it pins field presence, the
//! closed unit vocabulary, quantile monotonicity and the baseline's
//! coverage of every exported measurement, so schema drift is caught by
//! `cargo test` without re-running the (minutes-long) §6 suite. Value
//! drift is the bench gate's job (`bench_all --check` in
//! `scripts/verify.sh`).
#![deny(warnings)]

use benchkit::{Baseline, Json, Unit, BASELINE_SCHEMA, SCHEMA};

fn read_repo_file(rel: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} ({e}); run `scripts/bench.sh` to regenerate", path.display()))
}

/// The eight §6 regenerators plus the partitioned-engine scale
/// scenarios, in the fixed export order `bench_all` uses.
const SCENARIOS: [&str; 11] = [
    "table1_latency",
    "table2_energy",
    "idle_power",
    "fig4_power_trace",
    "fig5_failover",
    "sm_breakup",
    "ablation_discovery_cache",
    "ablation_merging",
    "scale_city",
    "broker_load",
    "broker_chaos",
];

#[test]
fn bench_json_schema_is_golden() {
    let doc = Json::parse(&read_repo_file("BENCH_contory.json")).expect("valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
    assert!(
        doc.get("paper")
            .and_then(Json::as_str)
            .is_some_and(|p| p.contains("Contory")),
        "paper tag missing"
    );

    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .expect("scenarios array");
    let names: Vec<&str> = scenarios
        .iter()
        .map(|s| s.get("name").and_then(Json::as_str).expect("name"))
        .collect();
    assert_eq!(names, SCENARIOS, "scenario set/order drifted");

    for s in scenarios {
        let name = s.get("name").and_then(Json::as_str).expect("name");
        // Header fields.
        for key in ["title", "paper_ref", "seed", "sim_events", "sim_time_s"] {
            assert!(s.get(key).is_some(), "{name}: missing '{key}'");
        }
        assert!(
            s.get("sim_events").and_then(Json::as_f64).expect("sim_events") > 0.0,
            "{name}: no simulation cost tallied"
        );

        // Measurements: field presence + closed unit vocabulary.
        let measurements = s
            .get("measurements")
            .and_then(Json::as_arr)
            .expect("measurements array");
        assert!(!measurements.is_empty(), "{name}: no measurements");
        for m in measurements {
            let id = m.get("id").and_then(Json::as_str).expect("measurement id");
            for key in [
                "label",
                "unit",
                "value",
                "ci90",
                "min",
                "max",
                "n",
                "paper",
                "delta_pct",
                "lower_bound",
                "note",
                "gate_rel_tol",
                "gate_abs_tol",
            ] {
                assert!(m.get(key).is_some(), "{name}/{id}: missing '{key}'");
            }
            let unit = m.get("unit").and_then(Json::as_str).expect("unit string");
            assert!(
                Unit::parse(unit).is_some(),
                "{name}/{id}: unit '{unit}' outside the closed vocabulary"
            );
            let n = m.get("n").and_then(Json::as_f64).expect("n");
            assert!(n >= 1.0, "{name}/{id}: empty sample");
            let (min, max) = (
                m.get("min").and_then(Json::as_f64).expect("min"),
                m.get("max").and_then(Json::as_f64).expect("max"),
            );
            assert!(min <= max, "{name}/{id}: min {min} > max {max}");
        }

        // Checks: all committed checks pass, and carry their bands.
        for c in s.get("checks").and_then(Json::as_arr).expect("checks array") {
            let id = c.get("id").and_then(Json::as_str).expect("check id");
            assert_eq!(
                c.get("pass").and_then(Json::as_bool),
                Some(true),
                "{name}/{id}: committed artefact contains a failing check"
            );
            let unit = c.get("unit").and_then(Json::as_str).expect("check unit");
            assert!(Unit::parse(unit).is_some(), "{name}/{id}: bad unit '{unit}'");
        }

        // obskit block: span count + monotone histogram quantiles.
        let obs = s.get("obskit").expect("obskit block");
        assert!(obs.get("span_count").and_then(Json::as_f64).is_some());
        assert!(obs.get("phase_totals_ms").is_some());
        let metrics = obs.get("metrics").expect("metrics snapshot");
        for section in ["counters", "gauges", "histograms"] {
            assert!(metrics.get(section).is_some(), "{name}: metrics missing '{section}'");
        }
        if let Some(Json::Obj(hists)) = metrics.get("histograms") {
            for (hname, h) in hists {
                let q = |k: &str| {
                    h.get(k)
                        .and_then(Json::as_f64)
                        .unwrap_or_else(|| panic!("{name}: histogram '{hname}' missing '{k}'"))
                };
                let (p50, p90, p99) = (q("p50"), q("p90"), q("p99"));
                assert!(
                    p50 <= p90 && p90 <= p99,
                    "{name}: histogram '{hname}' quantiles not monotone: p50={p50} p90={p90} p99={p99}"
                );
                assert!(q("min") <= q("max"), "{name}: histogram '{hname}' min > max");
                assert!(q("count") >= 1.0, "{name}: empty histogram '{hname}' exported");
            }
        }
    }
}

#[test]
fn baseline_covers_every_exported_measurement() {
    let base = Baseline::parse(&read_repo_file("results/baseline.json")).expect("valid baseline");
    assert!(read_repo_file("results/baseline.json").contains(BASELINE_SCHEMA));

    let doc = Json::parse(&read_repo_file("BENCH_contory.json")).expect("valid JSON");
    let mut exported = Vec::new();
    for s in doc.get("scenarios").and_then(Json::as_arr).expect("scenarios") {
        let name = s.get("name").and_then(Json::as_str).expect("name");
        for m in s.get("measurements").and_then(Json::as_arr).expect("measurements") {
            exported.push((
                name.to_owned(),
                m.get("id").and_then(Json::as_str).expect("id").to_owned(),
            ));
        }
    }
    let pinned: Vec<(String, String)> = base
        .metrics
        .iter()
        .map(|m| (m.scenario.clone(), m.id.clone()))
        .collect();
    assert_eq!(
        pinned, exported,
        "baseline pins and exported measurements diverged — re-pin with \
         `bench_all --write-baseline` and review the diff"
    );
    for m in &base.metrics {
        assert!(
            m.rel_tol >= 0.0 && m.abs_tol >= 0.0,
            "{}/{}: negative tolerance",
            m.scenario,
            m.id
        );
        assert!(
            m.rel_tol > 0.0 || m.abs_tol > 0.0,
            "{}/{}: zero-width band would fail on any float jitter",
            m.scenario,
            m.id
        );
    }
}
