//! Partition-invariance regression suite: the tentpole contract of the
//! sharded engine, asserted end-to-end.
//!
//! Same seed ⇒ byte-identical outputs *regardless of shard or thread
//! count*:
//!
//! * the Fig. 5 failover transcript (events, mechanism switches,
//!   delivered items, `FailoverReport`, obskit metrics/span exports,
//!   benchkit scenario JSON) on a testbed partitioned {1, 4, 16} ways —
//!   the classic `Sim` orders same-instant events by `(time, shard,
//!   seq)`, so the partition layout must never leak into outputs;
//! * the `scale_city` gossip model on the partitioned [`ShardSim`]
//!   engine across shard counts {1, 4, 16} × worker threads {1, max} —
//!   here shards are physically separate queues stepped by real threads
//!   and merged at round boundaries, and the outcome (event totals,
//!   deliveries, folded state checksum) must still be bit-identical.
//!
//! Three seeds each, so an ordering leak that happens to cancel for one
//! jitter stream still shows up.
#![deny(warnings)]

mod common;

use common::run_fig5_transcript;
use contory_bench::scenarios::scale_city::{run_city, CityConfig};
use simkit::{ShardConfig, SimDuration};

const SEEDS: [u64; 3] = [501, 11, 42];

/// Fig. 5 on a partitioned testbed: shard counts {1, 4, 16} render the
/// same transcript byte-for-byte. (The classic `Sim` is single-threaded;
/// shards are ordering domains, so no thread axis here.)
#[test]
fn fig5_transcript_is_shard_count_invariant() {
    for seed in SEEDS {
        let reference = run_fig5_transcript(seed, 1);
        assert!(
            reference.contains("adHocNetwork") || reference.contains("AdHoc"),
            "seed {seed}: scenario never failed over — comparison proves nothing"
        );
        for shards in [4u32, 16] {
            let sharded = run_fig5_transcript(seed, shards);
            assert!(
                sharded == reference,
                "seed {seed}: {shards}-shard transcript diverged from 1-shard\n\
                 --- 1 shard ---\n{reference}\n--- {shards} shards ---\n{sharded}"
            );
        }
    }
}

/// The partitioned engine: a small gossip city produces bit-identical
/// outcomes across the full shard × thread matrix.
#[test]
fn city_outcome_is_partition_and_thread_invariant() {
    let max = ShardConfig::max_threads();
    for seed in SEEDS {
        let base = CityConfig {
            devices: 400,
            shards: 1,
            threads: 1,
            seed,
            horizon: SimDuration::from_secs(12),
        };
        let reference = run_city(base);
        assert!(reference.delivered > 0, "seed {seed}: no gossip delivered");
        assert_eq!(reference.dead_letters, 0, "seed {seed}: dead letters");
        for shards in [4u32, 16] {
            for threads in [1u32, max] {
                let out = run_city(CityConfig { shards, threads, ..base });
                assert_eq!(
                    out, reference,
                    "seed {seed}: {shards} shards x {threads} threads diverged from 1x1"
                );
            }
        }
    }
}

/// Worker count beyond the physical shard count (and beyond the host's
/// cores) still changes nothing — the thread axis is pure mechanism.
#[test]
fn oversubscribed_threads_change_nothing() {
    let base = CityConfig {
        devices: 128,
        shards: 4,
        threads: 1,
        seed: 7,
        horizon: SimDuration::from_secs(8),
    };
    let reference = run_city(base);
    let oversub = run_city(CityConfig { threads: 64, ..base });
    assert_eq!(oversub, reference);
}
